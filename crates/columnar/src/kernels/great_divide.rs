//! Batch-native great divide (`÷*`) on the vectorized key pipeline.
//!
//! Counting formulation: give every distinct shared `B`-value a dense id,
//! group the divisor by its `C` attributes into id-sets, invert that into a
//! `B-id -> divisor groups` index, then stream the dividend once — each
//! dividend row bumps a counter for every divisor group its `B`-value belongs
//! to. A `(dividend group, divisor group)` pair qualifies exactly when its
//! counter reaches the divisor group's size. Work is proportional to
//! `|dividend| * avg(groups per B-value)` instead of the pairwise
//! `|A-groups| * |C-groups|` subset tests of the row algorithms.
//!
//! All grouping runs over [`KeyVector`] codes in open-addressing tables;
//! the pair-keyed bookkeeping (`(B, C)` and `(A, B)` dedup, `(A, C)`
//! counters) packs the dense ids into injective `u64` codes consumed by
//! [`PairTable`]s, so the dividend stream allocates nothing per row.

use crate::batch::ColumnarBatch;
use crate::hash_table::{GroupIndex, PairTable};
use crate::kernels::divide::{hash_divide, StreamingDivide};
use crate::kernels::join::KernelOutput;
use crate::key_vector::{cross_matcher, KeyVector};
use crate::stream::GroupStore;
use crate::Result;
use div_algebra::{AlgebraError, Schema};

struct GreatDivideLayout {
    dividend_a: Vec<usize>,
    dividend_b: Vec<usize>,
    divisor_b: Vec<usize>,
    divisor_c: Vec<usize>,
    quotient: Vec<String>,
    group: Vec<String>,
}

impl GreatDivideLayout {
    /// Mirror of [`div_algebra::Relation::great_division_attributes`] over
    /// batch schemas.
    fn resolve(dividend: &Schema, divisor: &Schema) -> Result<Self> {
        let shared = dividend.common_attributes(divisor);
        if shared.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "dividend and divisor must share at least one attribute (B nonempty)"
                    .to_string(),
            });
        }
        let quotient = dividend.difference_attributes(divisor);
        if quotient.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "the dividend must have at least one attribute of its own (A nonempty)"
                    .to_string(),
            });
        }
        let group = divisor.difference_attributes(dividend);
        let shared_refs: Vec<&str> = shared.iter().map(String::as_str).collect();
        let quotient_refs: Vec<&str> = quotient.iter().map(String::as_str).collect();
        let group_refs: Vec<&str> = group.iter().map(String::as_str).collect();
        Ok(GreatDivideLayout {
            dividend_a: dividend.projection_indices(&quotient_refs)?,
            dividend_b: dividend.projection_indices(&shared_refs)?,
            divisor_b: divisor.projection_indices(&shared_refs)?,
            divisor_c: divisor.projection_indices(&group_refs)?,
            quotient,
            group,
        })
    }
}

/// Batch-native great divide `dividend ÷* divisor`.
pub fn hash_great_divide(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
) -> Result<KernelOutput> {
    great_divide_core(dividend, divisor, None)
}

/// [`hash_great_divide`] with the divisor's group-attribute (`C`) key
/// vector precomputed — built over the `C` columns in
/// `sch(divisor) − sch(dividend)` order, exactly what the Law-13
/// partitioning step of `div_physical::parallel_columnar` already hashed.
pub fn hash_great_divide_prehashed(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
    divisor_c_keys: &KeyVector,
) -> Result<KernelOutput> {
    great_divide_core(dividend, divisor, Some(divisor_c_keys))
}

fn great_divide_core(
    dividend: &ColumnarBatch,
    divisor: &ColumnarBatch,
    divisor_c_keys: Option<&KeyVector>,
) -> Result<KernelOutput> {
    let layout = GreatDivideLayout::resolve(dividend.schema(), divisor.schema())?;
    if layout.group.is_empty() {
        // Darwen & Date: with no group attributes `C` the operator *is* the
        // small divide (a prehashed C vector keys on zero columns and is of
        // no use to it).
        return hash_divide(dividend, divisor);
    }

    // Normalize the divisor's B and C key columns once per batch.
    let divisor_b_keys = KeyVector::build(divisor, &layout.divisor_b);
    let c_keys_built;
    let c_keys = match divisor_c_keys {
        Some(keys) => keys,
        None => {
            c_keys_built = KeyVector::build(divisor, &layout.divisor_c);
            &c_keys_built
        }
    };
    let same_divisor_b = cross_matcher(
        divisor,
        &layout.divisor_b,
        &divisor_b_keys,
        divisor,
        &layout.divisor_b,
        &divisor_b_keys,
    );
    let same_c = cross_matcher(
        divisor,
        &layout.divisor_c,
        c_keys,
        divisor,
        &layout.divisor_c,
        c_keys,
    );

    // Dense ids for the distinct shared `B` values and the `C` groups, plus
    // the inverted `B id -> divisor group ids` index.
    let divisor_rows = divisor.num_rows();
    let mut b_ids = GroupIndex::with_capacity(divisor_rows);
    let mut c_groups = GroupIndex::with_capacity(divisor_rows);
    let mut c_size: Vec<u32> = Vec::new();
    let mut groups_of_b: Vec<Vec<u32>> = Vec::new();
    let mut seen_divisor = PairTable::with_capacity(divisor_rows);
    for i in 0..divisor_rows {
        let (b_id, b_new) =
            b_ids.intern(divisor_b_keys.code(i), i, |other| same_divisor_b(i, other));
        if b_new {
            groups_of_b.push(Vec::new());
        }
        let (c_gid, c_new) = c_groups.intern(c_keys.code(i), i, |other| same_c(i, other));
        if c_new {
            c_size.push(0);
        }
        // Count each (B, C) combination once: batches fed through the public
        // kernel API may transiently hold duplicate rows.
        if seen_divisor.insert(b_id, c_gid) {
            c_size[c_gid as usize] += 1;
            groups_of_b[b_id as usize].push(c_gid);
        }
    }

    // Stream the dividend: assign dividend group ids on first sight and bump
    // the (dividend group, divisor group) counters.
    let rows = dividend.num_rows();
    let dividend_a_keys = KeyVector::build(dividend, &layout.dividend_a);
    let dividend_b_keys = KeyVector::build(dividend, &layout.dividend_b);
    let same_a = cross_matcher(
        dividend,
        &layout.dividend_a,
        &dividend_a_keys,
        dividend,
        &layout.dividend_a,
        &dividend_a_keys,
    );
    let same_b = cross_matcher(
        dividend,
        &layout.dividend_b,
        &dividend_b_keys,
        divisor,
        &layout.divisor_b,
        &divisor_b_keys,
    );
    let mut a_groups = GroupIndex::with_capacity(rows.min(1 << 20));
    let mut counters = PairTable::with_capacity(rows.min(1 << 20));
    let mut counter_pairs: Vec<(u32, u32)> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut seen_dividend = PairTable::with_capacity(rows.min(1 << 20));
    for row in 0..rows {
        let (a_gid, _) =
            a_groups.intern(dividend_a_keys.code(row), row, |other| same_a(row, other));
        let b_id = b_ids.get(dividend_b_keys.code(row), |other| same_b(row, other));
        if let Some(b_id) = b_id {
            // Likewise, a duplicate (A, B) dividend row must not inflate the
            // coverage counters.
            if seen_dividend.insert(a_gid, b_id) {
                for &c_gid in &groups_of_b[b_id as usize] {
                    let (slot, is_new) = counters.intern(a_gid, c_gid);
                    if is_new {
                        counter_pairs.push((a_gid, c_gid));
                        counts.push(0);
                    }
                    counts[slot as usize] += 1;
                }
            }
        }
    }

    // Qualifying pairs, in deterministic (dividend group, divisor group)
    // order.
    let mut qualifying: Vec<(u32, u32)> = counter_pairs
        .iter()
        .zip(&counts)
        .filter_map(|(&(a_gid, c_gid), &count)| {
            (count == c_size[c_gid as usize]).then_some((a_gid, c_gid))
        })
        .collect();
    qualifying.sort_unstable();

    // Assemble the output: A columns gathered from dividend group
    // representatives, C columns from divisor group representatives.
    let dividend_rows: Vec<usize> = qualifying
        .iter()
        .map(|&(a_gid, _)| a_groups.first_row(a_gid))
        .collect();
    let divisor_group_rows: Vec<usize> = qualifying
        .iter()
        .map(|&(_, c_gid)| c_groups.first_row(c_gid))
        .collect();
    let mut out_names: Vec<&str> = layout.quotient.iter().map(String::as_str).collect();
    out_names.extend(layout.group.iter().map(String::as_str));
    let out_schema = Schema::new(out_names)?;
    // Gather only the output columns (A from the dividend, C from the
    // divisor); the B columns never need to move.
    let mut columns = Vec::with_capacity(out_schema.arity());
    for &c in &layout.dividend_a {
        columns.push(dividend.column(c).gather(&dividend_rows));
    }
    for &c in &layout.divisor_c {
        columns.push(divisor.column(c).gather(&divisor_group_rows));
    }
    let out_rows = qualifying.len();
    Ok(KernelOutput {
        batch: ColumnarBatch::from_parts(out_schema, columns, out_rows),
        probes: rows,
    })
}

/// The output schema of `dividend ÷* divisor` (quotient attributes `A`
/// then group attributes `C`), with the kernel's validation applied — the
/// schema-inference companion of
/// [`quotient_schema`](crate::kernels::divide::quotient_schema).
pub fn great_quotient_schema(dividend: &Schema, divisor: &Schema) -> Result<Schema> {
    let layout = GreatDivideLayout::resolve(dividend, divisor)?;
    if layout.group.is_empty() {
        return crate::kernels::divide::quotient_schema(dividend, divisor);
    }
    let mut out_names: Vec<&str> = layout.quotient.iter().map(String::as_str).collect();
    out_names.extend(layout.group.iter().map(String::as_str));
    Schema::new(out_names)
}

/// Great divide with a prebuilt divisor and a *streamed* dividend — the
/// counting formulation of [`hash_great_divide`] with its dividend pass cut
/// into chunks. The divisor-side indexes (`B` ids, `C` groups, the inverted
/// `B → groups` lists) are built once at construction; every
/// [`StreamingGreatDivide::consume`] call folds one dividend chunk into the
/// id-based `(A, C)` coverage counters, which survive across chunks because
/// they key on dense ids rather than rows. Like [`StreamingDivide`], the
/// output is emitted only by [`StreamingGreatDivide::finish`].
///
/// With no group attributes `C` the operator *is* the small divide (Darwen
/// & Date), and this type transparently degrades to [`StreamingDivide`].
#[derive(Debug)]
pub enum StreamingGreatDivide {
    /// Degenerate form: the divisor has no `C` attributes.
    Small(Box<StreamingDivide>),
    /// The counting great divide proper.
    Great(Box<GreatDivideState>),
}

/// Cross-chunk state of the counting great divide (see
/// [`StreamingGreatDivide`]).
#[derive(Debug)]
pub struct GreatDivideState {
    divisor: ColumnarBatch,
    dividend_b: Vec<usize>,
    divisor_b: Vec<usize>,
    divisor_c: Vec<usize>,
    group: Vec<String>,
    quotient: Vec<String>,
    divisor_b_keys: KeyVector,
    b_ids: GroupIndex,
    c_groups: GroupIndex,
    c_size: Vec<u32>,
    groups_of_b: Vec<Vec<u32>>,
    a_store: GroupStore,
    counters: PairTable,
    counter_pairs: Vec<(u32, u32)>,
    counts: Vec<u32>,
    seen_dividend: PairTable,
}

impl StreamingGreatDivide {
    /// Prepare a great divide of chunks carrying `dividend_schema` by the
    /// fully materialized `divisor`.
    pub fn new(dividend_schema: &Schema, divisor: ColumnarBatch) -> Result<StreamingGreatDivide> {
        let layout = GreatDivideLayout::resolve(dividend_schema, divisor.schema())?;
        if layout.group.is_empty() {
            return Ok(StreamingGreatDivide::Small(Box::new(StreamingDivide::new(
                dividend_schema,
                divisor,
            )?)));
        }
        let quotient_refs: Vec<&str> = layout.quotient.iter().map(String::as_str).collect();
        let key_schema = dividend_schema.project(&quotient_refs)?;

        // Divisor-side prep, identical to the one-shot kernel: dense ids for
        // the distinct `B` values and `C` groups, sizes, and the inverted
        // `B id -> divisor group ids` lists.
        let divisor_b_keys = KeyVector::build(&divisor, &layout.divisor_b);
        let c_keys = KeyVector::build(&divisor, &layout.divisor_c);
        let divisor_rows = divisor.num_rows();
        let mut b_ids = GroupIndex::with_capacity(divisor_rows);
        let mut c_groups = GroupIndex::with_capacity(divisor_rows);
        let mut c_size: Vec<u32> = Vec::new();
        let mut groups_of_b: Vec<Vec<u32>> = Vec::new();
        let mut seen_divisor = PairTable::with_capacity(divisor_rows);
        {
            let same_divisor_b = cross_matcher(
                &divisor,
                &layout.divisor_b,
                &divisor_b_keys,
                &divisor,
                &layout.divisor_b,
                &divisor_b_keys,
            );
            let same_c = cross_matcher(
                &divisor,
                &layout.divisor_c,
                &c_keys,
                &divisor,
                &layout.divisor_c,
                &c_keys,
            );
            for i in 0..divisor_rows {
                let (b_id, b_new) =
                    b_ids.intern(divisor_b_keys.code(i), i, |other| same_divisor_b(i, other));
                if b_new {
                    groups_of_b.push(Vec::new());
                }
                let (c_gid, c_new) = c_groups.intern(c_keys.code(i), i, |other| same_c(i, other));
                if c_new {
                    c_size.push(0);
                }
                if seen_divisor.insert(b_id, c_gid) {
                    c_size[c_gid as usize] += 1;
                    groups_of_b[b_id as usize].push(c_gid);
                }
            }
        }
        Ok(StreamingGreatDivide::Great(Box::new(GreatDivideState {
            divisor,
            dividend_b: layout.dividend_b,
            divisor_b: layout.divisor_b,
            divisor_c: layout.divisor_c,
            group: layout.group,
            quotient: layout.quotient,
            divisor_b_keys,
            b_ids,
            c_groups,
            c_size,
            groups_of_b,
            a_store: GroupStore::new(key_schema, layout.dividend_a),
            counters: PairTable::with_capacity(0),
            counter_pairs: Vec::new(),
            counts: Vec::new(),
            seen_dividend: PairTable::with_capacity(0),
        })))
    }

    /// Fold one dividend chunk into the coverage counters. Returns the
    /// probes performed (one per chunk row, matching [`hash_great_divide`]).
    pub fn consume(&mut self, chunk: &ColumnarBatch) -> usize {
        match self {
            StreamingGreatDivide::Small(divide) => divide.consume(chunk),
            StreamingGreatDivide::Great(state) => state.consume(chunk),
        }
    }

    /// Number of dividend groups retained so far.
    pub fn groups(&self) -> usize {
        match self {
            StreamingGreatDivide::Small(divide) => divide.groups(),
            StreamingGreatDivide::Great(state) => state.a_store.len(),
        }
    }

    /// Emit the quotient pairs `(A group, C group)` whose counters reached
    /// the group size.
    pub fn finish(self) -> Result<ColumnarBatch> {
        match self {
            StreamingGreatDivide::Small(divide) => Ok(divide.finish()),
            StreamingGreatDivide::Great(state) => state.finish(),
        }
    }
}

impl GreatDivideState {
    fn consume(&mut self, chunk: &ColumnarBatch) -> usize {
        let rows = chunk.num_rows();
        let interned = self.a_store.intern_chunk(chunk);
        let b_keys = KeyVector::build(chunk, &self.dividend_b);
        let same_b = cross_matcher(
            chunk,
            &self.dividend_b,
            &b_keys,
            &self.divisor,
            &self.divisor_b,
            &self.divisor_b_keys,
        );
        for row in 0..rows {
            let a_gid = interned.gids[row];
            let b_id = self.b_ids.get(b_keys.code(row), |other| same_b(row, other));
            if let Some(b_id) = b_id {
                // A duplicate (A, B) pair — within or across chunks — must
                // not inflate the coverage counters.
                if self.seen_dividend.insert(a_gid, b_id) {
                    for &c_gid in &self.groups_of_b[b_id as usize] {
                        let (slot, is_new) = self.counters.intern(a_gid, c_gid);
                        if is_new {
                            self.counter_pairs.push((a_gid, c_gid));
                            self.counts.push(0);
                        }
                        self.counts[slot as usize] += 1;
                    }
                }
            }
        }
        rows
    }

    fn finish(self) -> Result<ColumnarBatch> {
        let mut qualifying: Vec<(u32, u32)> = self
            .counter_pairs
            .iter()
            .zip(&self.counts)
            .filter_map(|(&(a_gid, c_gid), &count)| {
                (count == self.c_size[c_gid as usize]).then_some((a_gid, c_gid))
            })
            .collect();
        qualifying.sort_unstable();

        let representatives = self.a_store.rows();
        let dividend_rows: Vec<usize> = qualifying
            .iter()
            .map(|&(a_gid, _)| a_gid as usize)
            .collect();
        let divisor_group_rows: Vec<usize> = qualifying
            .iter()
            .map(|&(_, c_gid)| self.c_groups.first_row(c_gid))
            .collect();
        let mut out_names: Vec<&str> = self.quotient.iter().map(String::as_str).collect();
        out_names.extend(self.group.iter().map(String::as_str));
        let out_schema = Schema::new(out_names)?;
        let mut columns = Vec::with_capacity(out_schema.arity());
        for c in 0..representatives.schema().arity() {
            columns.push(representatives.column(c).gather(&dividend_rows));
        }
        for &c in &self.divisor_c {
            columns.push(self.divisor.column(c).gather(&divisor_group_rows));
        }
        let out_rows = qualifying.len();
        Ok(ColumnarBatch::from_parts(out_schema, columns, out_rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, Relation};

    fn check(dividend: &Relation, divisor: &Relation) {
        let expected = dividend.great_divide(divisor).unwrap();
        let out = hash_great_divide(
            &ColumnarBatch::from_relation(dividend),
            &ColumnarBatch::from_relation(divisor),
        )
        .unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
    }

    #[test]
    fn figure2_quotient() {
        let dividend = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        };
        let divisor = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
        check(&dividend, &divisor);
    }

    #[test]
    fn mining_workload_counts_mixed_size_candidates() {
        let transactions = relation! {
            ["tid", "item"] =>
            [1, 10], [1, 20], [1, 30],
            [2, 10], [2, 30],
            [3, 20], [3, 30],
            [4, 10], [4, 20], [4, 30], [4, 40],
        };
        let candidates = relation! {
            ["item", "itemset"] =>
            [10, 1], [30, 1],
            [20, 2], [30, 2],
            [40, 3],
        };
        check(&transactions, &candidates);
    }

    #[test]
    fn degenerate_divisor_is_the_small_divide() {
        let dividend = relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1] };
        let divisor = relation! { ["b"] => [1], [2] };
        check(&dividend, &divisor);
    }

    #[test]
    fn empty_divisor_produces_empty_quotient() {
        let dividend = relation! { ["a", "b"] => [1, 1] };
        let divisor = Relation::empty(div_algebra::Schema::of(["b", "c"]));
        check(&dividend, &divisor);
    }

    #[test]
    fn duplicate_rows_do_not_inflate_coverage_counters() {
        // Batches built through the public API may hold duplicate rows; a
        // duplicated (a, b) pair must not make a group look like it covers
        // more of a divisor group than it does. Group a=1 covers only b=1,
        // so it must NOT qualify for the two-element divisor group c=9.
        let dividend = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1] });
        let doubled_dividend = dividend.gather(&[0, 0]);
        let divisor = ColumnarBatch::from_relation(&relation! { ["b", "c"] => [1, 9], [2, 9] });
        let out = hash_great_divide(&doubled_dividend, &divisor).unwrap();
        assert_eq!(out.batch.num_rows(), 0);

        // Symmetrically, duplicated divisor rows must not inflate the group
        // size and suppress genuine quotient pairs.
        let dividend = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1], [1, 2] });
        let doubled_divisor = divisor.gather(&[0, 0, 1]);
        let out = hash_great_divide(&dividend, &doubled_divisor).unwrap();
        assert_eq!(
            out.batch.to_relation().unwrap(),
            relation! { ["a", "c"] => [1, 9] }
        );
    }

    #[test]
    fn disjoint_schemas_are_rejected() {
        let dividend = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 1] });
        let disjoint = ColumnarBatch::from_relation(&relation! { ["x", "y"] => [1, 1] });
        assert!(hash_great_divide(&dividend, &disjoint).is_err());
    }

    #[test]
    fn streaming_great_divide_matches_the_one_shot_kernel() {
        let cases: Vec<(Relation, Relation)> = vec![
            (
                relation! {
                    ["a", "b"] =>
                    [1, 1], [1, 4],
                    [2, 1], [2, 2], [2, 3], [2, 4],
                    [3, 1], [3, 3], [3, 4],
                },
                relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] },
            ),
            // Degenerate divisor (no C attributes): the small divide.
            (
                relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1] },
                relation! { ["b"] => [1], [2] },
            ),
            // Empty divisor.
            (
                relation! { ["a", "b"] => [1, 1] },
                Relation::empty(div_algebra::Schema::of(["b", "c"])),
            ),
        ];
        for (dividend, divisor) in cases {
            let dividend = ColumnarBatch::from_relation(&dividend);
            let divisor = ColumnarBatch::from_relation(&divisor);
            let whole = hash_great_divide(&dividend, &divisor).unwrap();
            assert_eq!(
                great_quotient_schema(dividend.schema(), divisor.schema()).unwrap(),
                *whole.batch.schema()
            );
            for chunk_size in [1, 3, 100] {
                let mut streaming =
                    StreamingGreatDivide::new(dividend.schema(), divisor.clone()).unwrap();
                let mut probes = 0;
                let mut start = 0;
                while start < dividend.num_rows() {
                    let end = (start + chunk_size).min(dividend.num_rows());
                    let indices: Vec<usize> = (start..end).collect();
                    probes += streaming.consume(&dividend.gather(&indices));
                    start = end;
                }
                assert_eq!(probes, dividend.num_rows());
                assert_eq!(
                    streaming.finish().unwrap().to_relation().unwrap(),
                    whole.batch.to_relation().unwrap(),
                    "chunk size {chunk_size}"
                );
            }
        }
    }

    #[test]
    fn prehashed_entry_point_matches() {
        let dividend = ColumnarBatch::from_relation(&relation! {
            ["a", "b"] => [1, 1], [1, 2], [2, 1]
        });
        let divisor = ColumnarBatch::from_relation(&relation! {
            ["b", "c"] => [1, 1], [2, 1], [1, 2]
        });
        let c_cols = divisor
            .projection_indices(&["c"])
            .expect("group attribute resolves");
        let c_keys = KeyVector::build(&divisor, &c_cols);
        let plain = hash_great_divide(&dividend, &divisor).unwrap();
        let prehashed = hash_great_divide_prehashed(&dividend, &divisor, &c_keys).unwrap();
        assert_eq!(plain.batch, prehashed.batch);
        assert_eq!(plain.probes, prehashed.probes);
    }
}
