//! Batch-native operator kernels.
//!
//! Every kernel consumes and produces [`ColumnarBatch`](crate::ColumnarBatch)
//! values and mirrors the semantics (including the output schema and the
//! error conditions) of the corresponding `div-algebra` reference operator,
//! so an executor can swap a kernel in for a row operator node-by-node.

pub mod aggregate;
pub mod divide;
pub mod filter;
pub mod great_divide;
pub mod join;
pub mod product;
pub mod project;
pub mod set_ops;

pub use aggregate::hash_aggregate;
pub use divide::{hash_divide, hash_divide_prehashed, quotient_schema, StreamingDivide};
pub use filter::filter;
pub use great_divide::{
    great_quotient_schema, hash_great_divide, hash_great_divide_prehashed, StreamingGreatDivide,
};
pub use join::{
    hash_natural_join, hash_natural_join_prehashed, hash_semi_join, hash_semi_join_prehashed,
    JoinBuild, KernelOutput,
};
pub use product::{cross_product, cross_product_slice, theta_join};
pub use project::{project, rename, union};
pub use set_ops::{difference, intersect};
