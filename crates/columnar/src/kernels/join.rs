//! Batch-native hash joins.

use crate::batch::ColumnarBatch;
use crate::keys::RowKey;
use crate::Result;
use std::collections::{HashMap, HashSet};

/// A kernel result: the output batch plus the probe count the executor feeds
/// into [`ExecStats`](https://docs.rs/div-physical) (one probe per left row,
/// matching the row backend's accounting).
#[derive(Debug, Clone)]
pub struct KernelOutput {
    /// The produced batch.
    pub batch: ColumnarBatch,
    /// Hash probes performed.
    pub probes: usize,
}

/// Hash-based natural join on all common attributes: build on the right,
/// probe with the left. Mirrors the row executor's `hash_natural_join`
/// (including the output schema: left attributes, then right-only
/// attributes).
pub fn hash_natural_join(left: &ColumnarBatch, right: &ColumnarBatch) -> Result<KernelOutput> {
    let common = left.schema().common_attributes(right.schema());
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    let left_key = left.projection_indices(&common_refs)?;
    let right_key = right.projection_indices(&common_refs)?;
    let right_extra: Vec<&str> = right
        .schema()
        .names()
        .into_iter()
        .filter(|n| !left.schema().contains(n))
        .collect();
    let right_extra_idx = right.projection_indices(&right_extra)?;

    // Build: key -> right row indices.
    let mut table: HashMap<RowKey, Vec<usize>> = HashMap::with_capacity(right.num_rows());
    for i in 0..right.num_rows() {
        table
            .entry(right.key_at(i, &right_key))
            .or_default()
            .push(i);
    }

    // Probe: emit (left row, right row) index pairs.
    let mut left_indices: Vec<usize> = Vec::new();
    let mut right_indices: Vec<usize> = Vec::new();
    let mut probes = 0usize;
    for i in 0..left.num_rows() {
        probes += 1;
        if let Some(matches) = table.get(&left.key_at(i, &left_key)) {
            for &j in matches {
                left_indices.push(i);
                right_indices.push(j);
            }
        }
    }

    // Assemble: all left columns gathered by the left indices, right-only
    // columns gathered by the right indices.
    let out_schema = left.schema().natural_union(right.schema());
    let gathered_left = left.gather(&left_indices);
    let gathered_right = right.gather(&right_indices);
    let mut columns = gathered_left.columns().to_vec();
    columns.extend(
        right_extra_idx
            .iter()
            .map(|&c| gathered_right.column(c).clone()),
    );
    let rows = left_indices.len();
    Ok(KernelOutput {
        batch: ColumnarBatch::from_parts(out_schema, columns, rows),
        probes,
    })
}

/// Hash-based left semi-join (`anti = false`) or anti-semi-join
/// (`anti = true`) on all common attributes.
pub fn hash_semi_join(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    anti: bool,
) -> Result<KernelOutput> {
    let common = left.schema().common_attributes(right.schema());
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    let left_key = left.projection_indices(&common_refs)?;
    let right_key = right.projection_indices(&common_refs)?;
    let keys: HashSet<RowKey> = (0..right.num_rows())
        .map(|i| right.key_at(i, &right_key))
        .collect();
    let mut mask = Vec::with_capacity(left.num_rows());
    let mut probes = 0usize;
    for i in 0..left.num_rows() {
        probes += 1;
        let matched = keys.contains(&left.key_at(i, &left_key));
        mask.push(matched != anti);
    }
    Ok(KernelOutput {
        batch: left.select_by_mask(&mask),
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn inputs() -> (ColumnarBatch, ColumnarBatch) {
        (
            ColumnarBatch::from_relation(&relation! {
                ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 3], [3, 2]
            }),
            ColumnarBatch::from_relation(&relation! {
                ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"]
            }),
        )
    }

    #[test]
    fn natural_join_matches_reference() {
        let (supplies, parts) = inputs();
        let expected = supplies
            .to_relation()
            .unwrap()
            .natural_join(&parts.to_relation().unwrap())
            .unwrap();
        let out = hash_natural_join(&supplies, &parts).unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
        assert_eq!(out.probes, supplies.num_rows());
    }

    #[test]
    fn semi_joins_partition_the_left_input() {
        let (supplies, parts) = inputs();
        let semi = hash_semi_join(&supplies, &parts, false).unwrap();
        let anti = hash_semi_join(&supplies, &parts, true).unwrap();
        assert_eq!(
            semi.batch.num_rows() + anti.batch.num_rows(),
            supplies.num_rows()
        );
        let l = supplies.to_relation().unwrap();
        let r = parts.to_relation().unwrap();
        assert_eq!(semi.batch.to_relation().unwrap(), l.semi_join(&r).unwrap());
        assert_eq!(
            anti.batch.to_relation().unwrap(),
            l.anti_semi_join(&r).unwrap()
        );
    }

    #[test]
    fn string_keyed_join_works_through_dictionaries() {
        let l = ColumnarBatch::from_relation(&relation! {
            ["name", "v"] => ["x", 1], ["y", 2]
        });
        let r = ColumnarBatch::from_relation(&relation! {
            ["name", "w"] => ["x", 10], ["z", 30]
        });
        let out = hash_natural_join(&l, &r).unwrap();
        let expected = l
            .to_relation()
            .unwrap()
            .natural_join(&r.to_relation().unwrap())
            .unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
    }
}
