//! Batch-native hash joins on the vectorized key pipeline.
//!
//! Keys are normalized once per batch ([`KeyVector`]) and the build side
//! goes into an open-addressing [`GroupIndex`] plus a
//! CSR row list — no
//! per-row `Value` materialization, no SipHash. The `_prehashed` entry
//! points accept key vectors computed upstream (by
//! `div_physical::parallel_columnar`'s partitioning step), so
//! partition-parallel runs hash each row once, not twice.

use crate::batch::ColumnarBatch;
use crate::hash_table::{index_rows, index_rows_tracked, GroupIndex};
use crate::key_vector::{cross_matcher, KeyVector};
use crate::Result;
use div_algebra::Schema;

/// A kernel result: the output batch plus the probe count the executor feeds
/// into [`ExecStats`](https://docs.rs/div-physical) (one probe per left row,
/// matching the row backend's accounting).
#[derive(Debug, Clone)]
pub struct KernelOutput {
    /// The produced batch.
    pub batch: ColumnarBatch,
    /// Hash probes performed.
    pub probes: usize,
}

/// Key column positions of the common attributes on both sides, in the
/// left schema's common-attribute order (the shared layout every hash join
/// keys on).
fn join_key_columns(left: &Schema, right: &Schema) -> Result<(Vec<usize>, Vec<usize>)> {
    let common = left.common_attributes(right);
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    Ok((
        left.projection_indices(&common_refs)?,
        right.projection_indices(&common_refs)?,
    ))
}

/// CSR row lists over dense group ids: `offsets[g]..offsets[g + 1]` indexes
/// the rows of group `g` in `rows`, in ascending row order.
fn csr_from_gids(gid_of: &[u32], groups: usize) -> (Vec<u32>, Vec<u32>) {
    let mut counts = vec![0u32; groups];
    for &gid in gid_of {
        counts[gid as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(groups + 1);
    let mut running = 0u32;
    for &c in &counts {
        offsets.push(running);
        running += c;
    }
    offsets.push(running);
    let mut cursor: Vec<u32> = offsets[..groups].to_vec();
    let mut rows = vec![0u32; gid_of.len()];
    for (row, &gid) in gid_of.iter().enumerate() {
        let slot = cursor[gid as usize];
        rows[slot as usize] = row as u32;
        cursor[gid as usize] = slot + 1;
    }
    (offsets, rows)
}

/// The names of the build-side-only attributes, in build-schema order.
fn extra_attributes<'a>(probe: &Schema, build: &'a Schema) -> Vec<&'a str> {
    build
        .names()
        .into_iter()
        .filter(|n| !probe.contains(n))
        .collect()
}

/// The shared natural-join probe loop: stream `left` against a prebuilt
/// (`index`, CSR) over `right`, gathering left columns plus the
/// build-side-only columns.
#[allow(clippy::too_many_arguments)]
fn natural_probe(
    left: &ColumnarBatch,
    left_key: &[usize],
    left_keys: &KeyVector,
    right: &ColumnarBatch,
    right_key: &[usize],
    right_keys: &KeyVector,
    index: &GroupIndex,
    offsets: &[u32],
    rows_csr: &[u32],
    right_extra_idx: &[usize],
    out_schema: Schema,
) -> KernelOutput {
    let same_key = cross_matcher(left, left_key, left_keys, right, right_key, right_keys);
    let mut left_indices: Vec<usize> = Vec::new();
    let mut right_indices: Vec<usize> = Vec::new();
    let mut probes = 0usize;
    for i in 0..left.num_rows() {
        probes += 1;
        let found = index.get(left_keys.code(i), |other| same_key(i, other));
        if let Some(gid) = found {
            let (start, end) = (offsets[gid as usize], offsets[gid as usize + 1]);
            for &j in &rows_csr[start as usize..end as usize] {
                left_indices.push(i);
                right_indices.push(j as usize);
            }
        }
    }
    let mut columns: Vec<_> = left
        .columns()
        .iter()
        .map(|c| c.gather(&left_indices))
        .collect();
    columns.extend(
        right_extra_idx
            .iter()
            .map(|&c| right.column(c).gather(&right_indices)),
    );
    let rows = left_indices.len();
    KernelOutput {
        batch: ColumnarBatch::from_parts(out_schema, columns, rows),
        probes,
    }
}

/// The shared semi/anti probe loop: keep the left rows whose key does
/// (`anti = false`) or does not (`anti = true`) appear in `index`.
#[allow(clippy::too_many_arguments)]
fn semi_probe(
    left: &ColumnarBatch,
    left_key: &[usize],
    left_keys: &KeyVector,
    right: &ColumnarBatch,
    right_key: &[usize],
    right_keys: &KeyVector,
    index: &GroupIndex,
    anti: bool,
) -> KernelOutput {
    let same_key = cross_matcher(left, left_key, left_keys, right, right_key, right_keys);
    let mut mask = Vec::with_capacity(left.num_rows());
    let mut probes = 0usize;
    for i in 0..left.num_rows() {
        probes += 1;
        let matched = index
            .get(left_keys.code(i), |other| same_key(i, other))
            .is_some();
        mask.push(matched != anti);
    }
    KernelOutput {
        batch: left.select_by_mask(&mask),
        probes,
    }
}

/// A hash-join build side prepared once and probed chunk-at-a-time — the
/// streaming-friendly entry point behind `div_physical::stream`'s join
/// operators. The build batch is hashed and CSR-indexed exactly once;
/// every probe chunk then streams through [`JoinBuild::probe_natural`] /
/// [`JoinBuild::probe_semi`] without the per-call rebuild the one-shot
/// kernels ([`hash_natural_join`], [`hash_semi_join`]) pay.
///
/// ```
/// use div_algebra::relation;
/// use div_columnar::{kernels::JoinBuild, ColumnarBatch};
///
/// let probe_side = ColumnarBatch::from_relation(&relation! {
///     ["s#", "p#"] => [1, 1], [2, 1], [2, 2]
/// });
/// let build_side = ColumnarBatch::from_relation(&relation! {
///     ["p#", "color"] => [1, "blue"], [2, "red"]
/// });
/// let build = JoinBuild::new(probe_side.schema(), build_side)?;
/// let mut joined = 0;
/// for chunk_rows in [&[0usize, 1][..], &[2][..]] {
///     let chunk = probe_side.gather(chunk_rows);
///     joined += build.probe_natural(&chunk)?.batch.num_rows();
/// }
/// assert_eq!(joined, 3);
/// # Ok::<(), div_algebra::AlgebraError>(())
/// ```
#[derive(Debug)]
pub struct JoinBuild {
    build: ColumnarBatch,
    probe_key: Vec<usize>,
    build_key: Vec<usize>,
    build_keys: KeyVector,
    index: GroupIndex,
    offsets: Vec<u32>,
    rows_csr: Vec<u32>,
    build_extra_idx: Vec<usize>,
    out_schema: Schema,
}

impl JoinBuild {
    /// Hash `build` on the attributes it shares with `probe_schema` (the
    /// schema every later probe chunk must carry).
    pub fn new(probe_schema: &Schema, build: ColumnarBatch) -> Result<JoinBuild> {
        let (probe_key, build_key) = join_key_columns(probe_schema, build.schema())?;
        let build_extra = extra_attributes(probe_schema, build.schema());
        let build_extra_idx = build.projection_indices(&build_extra)?;
        let out_schema = probe_schema.natural_union(build.schema());
        let build_keys = KeyVector::build(&build, &build_key);
        let (index, gid_of) = index_rows_tracked(&build, &build_key, &build_keys);
        let (offsets, rows_csr) = csr_from_gids(&gid_of, index.len());
        Ok(JoinBuild {
            build,
            probe_key,
            build_key,
            build_keys,
            index,
            offsets,
            rows_csr,
            build_extra_idx,
            out_schema,
        })
    }

    /// The natural-join output schema (probe attributes, then
    /// build-side-only attributes).
    pub fn out_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// Number of rows in the retained build side.
    pub fn build_rows(&self) -> usize {
        self.build.num_rows()
    }

    /// Natural-join one probe chunk against the prepared build side.
    pub fn probe_natural(&self, chunk: &ColumnarBatch) -> Result<KernelOutput> {
        let chunk_keys = KeyVector::build(chunk, &self.probe_key);
        Ok(natural_probe(
            chunk,
            &self.probe_key,
            &chunk_keys,
            &self.build,
            &self.build_key,
            &self.build_keys,
            &self.index,
            &self.offsets,
            &self.rows_csr,
            &self.build_extra_idx,
            self.out_schema.clone(),
        ))
    }

    /// Semi-join (`anti = false`) or anti-semi-join (`anti = true`) one
    /// probe chunk against the prepared build side.
    pub fn probe_semi(&self, chunk: &ColumnarBatch, anti: bool) -> Result<KernelOutput> {
        let chunk_keys = KeyVector::build(chunk, &self.probe_key);
        Ok(semi_probe(
            chunk,
            &self.probe_key,
            &chunk_keys,
            &self.build,
            &self.build_key,
            &self.build_keys,
            &self.index,
            anti,
        ))
    }
}

/// Hash-based natural join on all common attributes: build on the right,
/// probe with the left. Mirrors the row executor's `hash_natural_join`
/// (including the output schema: left attributes, then right-only
/// attributes).
pub fn hash_natural_join(left: &ColumnarBatch, right: &ColumnarBatch) -> Result<KernelOutput> {
    let (left_key, right_key) = join_key_columns(left.schema(), right.schema())?;
    let left_keys = KeyVector::build(left, &left_key);
    let right_keys = KeyVector::build(right, &right_key);
    natural_join_core(left, right, &left_key, &right_key, &left_keys, &right_keys)
}

/// [`hash_natural_join`] with both sides' key vectors precomputed (over the
/// common attributes, in the left schema's common-attribute order — the
/// layout [`KeyVector::build`] on the join key columns produces).
pub fn hash_natural_join_prehashed(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    left_keys: &KeyVector,
    right_keys: &KeyVector,
) -> Result<KernelOutput> {
    let (left_key, right_key) = join_key_columns(left.schema(), right.schema())?;
    natural_join_core(left, right, &left_key, &right_key, left_keys, right_keys)
}

fn natural_join_core(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    left_key: &[usize],
    right_key: &[usize],
    left_keys: &KeyVector,
    right_keys: &KeyVector,
) -> Result<KernelOutput> {
    let right_extra = extra_attributes(left.schema(), right.schema());
    let right_extra_idx = right.projection_indices(&right_extra)?;

    // Build: dense group ids over the right rows, then a CSR layout listing
    // each group's rows in ascending order. Probe with the whole left side.
    let (index, gid_of) = index_rows_tracked(right, right_key, right_keys);
    let (offsets, rows_csr) = csr_from_gids(&gid_of, index.len());
    let out_schema = left.schema().natural_union(right.schema());
    Ok(natural_probe(
        left,
        left_key,
        left_keys,
        right,
        right_key,
        right_keys,
        &index,
        &offsets,
        &rows_csr,
        &right_extra_idx,
        out_schema,
    ))
}

/// Hash-based left semi-join (`anti = false`) or anti-semi-join
/// (`anti = true`) on all common attributes.
pub fn hash_semi_join(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    anti: bool,
) -> Result<KernelOutput> {
    let (left_key, right_key) = join_key_columns(left.schema(), right.schema())?;
    let left_keys = KeyVector::build(left, &left_key);
    let right_keys = KeyVector::build(right, &right_key);
    semi_join_core(
        left,
        right,
        anti,
        &left_key,
        &right_key,
        &left_keys,
        &right_keys,
    )
}

/// [`hash_semi_join`] with both sides' key vectors precomputed (same
/// contract as [`hash_natural_join_prehashed`]).
pub fn hash_semi_join_prehashed(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    anti: bool,
    left_keys: &KeyVector,
    right_keys: &KeyVector,
) -> Result<KernelOutput> {
    let (left_key, right_key) = join_key_columns(left.schema(), right.schema())?;
    semi_join_core(
        left, right, anti, &left_key, &right_key, left_keys, right_keys,
    )
}

fn semi_join_core(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    anti: bool,
    left_key: &[usize],
    right_key: &[usize],
    left_keys: &KeyVector,
    right_keys: &KeyVector,
) -> Result<KernelOutput> {
    let index = index_rows(right, right_key, right_keys);
    Ok(semi_probe(
        left, left_key, left_keys, right, right_key, right_keys, &index, anti,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn inputs() -> (ColumnarBatch, ColumnarBatch) {
        (
            ColumnarBatch::from_relation(&relation! {
                ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 3], [3, 2]
            }),
            ColumnarBatch::from_relation(&relation! {
                ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"]
            }),
        )
    }

    #[test]
    fn natural_join_matches_reference() {
        let (supplies, parts) = inputs();
        let expected = supplies
            .to_relation()
            .unwrap()
            .natural_join(&parts.to_relation().unwrap())
            .unwrap();
        let out = hash_natural_join(&supplies, &parts).unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
        assert_eq!(out.probes, supplies.num_rows());
    }

    #[test]
    fn semi_joins_partition_the_left_input() {
        let (supplies, parts) = inputs();
        let semi = hash_semi_join(&supplies, &parts, false).unwrap();
        let anti = hash_semi_join(&supplies, &parts, true).unwrap();
        assert_eq!(
            semi.batch.num_rows() + anti.batch.num_rows(),
            supplies.num_rows()
        );
        let l = supplies.to_relation().unwrap();
        let r = parts.to_relation().unwrap();
        assert_eq!(semi.batch.to_relation().unwrap(), l.semi_join(&r).unwrap());
        assert_eq!(
            anti.batch.to_relation().unwrap(),
            l.anti_semi_join(&r).unwrap()
        );
    }

    #[test]
    fn string_keyed_join_works_through_dictionaries() {
        let l = ColumnarBatch::from_relation(&relation! {
            ["name", "v"] => ["x", 1], ["y", 2]
        });
        let r = ColumnarBatch::from_relation(&relation! {
            ["name", "w"] => ["x", 10], ["z", 30]
        });
        let out = hash_natural_join(&l, &r).unwrap();
        let expected = l
            .to_relation()
            .unwrap()
            .natural_join(&r.to_relation().unwrap())
            .unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
    }

    #[test]
    fn prehashed_entry_points_match_the_building_ones() {
        let (supplies, parts) = inputs();
        let (lk, rk) = join_key_columns(supplies.schema(), parts.schema()).unwrap();
        let left_keys = KeyVector::build(&supplies, &lk);
        let right_keys = KeyVector::build(&parts, &rk);
        let natural = hash_natural_join(&supplies, &parts).unwrap();
        let prehashed =
            hash_natural_join_prehashed(&supplies, &parts, &left_keys, &right_keys).unwrap();
        assert_eq!(natural.batch, prehashed.batch);
        assert_eq!(natural.probes, prehashed.probes);
        for anti in [false, true] {
            let a = hash_semi_join(&supplies, &parts, anti).unwrap();
            let b =
                hash_semi_join_prehashed(&supplies, &parts, anti, &left_keys, &right_keys).unwrap();
            assert_eq!(a.batch, b.batch);
        }
    }

    #[test]
    fn join_build_probed_in_chunks_matches_the_one_shot_kernels() {
        let (supplies, parts) = inputs();
        let build = JoinBuild::new(supplies.schema(), parts.clone()).unwrap();
        assert_eq!(build.build_rows(), parts.num_rows());
        let whole = hash_natural_join(&supplies, &parts).unwrap();
        assert_eq!(build.out_schema(), whole.batch.schema());
        // Probe in three uneven chunks; concatenated output must equal the
        // one-shot kernel's, probes must sum identically.
        let chunks = [&[0usize][..], &[1, 2][..], &[3, 4][..]];
        let mut rows = Vec::new();
        let mut probes = 0;
        for indices in chunks {
            let out = build.probe_natural(&supplies.gather(indices)).unwrap();
            probes += out.probes;
            for i in 0..out.batch.num_rows() {
                rows.push(out.batch.row(i));
            }
        }
        assert_eq!(probes, whole.probes);
        let streamed = div_algebra::Relation::new(whole.batch.schema().clone(), rows).unwrap();
        assert_eq!(streamed, whole.batch.to_relation().unwrap());
        // Semi/anti chunked probes agree with the one-shot kernels too.
        for anti in [false, true] {
            let whole = hash_semi_join(&supplies, &parts, anti).unwrap();
            let mut streamed_rows = 0;
            for indices in chunks {
                streamed_rows += build
                    .probe_semi(&supplies.gather(indices), anti)
                    .unwrap()
                    .batch
                    .num_rows();
            }
            assert_eq!(streamed_rows, whole.batch.num_rows(), "anti = {anti}");
        }
    }

    #[test]
    fn duplicate_build_keys_emit_matches_in_ascending_row_order() {
        // Several right rows share p# = 1; the CSR build must emit them in
        // ascending right-row order for each probing left row.
        let left = ColumnarBatch::from_relation(&relation! { ["p#"] => [1] });
        let right = ColumnarBatch::from_relation(&relation! {
            ["p#", "v"] => [1, 10], [1, 20], [1, 30]
        });
        let out = hash_natural_join(&left, &right).unwrap();
        let vs: Vec<_> = (0..out.batch.num_rows())
            .map(|i| out.batch.value_at(i, 1))
            .collect();
        assert_eq!(
            vs,
            vec![
                div_algebra::Value::Int(10),
                div_algebra::Value::Int(20),
                div_algebra::Value::Int(30)
            ]
        );
    }
}
