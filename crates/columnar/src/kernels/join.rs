//! Batch-native hash joins on the vectorized key pipeline.
//!
//! Keys are normalized once per batch ([`KeyVector`]) and the build side
//! goes into an open-addressing [`GroupIndex`](crate::GroupIndex) plus a
//! CSR row list — no
//! per-row `Value` materialization, no SipHash. The `_prehashed` entry
//! points accept key vectors computed upstream (by
//! `div_physical::parallel_columnar`'s partitioning step), so
//! partition-parallel runs hash each row once, not twice.

use crate::batch::ColumnarBatch;
use crate::hash_table::{index_rows, index_rows_tracked};
use crate::key_vector::{cross_matcher, KeyVector};
use crate::Result;

/// A kernel result: the output batch plus the probe count the executor feeds
/// into [`ExecStats`](https://docs.rs/div-physical) (one probe per left row,
/// matching the row backend's accounting).
#[derive(Debug, Clone)]
pub struct KernelOutput {
    /// The produced batch.
    pub batch: ColumnarBatch,
    /// Hash probes performed.
    pub probes: usize,
}

/// Key column positions of the common attributes on both sides, in the
/// left schema's common-attribute order (the shared layout every hash join
/// keys on).
fn join_key_columns(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
) -> Result<(Vec<usize>, Vec<usize>)> {
    let common = left.schema().common_attributes(right.schema());
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    Ok((
        left.projection_indices(&common_refs)?,
        right.projection_indices(&common_refs)?,
    ))
}

/// Hash-based natural join on all common attributes: build on the right,
/// probe with the left. Mirrors the row executor's `hash_natural_join`
/// (including the output schema: left attributes, then right-only
/// attributes).
pub fn hash_natural_join(left: &ColumnarBatch, right: &ColumnarBatch) -> Result<KernelOutput> {
    let (left_key, right_key) = join_key_columns(left, right)?;
    let left_keys = KeyVector::build(left, &left_key);
    let right_keys = KeyVector::build(right, &right_key);
    natural_join_core(left, right, &left_key, &right_key, &left_keys, &right_keys)
}

/// [`hash_natural_join`] with both sides' key vectors precomputed (over the
/// common attributes, in the left schema's common-attribute order — the
/// layout [`KeyVector::build`] on the join key columns produces).
pub fn hash_natural_join_prehashed(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    left_keys: &KeyVector,
    right_keys: &KeyVector,
) -> Result<KernelOutput> {
    let (left_key, right_key) = join_key_columns(left, right)?;
    natural_join_core(left, right, &left_key, &right_key, left_keys, right_keys)
}

fn natural_join_core(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    left_key: &[usize],
    right_key: &[usize],
    left_keys: &KeyVector,
    right_keys: &KeyVector,
) -> Result<KernelOutput> {
    let right_extra: Vec<&str> = right
        .schema()
        .names()
        .into_iter()
        .filter(|n| !left.schema().contains(n))
        .collect();
    let right_extra_idx = right.projection_indices(&right_extra)?;

    // Build: dense group ids over the right rows, then a CSR layout listing
    // each group's rows in ascending order.
    let (index, gid_of) = index_rows_tracked(right, right_key, right_keys);
    let groups = index.len();
    let mut counts = vec![0u32; groups];
    for &gid in &gid_of {
        counts[gid as usize] += 1;
    }
    let mut offsets = Vec::with_capacity(groups + 1);
    let mut running = 0u32;
    for &c in &counts {
        offsets.push(running);
        running += c;
    }
    offsets.push(running);
    let mut cursor: Vec<u32> = offsets[..groups].to_vec();
    let mut rows_csr = vec![0u32; right.num_rows()];
    for (row, &gid) in gid_of.iter().enumerate() {
        let slot = cursor[gid as usize];
        rows_csr[slot as usize] = row as u32;
        cursor[gid as usize] = slot + 1;
    }

    // Probe: emit (left row, right row) index pairs.
    let same_key = cross_matcher(left, left_key, left_keys, right, right_key, right_keys);
    let mut left_indices: Vec<usize> = Vec::new();
    let mut right_indices: Vec<usize> = Vec::new();
    let mut probes = 0usize;
    for i in 0..left.num_rows() {
        probes += 1;
        let found = index.get(left_keys.code(i), |other| same_key(i, other));
        if let Some(gid) = found {
            let (start, end) = (offsets[gid as usize], offsets[gid as usize + 1]);
            for &j in &rows_csr[start as usize..end as usize] {
                left_indices.push(i);
                right_indices.push(j as usize);
            }
        }
    }

    // Assemble: all left columns gathered by the left indices; of the right
    // side, gather only the right-extra columns actually emitted.
    let out_schema = left.schema().natural_union(right.schema());
    let mut columns: Vec<_> = left
        .columns()
        .iter()
        .map(|c| c.gather(&left_indices))
        .collect();
    columns.extend(
        right_extra_idx
            .iter()
            .map(|&c| right.column(c).gather(&right_indices)),
    );
    let rows = left_indices.len();
    Ok(KernelOutput {
        batch: ColumnarBatch::from_parts(out_schema, columns, rows),
        probes,
    })
}

/// Hash-based left semi-join (`anti = false`) or anti-semi-join
/// (`anti = true`) on all common attributes.
pub fn hash_semi_join(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    anti: bool,
) -> Result<KernelOutput> {
    let (left_key, right_key) = join_key_columns(left, right)?;
    let left_keys = KeyVector::build(left, &left_key);
    let right_keys = KeyVector::build(right, &right_key);
    semi_join_core(
        left,
        right,
        anti,
        &left_key,
        &right_key,
        &left_keys,
        &right_keys,
    )
}

/// [`hash_semi_join`] with both sides' key vectors precomputed (same
/// contract as [`hash_natural_join_prehashed`]).
pub fn hash_semi_join_prehashed(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    anti: bool,
    left_keys: &KeyVector,
    right_keys: &KeyVector,
) -> Result<KernelOutput> {
    let (left_key, right_key) = join_key_columns(left, right)?;
    semi_join_core(
        left, right, anti, &left_key, &right_key, left_keys, right_keys,
    )
}

fn semi_join_core(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    anti: bool,
    left_key: &[usize],
    right_key: &[usize],
    left_keys: &KeyVector,
    right_keys: &KeyVector,
) -> Result<KernelOutput> {
    let index = index_rows(right, right_key, right_keys);
    let same_key = cross_matcher(left, left_key, left_keys, right, right_key, right_keys);
    let mut mask = Vec::with_capacity(left.num_rows());
    let mut probes = 0usize;
    for i in 0..left.num_rows() {
        probes += 1;
        let matched = index
            .get(left_keys.code(i), |other| same_key(i, other))
            .is_some();
        mask.push(matched != anti);
    }
    Ok(KernelOutput {
        batch: left.select_by_mask(&mask),
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn inputs() -> (ColumnarBatch, ColumnarBatch) {
        (
            ColumnarBatch::from_relation(&relation! {
                ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 3], [3, 2]
            }),
            ColumnarBatch::from_relation(&relation! {
                ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"]
            }),
        )
    }

    #[test]
    fn natural_join_matches_reference() {
        let (supplies, parts) = inputs();
        let expected = supplies
            .to_relation()
            .unwrap()
            .natural_join(&parts.to_relation().unwrap())
            .unwrap();
        let out = hash_natural_join(&supplies, &parts).unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
        assert_eq!(out.probes, supplies.num_rows());
    }

    #[test]
    fn semi_joins_partition_the_left_input() {
        let (supplies, parts) = inputs();
        let semi = hash_semi_join(&supplies, &parts, false).unwrap();
        let anti = hash_semi_join(&supplies, &parts, true).unwrap();
        assert_eq!(
            semi.batch.num_rows() + anti.batch.num_rows(),
            supplies.num_rows()
        );
        let l = supplies.to_relation().unwrap();
        let r = parts.to_relation().unwrap();
        assert_eq!(semi.batch.to_relation().unwrap(), l.semi_join(&r).unwrap());
        assert_eq!(
            anti.batch.to_relation().unwrap(),
            l.anti_semi_join(&r).unwrap()
        );
    }

    #[test]
    fn string_keyed_join_works_through_dictionaries() {
        let l = ColumnarBatch::from_relation(&relation! {
            ["name", "v"] => ["x", 1], ["y", 2]
        });
        let r = ColumnarBatch::from_relation(&relation! {
            ["name", "w"] => ["x", 10], ["z", 30]
        });
        let out = hash_natural_join(&l, &r).unwrap();
        let expected = l
            .to_relation()
            .unwrap()
            .natural_join(&r.to_relation().unwrap())
            .unwrap();
        assert_eq!(out.batch.to_relation().unwrap(), expected);
    }

    #[test]
    fn prehashed_entry_points_match_the_building_ones() {
        let (supplies, parts) = inputs();
        let (lk, rk) = join_key_columns(&supplies, &parts).unwrap();
        let left_keys = KeyVector::build(&supplies, &lk);
        let right_keys = KeyVector::build(&parts, &rk);
        let natural = hash_natural_join(&supplies, &parts).unwrap();
        let prehashed =
            hash_natural_join_prehashed(&supplies, &parts, &left_keys, &right_keys).unwrap();
        assert_eq!(natural.batch, prehashed.batch);
        assert_eq!(natural.probes, prehashed.probes);
        for anti in [false, true] {
            let a = hash_semi_join(&supplies, &parts, anti).unwrap();
            let b =
                hash_semi_join_prehashed(&supplies, &parts, anti, &left_keys, &right_keys).unwrap();
            assert_eq!(a.batch, b.batch);
        }
    }

    #[test]
    fn duplicate_build_keys_emit_matches_in_ascending_row_order() {
        // Several right rows share p# = 1; the CSR build must emit them in
        // ascending right-row order for each probing left row.
        let left = ColumnarBatch::from_relation(&relation! { ["p#"] => [1] });
        let right = ColumnarBatch::from_relation(&relation! {
            ["p#", "v"] => [1, 10], [1, 20], [1, 30]
        });
        let out = hash_natural_join(&left, &right).unwrap();
        let vs: Vec<_> = (0..out.batch.num_rows())
            .map(|i| out.batch.value_at(i, 1))
            .collect();
        assert_eq!(
            vs,
            vec![
                div_algebra::Value::Int(10),
                div_algebra::Value::Int(20),
                div_algebra::Value::Int(30)
            ]
        );
    }
}
