//! Vectorized predicate evaluation.
//!
//! Comparisons are evaluated column-at-a-time: integer comparisons run as a
//! tight loop over the `i64` slice, and string comparisons against a constant
//! are evaluated **once per dictionary entry** and then broadcast through the
//! code vector — the classic dictionary-encoding win. Anything the fast paths
//! cannot prove well-typed falls back to the row-at-a-time reference
//! evaluator ([`div_algebra::Predicate::eval`]) for the whole batch, so error
//! semantics (including `And`/`Or` short-circuiting) match the row backend
//! exactly.

use crate::batch::ColumnarBatch;
use crate::column::Column;
use crate::Result;
use div_algebra::{CompareOp, Predicate, Value};

/// Filter `batch` by `predicate`.
pub fn filter(batch: &ColumnarBatch, predicate: &Predicate) -> Result<ColumnarBatch> {
    match eval_mask(batch, predicate) {
        Ok(mask) => Ok(batch.select_by_mask(&mask)),
        // The vectorized path evaluates sub-expressions eagerly; an error may
        // be a false positive that row-at-a-time short-circuiting would never
        // reach. Re-run with reference semantics to decide.
        Err(_) => filter_row_fallback(batch, predicate),
    }
}

fn filter_row_fallback(batch: &ColumnarBatch, predicate: &Predicate) -> Result<ColumnarBatch> {
    let schema = batch.schema();
    let mut mask = Vec::with_capacity(batch.num_rows());
    for i in 0..batch.num_rows() {
        mask.push(predicate.eval(schema, &batch.row(i))?);
    }
    Ok(batch.select_by_mask(&mask))
}

/// Evaluate `predicate` to a row mask.
pub fn eval_mask(batch: &ColumnarBatch, predicate: &Predicate) -> Result<Vec<bool>> {
    let rows = batch.num_rows();
    match predicate {
        Predicate::True => Ok(vec![true; rows]),
        Predicate::False => Ok(vec![false; rows]),
        Predicate::CompareValue {
            attribute,
            op,
            value,
        } => {
            let idx = batch.schema().require(attribute)?;
            compare_column_value(batch.column(idx), *op, value)
        }
        Predicate::CompareAttributes { left, op, right } => {
            let li = batch.schema().require(left)?;
            let ri = batch.schema().require(right)?;
            compare_columns(batch.column(li), batch.column(ri), *op)
        }
        // Parameter placeholders must be bound before execution; report the
        // same error as the row-at-a-time evaluator.
        Predicate::CompareParameter { parameter, .. } => {
            Err(div_algebra::AlgebraError::UnboundParameter {
                parameter: parameter.clone(),
            })
        }
        Predicate::And(l, r) => {
            let mut mask = eval_mask(batch, l)?;
            let rmask = eval_mask(batch, r)?;
            for (m, r) in mask.iter_mut().zip(rmask) {
                *m = *m && r;
            }
            Ok(mask)
        }
        Predicate::Or(l, r) => {
            let mut mask = eval_mask(batch, l)?;
            let rmask = eval_mask(batch, r)?;
            for (m, r) in mask.iter_mut().zip(rmask) {
                *m = *m || r;
            }
            Ok(mask)
        }
        Predicate::Not(inner) => {
            let mut mask = eval_mask(batch, inner)?;
            for m in mask.iter_mut() {
                *m = !*m;
            }
            Ok(mask)
        }
    }
}

fn apply_op<T: PartialOrd + PartialEq>(op: CompareOp, l: &T, r: &T) -> bool {
    match op {
        CompareOp::Eq => l == r,
        CompareOp::NotEq => l != r,
        CompareOp::Lt => l < r,
        CompareOp::LtEq => l <= r,
        CompareOp::Gt => l > r,
        CompareOp::GtEq => l >= r,
    }
}

fn compare_column_value(column: &Column, op: CompareOp, constant: &Value) -> Result<Vec<bool>> {
    match (column, constant) {
        (
            Column::Int {
                values,
                validity: None,
            },
            Value::Int(c),
        ) => Ok(values.iter().map(|v| apply_op(op, v, c)).collect()),
        (
            Column::Bool {
                values,
                validity: None,
            },
            Value::Bool(c),
        ) => Ok(values.iter().map(|v| apply_op(op, v, c)).collect()),
        (Column::Str(s), Value::Str(c)) if s.validity.is_none() => {
            // Evaluate once per distinct string, broadcast through the codes.
            let by_code: Vec<bool> = s
                .dict
                .iter()
                .map(|entry| apply_op(op, &&**entry, &&**c))
                .collect();
            Ok(s.codes.iter().map(|&code| by_code[code as usize]).collect())
        }
        _ => {
            // Generic path: per-row reference comparison (reports the same
            // type errors as the row backend).
            (0..column.len())
                .map(|i| op.eval(&column.value(i), constant))
                .collect()
        }
    }
}

fn compare_columns(left: &Column, right: &Column, op: CompareOp) -> Result<Vec<bool>> {
    match (left, right) {
        (
            Column::Int {
                values: lv,
                validity: None,
            },
            Column::Int {
                values: rv,
                validity: None,
            },
        ) => Ok(lv.iter().zip(rv).map(|(l, r)| apply_op(op, l, r)).collect()),
        _ => (0..left.len())
            .map(|i| op.eval(&left.value(i), &right.value(i)))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn parts() -> ColumnarBatch {
        ColumnarBatch::from_relation(&relation! {
            ["p#", "color"] =>
            [1, "blue"], [2, "blue"], [3, "red"], [4, "green"],
        })
    }

    #[test]
    fn int_and_string_filters_match_reference() {
        let batch = parts();
        let rel = batch.to_relation().unwrap();
        for pred in [
            Predicate::eq_value("color", "blue"),
            Predicate::cmp_value("p#", CompareOp::GtEq, 3),
            Predicate::eq_value("color", "blue").or(Predicate::cmp_value("p#", CompareOp::Gt, 3)),
            Predicate::eq_value("color", "red").negate(),
            Predicate::True,
            Predicate::False,
        ] {
            let expected = rel.select(&pred).unwrap();
            let got = filter(&batch, &pred).unwrap().to_relation().unwrap();
            assert_eq!(got, expected, "predicate {pred}");
        }
    }

    #[test]
    fn type_errors_match_reference() {
        let batch = parts();
        let rel = batch.to_relation().unwrap();
        let bad = Predicate::eq_value("p#", "blue");
        assert_eq!(filter(&batch, &bad).is_err(), rel.select(&bad).is_err());
        // Short-circuit case the eager vectorized path must not break: the
        // left conjunct is always false, so the ill-typed right conjunct is
        // never evaluated row-at-a-time.
        let guarded = Predicate::False.and(Predicate::eq_value("p#", "blue"));
        let expected = rel.select(&guarded).unwrap();
        assert_eq!(
            filter(&batch, &guarded).unwrap().to_relation().unwrap(),
            expected
        );
    }

    #[test]
    fn unknown_attribute_errors() {
        let batch = parts();
        assert!(filter(&batch, &Predicate::eq_value("nope", 1)).is_err());
    }
}
