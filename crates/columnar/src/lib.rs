//! # div-columnar
//!
//! Columnar vectorized execution backend for the *division-laws* workspace.
//!
//! The row executor in `div-physical` materializes `Vec<Tuple>`-style
//! relations at every operator, so per-row allocation and enum dispatch
//! dominate the very measurements (per-tuple work, intermediate-result
//! volume) the paper cares about. This crate provides the batch-at-a-time
//! alternative:
//!
//! * [`ColumnarBatch`] — a schema plus typed column vectors
//!   ([`Column`]): `i64` slices, dictionary-encoded strings
//!   ([`StrColumn`]), booleans, each with an optional validity mask, and a
//!   lossless `Mixed` fallback so **every** [`div_algebra::Relation`]
//!   round-trips exactly ([`ColumnarBatch::from_relation`] /
//!   [`ColumnarBatch::to_relation`]);
//! * [`kernels`] — batch-native operators covering **every** physical plan
//!   shape: vectorized filtering (string predicates evaluated once per
//!   dictionary entry), projection with set-semantics deduplication, hash
//!   natural/semi/anti joins, union/intersection/difference, Cartesian
//!   product and theta-join, hash aggregation, and the two division
//!   operators — a Graefe-style bitmap [hash divide](kernels::hash_divide)
//!   and a counting [great divide](kernels::hash_great_divide) — all working
//!   on column slices with a primitive `i64` fast path;
//! * [`partition`] — hash partitioning of batches on key columns, the
//!   primitive behind the paper's partition-parallel strategies for Law 2
//!   (dividend partitioned on the quotient attributes `A`) and Law 13
//!   (divisor partitioned on the group attributes `C`);
//! * [`key_vector`] / [`hash_table`] — the vectorized key pipeline every
//!   hash-consuming kernel runs on: [`KeyVector`] normalizes a batch's key
//!   columns **once per batch** into dense `u64` codes (raw-`i64` fast
//!   path, per-dictionary-entry string hashing, NULL sentinel, composite
//!   fold) and the open-addressing [`KeyTable`]/[`GroupIndex`] consume the
//!   codes with stored-code tags plus verify-on-collision — no `Value` is
//!   cloned and no `Vec` is allocated per row;
//! * [`RowKey`] — encoding-independent hashable row keys, retained as the
//!   allocating reference representation the key pipeline is checked
//!   against (and for row-at-a-time consumers).
//!
//! The executor that walks physical plans (and the scoped-thread driver that
//! runs kernels on partitions concurrently) lives in `div-physical`
//! (`ExecutionBackend::Columnar`); this crate deliberately depends only on
//! `div-algebra` so the physical layer can layer on top.
//!
//! The division pipeline in miniature — convert, divide, convert back:
//!
//! ```
//! use div_algebra::relation;
//! use div_columnar::{kernels, ColumnarBatch};
//!
//! // Figure 1 of the paper: which `a`-groups cover the whole divisor?
//! let dividend = ColumnarBatch::from_relation(&relation! {
//!     ["a", "b"] => [1, 1], [2, 1], [2, 3], [3, 1], [3, 3]
//! });
//! let divisor = ColumnarBatch::from_relation(&relation! { ["b"] => [1], [3] });
//! let quotient = kernels::hash_divide(&dividend, &divisor)?;
//! assert_eq!(
//!     quotient.batch.to_relation()?,
//!     relation! { ["a"] => [2], [3] }
//! );
//! # Ok::<(), div_algebra::AlgebraError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod column;
pub mod hash_table;
pub mod kernels;
pub mod key_vector;
pub mod keys;
pub mod partition;
pub mod stream;

pub use batch::ColumnarBatch;
pub use column::{Column, StrColumn};
pub use hash_table::{GroupIndex, KeyTable};
pub use key_vector::KeyVector;
pub use keys::RowKey;
pub use stream::{GroupStore, StreamingDistinct};

/// Result alias: columnar kernels report the same errors as the reference
/// algebra operators they mirror.
pub type Result<T> = std::result::Result<T, div_algebra::AlgebraError>;
