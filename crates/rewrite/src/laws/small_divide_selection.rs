//! Section 5.1.2 — selection laws for the small divide (Laws 3 and 4).

use super::helpers::{refs, small_divide_attrs};
use crate::context::RewriteContext;
use crate::rule::RewriteRule;
use crate::Result;
use div_expr::LogicalPlan;

/// **Law 3** (selection push-down): `σ_{p(A)}(r1 ÷ r2) = σ_{p(A)}(r1) ÷ r2`.
///
/// Applied left-to-right: a filter on quotient attributes above a division is
/// pushed into the dividend, so the division processes fewer groups.
pub struct Law3SelectionPushdown;

impl RewriteRule for Law3SelectionPushdown {
    fn name(&self) -> &'static str {
        "law-03-selection-pushdown"
    }

    fn reference(&self) -> &'static str {
        "Law 3, Section 5.1.2"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::Select { input, predicate } = plan else {
            return Ok(None);
        };
        let LogicalPlan::SmallDivide { dividend, divisor } = input.as_ref() else {
            return Ok(None);
        };
        let Some(attrs) = small_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        if !predicate.only_references(&refs(&attrs.quotient)) {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::SmallDivide {
            dividend: Box::new(LogicalPlan::Select {
                input: dividend.clone(),
                predicate: predicate.clone(),
            }),
            divisor: divisor.clone(),
        }))
    }
}

/// **Law 4** (replicate selection): `r1 ÷ σ_{p(B)}(r2) = σ_{p(B)}(r1) ÷ σ_{p(B)}(r2)`.
///
/// Applied left-to-right: when the divisor is filtered on the shared
/// attributes `B`, the same filter can be replicated onto the dividend —
/// dividend tuples failing it can never match a divisor tuple, so removing
/// them early shrinks the expensive input. The rule declines when the dividend
/// is already wrapped in exactly this selection, which keeps the fixpoint loop
/// of the engine terminating.
pub struct Law4DivisorSelectionReplication;

impl RewriteRule for Law4DivisorSelectionReplication {
    fn name(&self) -> &'static str {
        "law-04-divisor-selection-replication"
    }

    fn reference(&self) -> &'static str {
        "Law 4, Section 5.1.2"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Select {
            input: divisor_input,
            predicate,
        } = divisor.as_ref()
        else {
            return Ok(None);
        };
        let Some(attrs) = small_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        // p must be a p(B): it may only mention divisor attributes. Because the
        // selection sits on the divisor this is almost automatic, but a
        // predicate could mention attributes of a wider divisor subtree that
        // were projected away; validate against B explicitly.
        if !predicate.only_references(&refs(&attrs.shared)) {
            return Ok(None);
        }
        // The inner divisor (before selection) must still be a valid divisor.
        if small_divide_attrs(ctx, dividend, divisor_input).is_none() {
            return Ok(None);
        }
        // Termination guard: don't re-apply if the dividend already carries
        // exactly this filter.
        if let LogicalPlan::Select {
            predicate: existing,
            ..
        } = dividend.as_ref()
        {
            if existing == predicate {
                return Ok(None);
            }
        }
        // Empty-divisor edge case (see DESIGN.md): with σ_{p(B)}(r2) = ∅ the
        // two sides differ, so when the data can be consulted and the filtered
        // divisor turns out to be empty the rule declines. Without data access
        // the rule follows the paper's implicit nonempty-divisor assumption.
        if let Some(filtered) = ctx.try_evaluate(divisor)? {
            if filtered.is_empty() {
                return Ok(None);
            }
        } else if divisor.contains_parameters() {
            // An unbound `$parameter` defers the filter to execution time:
            // non-emptiness can never be established while preparing, and a
            // later binding may empty the divisor, so the rewrite is unsound.
            return Ok(None);
        }
        Ok(Some(LogicalPlan::SmallDivide {
            dividend: Box::new(LogicalPlan::Select {
                input: dividend.clone(),
                predicate: predicate.clone(),
            }),
            divisor: divisor.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, CompareOp, Predicate};
    use div_expr::{evaluate, Catalog, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
                [4, 1], [4, 3],
            },
        );
        c.register("r2", relation! { ["b"] => [1], [3], [4] });
        c
    }

    #[test]
    fn law3_pushes_quotient_selection_into_dividend() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::cmp_value("a", CompareOp::Gt, 2))
            .build();
        let rewritten = Law3SelectionPushdown
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 3 should apply");
        // Division is now the root; the selection moved below it.
        assert!(matches!(rewritten, LogicalPlan::SmallDivide { .. }));
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law3_declines_for_divisor_attribute_predicates() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // p references b (a divisor attribute) — that is Example 1 territory,
        // not Law 3, and the naive push-down would be wrong.
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("b", 1))
            .build();
        assert!(Law3SelectionPushdown.apply(&plan, &ctx).unwrap().is_none());
    }

    #[test]
    fn law3_works_without_data_access() {
        let catalog = catalog();
        let ctx = RewriteContext::with_metadata_only(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("a", 2))
            .build();
        assert!(Law3SelectionPushdown.apply(&plan, &ctx).unwrap().is_some());
    }

    #[test]
    fn law4_replicates_divisor_selection_to_dividend() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2").select(Predicate::cmp_value("b", CompareOp::Lt, 3)))
            .build();
        let rewritten = Law4DivisorSelectionReplication
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 4 should apply");
        match &rewritten {
            LogicalPlan::SmallDivide { dividend, .. } => {
                assert!(matches!(dividend.as_ref(), LogicalPlan::Select { .. }));
            }
            other => panic!("unexpected rewrite {other:?}"),
        }
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law4_does_not_loop_forever() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2").select(Predicate::eq_value("b", 1)))
            .build();
        let once = Law4DivisorSelectionReplication
            .apply(&plan, &ctx)
            .unwrap()
            .unwrap();
        // Applying the rule to its own output must be a no-op.
        assert!(Law4DivisorSelectionReplication
            .apply(&once, &ctx)
            .unwrap()
            .is_none());
    }

    #[test]
    fn law4_declines_when_no_selection_on_divisor() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .build();
        assert!(Law4DivisorSelectionReplication
            .apply(&plan, &ctx)
            .unwrap()
            .is_none());
    }
}
