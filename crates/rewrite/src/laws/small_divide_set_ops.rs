//! Sections 5.1.3 and 5.1.4 — intersection and difference laws for the small
//! divide (Laws 5, 6 and 7).

use super::helpers::{refs, small_divide_attrs};
use crate::context::RewriteContext;
use crate::preconditions;
use crate::rule::RewriteRule;
use crate::Result;
use div_expr::{ExprError, LogicalPlan};

/// **Law 5**: `(r'1 ∩ r''1) ÷ r2 = (r'1 ÷ r2) ∩ (r''1 ÷ r2)`.
///
/// Applied left-to-right: a division whose dividend is an intersection is
/// split into an intersection of two (typically much cheaper, independently
/// executable) divisions. No precondition.
pub struct Law5IntersectionSplit;

impl RewriteRule for Law5IntersectionSplit {
    fn name(&self) -> &'static str {
        "law-05-intersection-split"
    }

    fn reference(&self) -> &'static str {
        "Law 5, Section 5.1.3"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Intersect { left, right } = dividend.as_ref() else {
            return Ok(None);
        };
        if small_divide_attrs(ctx, left, divisor).is_none()
            || small_divide_attrs(ctx, right, divisor).is_none()
        {
            return Ok(None);
        }
        // Empty-divisor edge case (see DESIGN.md): with r2 = ∅ the law does
        // not hold, so decline if the data shows an empty divisor — or if an
        // unbound `$parameter` keeps it from being checked until execution.
        if let Some(divisor_rel) = ctx.try_evaluate(divisor)? {
            if divisor_rel.is_empty() {
                return Ok(None);
            }
        } else if divisor.contains_parameters() {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::Intersect {
            left: Box::new(LogicalPlan::SmallDivide {
                dividend: left.clone(),
                divisor: divisor.clone(),
            }),
            right: Box::new(LogicalPlan::SmallDivide {
                dividend: right.clone(),
                divisor: divisor.clone(),
            }),
        }))
    }
}

/// **Law 6**: if `r'1 = σ_{p'(A)}(r1) ⊇ σ_{p''(A)}(r1) = r''1` then
/// `(r'1 − r''1) ÷ r2 = (r'1 ÷ r2) − (r''1 ÷ r2)`.
///
/// Applied left-to-right. The rule recognizes the shape the paper describes —
/// two selections over the *same* input with predicates over quotient
/// attributes only — and establishes the containment either syntactically
/// (`p''` is a conjunction extending `p'`) or, when data checks are allowed,
/// by evaluating both selections.
pub struct Law6DifferenceSplit;

impl RewriteRule for Law6DifferenceSplit {
    fn name(&self) -> &'static str {
        "law-06-difference-split"
    }

    fn reference(&self) -> &'static str {
        "Law 6, Section 5.1.4"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Difference { left, right } = dividend.as_ref() else {
            return Ok(None);
        };
        let Some(attrs) = small_divide_attrs(ctx, left, divisor) else {
            return Ok(None);
        };
        if small_divide_attrs(ctx, right, divisor).is_none() {
            return Ok(None);
        }
        // Recognize σ_{p'(A)}(r) and σ_{p''(A)}(r) over the same input.
        let (
            LogicalPlan::Select {
                input: in_l,
                predicate: p_prime,
            },
            LogicalPlan::Select {
                input: in_r,
                predicate: p_double,
            },
        ) = (left.as_ref(), right.as_ref())
        else {
            return Ok(None);
        };
        if in_l != in_r {
            return Ok(None);
        }
        let a = refs(&attrs.quotient);
        if !p_prime.only_references(&a) || !p_double.only_references(&a) {
            return Ok(None);
        }
        // Establish r''1 ⊆ r'1.
        let contained = if p_double.conjuncts().contains(&p_prime) && p_double.conjuncts().len() > 1
        {
            // p'' = p' ∧ … ⇒ σ_{p''} ⊆ σ_{p'}.
            true
        } else {
            match (ctx.try_evaluate(left)?, ctx.try_evaluate(right)?) {
                (Some(l), Some(r)) => preconditions::subset_of(&r, &l).map_err(ExprError::from)?,
                _ => false,
            }
        };
        if !contained {
            return Ok(None);
        }
        // Empty-divisor edge case (see DESIGN.md), as for Laws 4 and 5 — and
        // the same decline when `$parameter`s defer the check to execution.
        if let Some(divisor_rel) = ctx.try_evaluate(divisor)? {
            if divisor_rel.is_empty() {
                return Ok(None);
            }
        } else if divisor.contains_parameters() {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::Difference {
            left: Box::new(LogicalPlan::SmallDivide {
                dividend: left.clone(),
                divisor: divisor.clone(),
            }),
            right: Box::new(LogicalPlan::SmallDivide {
                dividend: right.clone(),
                divisor: divisor.clone(),
            }),
        }))
    }
}

/// **Law 7**: if `π_A(r'1) ∩ π_A(r''1) = ∅` then
/// `(r'1 ÷ r2) − (r''1 ÷ r2) = r'1 ÷ r2`.
///
/// Applied left-to-right: the entire right division — potentially the
/// expensive half of the query — is skipped. The disjointness precondition is
/// data-dependent, so the rule only fires when data checks are allowed.
pub struct Law7DisjointDifference;

impl RewriteRule for Law7DisjointDifference {
    fn name(&self) -> &'static str {
        "law-07-disjoint-difference-elimination"
    }

    fn reference(&self) -> &'static str {
        "Law 7, Section 5.1.4"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::Difference { left, right } = plan else {
            return Ok(None);
        };
        let (
            LogicalPlan::SmallDivide {
                dividend: d1,
                divisor: v1,
            },
            LogicalPlan::SmallDivide {
                dividend: d2,
                divisor: v2,
            },
        ) = (left.as_ref(), right.as_ref())
        else {
            return Ok(None);
        };
        // Both divisions must use the same divisor expression.
        if v1 != v2 {
            return Ok(None);
        }
        let Some(attrs) = small_divide_attrs(ctx, d1, v1) else {
            return Ok(None);
        };
        if small_divide_attrs(ctx, d2, v2).is_none() {
            return Ok(None);
        }
        let (Some(left_rel), Some(right_rel)) = (ctx.try_evaluate(d1)?, ctx.try_evaluate(d2)?)
        else {
            return Ok(None);
        };
        let disjoint =
            preconditions::projections_disjoint(&left_rel, &right_rel, &refs(&attrs.quotient))
                .map_err(ExprError::from)?;
        if !disjoint {
            return Ok(None);
        }
        Ok(Some(left.as_ref().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, CompareOp, Predicate};
    use div_expr::{evaluate, Catalog, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 3],
                [2, 1], [2, 2], [2, 3],
                [3, 1], [3, 3],
                [10, 1], [10, 3],
                [11, 1],
            },
        );
        c.register("r2", relation! { ["b"] => [1], [3] });
        c
    }

    #[test]
    fn law5_splits_intersection_dividends() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let lhs = PlanBuilder::scan("r1").select(Predicate::cmp_value("a", CompareOp::LtEq, 5));
        let rhs = PlanBuilder::scan("r1").select(Predicate::cmp_value("b", CompareOp::LtEq, 3));
        let plan = lhs.intersect(rhs).divide(PlanBuilder::scan("r2")).build();
        let rewritten = Law5IntersectionSplit
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 5 should apply");
        assert!(matches!(rewritten, LogicalPlan::Intersect { .. }));
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law6_splits_nested_selections_syntactically() {
        let catalog = catalog();
        // Metadata-only context: the syntactic implication (p'' = p' ∧ …) must
        // be enough for the rule to fire.
        let ctx = RewriteContext::with_metadata_only(&catalog);
        let p_prime = Predicate::cmp_value("a", CompareOp::Gt, 1);
        let p_double = p_prime
            .clone()
            .and(Predicate::cmp_value("a", CompareOp::Gt, 9));
        let plan = PlanBuilder::scan("r1")
            .select(p_prime)
            .difference(PlanBuilder::scan("r1").select(p_double))
            .divide(PlanBuilder::scan("r2"))
            .build();
        let rewritten = Law6DifferenceSplit
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 6 should apply");
        assert!(matches!(rewritten, LogicalPlan::Difference { .. }));
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law6_uses_data_when_predicates_are_unrelated() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // a > 9 selects {10, 11}; a = 10 selects {10} ⊆ {10, 11} but only the
        // data can tell.
        let plan = PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::Gt, 9))
            .difference(PlanBuilder::scan("r1").select(Predicate::eq_value("a", 10)))
            .divide(PlanBuilder::scan("r2"))
            .build();
        assert!(Law6DifferenceSplit.apply(&plan, &ctx).unwrap().is_some());
        // Without data access the rule must decline for these predicates.
        let meta_ctx = RewriteContext::with_metadata_only(&catalog);
        assert!(Law6DifferenceSplit
            .apply(&plan, &meta_ctx)
            .unwrap()
            .is_none());
    }

    #[test]
    fn law6_declines_when_not_contained() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // a <= 2 is not contained in a > 1.
        let plan = PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::Gt, 1))
            .difference(PlanBuilder::scan("r1").select(Predicate::cmp_value(
                "a",
                CompareOp::LtEq,
                2,
            )))
            .divide(PlanBuilder::scan("r2"))
            .build();
        assert!(Law6DifferenceSplit.apply(&plan, &ctx).unwrap().is_none());
    }

    #[test]
    fn law7_skips_the_second_division() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // The paper's example: σ_{a≤10}(r1) ÷ r2 − σ_{a>10}(r1) ÷ r2.
        let low = PlanBuilder::scan("r1").select(Predicate::cmp_value("a", CompareOp::LtEq, 10));
        let high = PlanBuilder::scan("r1").select(Predicate::cmp_value("a", CompareOp::Gt, 10));
        let plan = low
            .clone()
            .divide(PlanBuilder::scan("r2"))
            .difference(high.divide(PlanBuilder::scan("r2")))
            .build();
        let rewritten = Law7DisjointDifference
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 7 should apply");
        // The rewritten plan is just the left division.
        assert!(matches!(rewritten, LogicalPlan::SmallDivide { .. }));
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law7_declines_on_overlapping_prefixes_or_different_divisors() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // Overlapping quotient prefixes.
        let overlapping = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .difference(
                PlanBuilder::scan("r1")
                    .select(Predicate::eq_value("a", 2))
                    .divide(PlanBuilder::scan("r2")),
            )
            .build();
        assert!(Law7DisjointDifference
            .apply(&overlapping, &ctx)
            .unwrap()
            .is_none());
        // Different divisors.
        let different = PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::LtEq, 10))
            .divide(PlanBuilder::scan("r2"))
            .difference(
                PlanBuilder::scan("r1")
                    .select(Predicate::cmp_value("a", CompareOp::Gt, 10))
                    .divide(PlanBuilder::scan("r2").select(Predicate::eq_value("b", 1))),
            )
            .build();
        assert!(Law7DisjointDifference
            .apply(&different, &ctx)
            .unwrap()
            .is_none());
    }
}
