//! Section 5.1.7 — grouping laws for the small divide (Laws 11 and 12).
//!
//! Both laws apply when the dividend is the output of the grouping operator,
//! which guarantees — *by construction* — that its groups are singletons:
//!
//! * Law 11: the dividend is `Aγf(X)→B(r0)`, so every quotient-candidate group
//!   holds exactly one tuple. The division can only produce a quotient when
//!   the divisor has at most one tuple, and in that case it degenerates to a
//!   semi-join plus projection.
//! * Law 12: the dividend is `Bγf(X)→A(r0)` and `r2.B` is a foreign key into
//!   the dividend, so every divisor value matches exactly one dividend tuple.
//!   The quotient is `π_A(r1 ⋉ r2)` if that projection has exactly one value
//!   and empty otherwise.
//!
//! The cardinality case analysis is data-dependent; the rules resolve it
//! through the context (like an optimizer consulting exact statistics on a
//! small divisor) and otherwise decline. The paper itself notes that these
//! laws have "rather restrictive prerequisites" and are aimed at special
//! purpose systems.

use super::helpers::{refs, small_divide_attrs};
use crate::context::RewriteContext;
use crate::preconditions;
use crate::rule::RewriteRule;
use crate::Result;
use div_algebra::Relation;
use div_expr::{ExprError, LogicalPlan};

/// **Law 11**: for a dividend `r1 = Aγf(X)→B(r0)`,
///
/// ```text
/// r1 ÷ r2 = π_A(r1)            if |r2| = 0
///         = π_A(r1 ⋉ r2)       if |r2| = 1
///         = ∅                   otherwise
/// ```
///
/// (The paper writes the first case as `r1`; since the quotient schema is `A`
/// and the groups are singletons, `π_A(r1)` is the schema-correct reading and
/// has the same cardinality.)
pub struct Law11SingleTupleGroups;

impl RewriteRule for Law11SingleTupleGroups {
    fn name(&self) -> &'static str {
        "law-11-singleton-quotient-groups"
    }

    fn reference(&self) -> &'static str {
        "Law 11, Section 5.1.7"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::GroupAggregate {
            group_by,
            aggregates,
            ..
        } = dividend.as_ref()
        else {
            return Ok(None);
        };
        let Some(attrs) = small_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        // Law 11 shape: the grouping attributes are the quotient attributes A,
        // and the divisor attributes B are exactly the aggregate outputs.
        if group_by.len() != attrs.quotient.len()
            || !group_by.iter().all(|g| attrs.quotient.contains(g))
        {
            return Ok(None);
        }
        if aggregates.len() != attrs.shared.len()
            || !aggregates
                .iter()
                .all(|agg| attrs.shared.contains(&agg.output))
        {
            return Ok(None);
        }
        // Cardinality case analysis on the divisor.
        let Some(divisor_rel) = ctx.try_evaluate(divisor)? else {
            return Ok(None);
        };
        let quotient_attrs = attrs.quotient.clone();
        let rewritten = match divisor_rel.len() {
            0 => LogicalPlan::Project {
                input: dividend.clone(),
                attributes: quotient_attrs,
            },
            1 => LogicalPlan::Project {
                input: Box::new(LogicalPlan::SemiJoin {
                    left: dividend.clone(),
                    right: divisor.clone(),
                }),
                attributes: quotient_attrs,
            },
            _ => empty_quotient(ctx, dividend, &refs(&attrs.quotient))?,
        };
        Ok(Some(rewritten))
    }
}

/// **Law 12**: for a dividend `r1 = Bγf(X)→A(r0)` with `r2.B ⊆ π_B(r1)`,
///
/// ```text
/// r1 ÷ r2 = π_A(r1 ⋉ r2)   if that relation has exactly one tuple
///         = ∅               otherwise
/// ```
pub struct Law12SingleTupleDivisorGroups;

impl RewriteRule for Law12SingleTupleDivisorGroups {
    fn name(&self) -> &'static str {
        "law-12-singleton-divisor-groups"
    }

    fn reference(&self) -> &'static str {
        "Law 12, Section 5.1.7"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::GroupAggregate {
            group_by,
            aggregates,
            ..
        } = dividend.as_ref()
        else {
            return Ok(None);
        };
        let Some(attrs) = small_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        // Law 12 shape: the grouping attributes are the shared attributes B,
        // and the quotient attributes A are exactly the aggregate outputs.
        if group_by.len() != attrs.shared.len()
            || !group_by.iter().all(|g| attrs.shared.contains(g))
        {
            return Ok(None);
        }
        if aggregates.len() != attrs.quotient.len()
            || !aggregates
                .iter()
                .all(|agg| attrs.quotient.contains(&agg.output))
        {
            return Ok(None);
        }
        // Preconditions and the final cardinality test are data-dependent.
        let (Some(dividend_rel), Some(divisor_rel)) =
            (ctx.try_evaluate(dividend)?, ctx.try_evaluate(divisor)?)
        else {
            return Ok(None);
        };
        let fk_ok = preconditions::divisor_references_dividend(&dividend_rel, &divisor_rel)
            .map_err(ExprError::from)?;
        if !fk_ok {
            return Ok(None);
        }
        let semi = LogicalPlan::Project {
            input: Box::new(LogicalPlan::SemiJoin {
                left: dividend.clone(),
                right: divisor.clone(),
            }),
            attributes: attrs.quotient.clone(),
        };
        // |π_A(r1 ⋉ r2)| — cheap: at most |r2| tuples survive the semi-join.
        let semi_rel = dividend_rel
            .semi_join(&divisor_rel)
            .and_then(|r| r.project(&refs(&attrs.quotient)))
            .map_err(ExprError::from)?;
        let rewritten = if semi_rel.len() == 1 && !divisor_rel.is_empty() {
            semi
        } else {
            empty_quotient(ctx, dividend, &refs(&attrs.quotient))?
        };
        Ok(Some(rewritten))
    }
}

/// An always-empty plan with the quotient schema (the `∅` case of both laws).
fn empty_quotient(
    ctx: &RewriteContext<'_>,
    dividend: &LogicalPlan,
    quotient: &[&str],
) -> Result<LogicalPlan> {
    let schema = ctx
        .schema_of(dividend)
        .ok_or_else(|| ExprError::invalid("cannot infer dividend schema for empty quotient"))?
        .project(quotient)
        .map_err(ExprError::from)?;
    Ok(LogicalPlan::Values {
        relation: Relation::empty(schema),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, AggregateCall};
    use div_expr::{evaluate, Catalog, PlanBuilder};

    /// Figure 10 / Figure 11 base data.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r0_fig10",
            relation! {
                ["a", "x"] =>
                [1, 1], [1, 2], [1, 3],
                [2, 1], [2, 3],
                [3, 1], [3, 3], [3, 4],
            },
        );
        c.register("r2_fig10", relation! { ["b"] => [4] });
        c.register("r2_two", relation! { ["b"] => [4], [6] });
        c.register("r2_empty", relation! { ["b"] => });
        c.register(
            "r0_fig11",
            relation! {
                ["x", "b"] =>
                [1, 1], [1, 2], [1, 3],
                [2, 1], [2, 3],
                [3, 1], [3, 3], [3, 4],
            },
        );
        c.register("r2_fig11", relation! { ["b"] => [1], [3] });
        c.register("r2_fig11_bad", relation! { ["b"] => [1], [9] });
        c.register("r2_fig11_mixed", relation! { ["b"] => [1], [2] });
        c
    }

    fn figure10_dividend() -> PlanBuilder {
        PlanBuilder::scan("r0_fig10").group_aggregate(["a"], [AggregateCall::sum("x", "b")])
    }

    fn figure11_dividend() -> PlanBuilder {
        PlanBuilder::scan("r0_fig11").group_aggregate(["b"], [AggregateCall::sum("x", "a")])
    }

    #[test]
    fn law11_single_tuple_divisor_becomes_semi_join() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = figure10_dividend()
            .divide(PlanBuilder::scan("r2_fig10"))
            .build();
        let rewritten = Law11SingleTupleGroups
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 11 should apply");
        // Figure 10(e): quotient = {2}.
        let expected = relation! { ["a"] => [2] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
        assert!(!rewritten.contains_division());
    }

    #[test]
    fn law11_empty_divisor_keeps_all_groups() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = figure10_dividend()
            .divide(PlanBuilder::scan("r2_empty"))
            .build();
        let rewritten = Law11SingleTupleGroups.apply(&plan, &ctx).unwrap().unwrap();
        let expected = relation! { ["a"] => [1], [2], [3] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
    }

    #[test]
    fn law11_multi_tuple_divisor_is_empty() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = figure10_dividend()
            .divide(PlanBuilder::scan("r2_two"))
            .build();
        let rewritten = Law11SingleTupleGroups.apply(&plan, &ctx).unwrap().unwrap();
        assert!(evaluate(&plan, &catalog).unwrap().is_empty());
        assert!(evaluate(&rewritten, &catalog).unwrap().is_empty());
        assert!(matches!(rewritten, LogicalPlan::Values { .. }));
    }

    #[test]
    fn law11_requires_data_access_and_matching_shape() {
        let catalog = catalog();
        let meta_ctx = RewriteContext::with_metadata_only(&catalog);
        let plan = figure10_dividend()
            .divide(PlanBuilder::scan("r2_fig10"))
            .build();
        assert!(Law11SingleTupleGroups
            .apply(&plan, &meta_ctx)
            .unwrap()
            .is_none());
        // A non-aggregated dividend never matches.
        let ctx = RewriteContext::with_catalog(&catalog);
        let plain = PlanBuilder::scan("r0_fig10")
            .rename([("x", "b")])
            .divide(PlanBuilder::scan("r2_fig10"))
            .build();
        assert!(Law11SingleTupleGroups
            .apply(&plain, &ctx)
            .unwrap()
            .is_none());
    }

    #[test]
    fn law12_matches_figure_11() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = figure11_dividend()
            .divide(PlanBuilder::scan("r2_fig11"))
            .build();
        let rewritten = Law12SingleTupleDivisorGroups
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 12 should apply");
        // Figure 11(e): quotient = {6}.
        let expected = relation! { ["a"] => [6] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
        assert!(!rewritten.contains_division());
    }

    #[test]
    fn law12_empty_when_quotient_candidates_disagree() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // Divisor {1, 2}: group b=1 has a=6, group b=2 has a=1 — no single
        // a value covers both, so the quotient is empty.
        let plan = figure11_dividend()
            .divide(PlanBuilder::scan("r2_fig11_mixed"))
            .build();
        let rewritten = Law12SingleTupleDivisorGroups
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 12 should apply");
        assert!(evaluate(&plan, &catalog).unwrap().is_empty());
        assert!(evaluate(&rewritten, &catalog).unwrap().is_empty());
    }

    #[test]
    fn law12_declines_without_foreign_key() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // Divisor value 9 does not reference any dividend group.
        let plan = figure11_dividend()
            .divide(PlanBuilder::scan("r2_fig11_bad"))
            .build();
        assert!(Law12SingleTupleDivisorGroups
            .apply(&plan, &ctx)
            .unwrap()
            .is_none());
    }

    #[test]
    fn law12_declines_for_law11_shape() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = figure10_dividend()
            .divide(PlanBuilder::scan("r2_fig10"))
            .build();
        assert!(Law12SingleTupleDivisorGroups
            .apply(&plan, &ctx)
            .unwrap()
            .is_none());
    }
}
