//! Section 5.1.5 — Cartesian-product laws for the small divide
//! (Laws 8 and 9, plus the common-factor elimination of Example 2).

use super::helpers::small_divide_attrs;
use crate::context::RewriteContext;
use crate::preconditions;
use crate::rule::RewriteRule;
use crate::Result;
use div_expr::{ExprError, LogicalPlan};

/// **Law 8**: `(r*1 × r**1) ÷ r2 = r*1 × (r**1 ÷ r2)` where the divisor
/// attributes `B` all belong to `r**1`.
///
/// Applied left-to-right: the division is pushed onto the product factor that
/// actually carries the divisor attributes, so the (potentially huge) product
/// is divided only after the quotient of the small factor has been computed —
/// or, as Figure 7 shows, the product need not be materialized at all.
pub struct Law8ProductPushthrough;

impl RewriteRule for Law8ProductPushthrough {
    fn name(&self) -> &'static str {
        "law-08-product-pushthrough"
    }

    fn reference(&self) -> &'static str {
        "Law 8, Section 5.1.5"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Product { left, right } = dividend.as_ref() else {
            return Ok(None);
        };
        let (Some(left_schema), Some(divisor_schema)) =
            (ctx.schema_of(left), ctx.schema_of(divisor))
        else {
            return Ok(None);
        };
        // Every divisor attribute must come from the right factor, i.e. none
        // from the left factor (A1 ∩ B = ∅).
        if divisor_schema
            .names()
            .iter()
            .any(|b| left_schema.contains(b))
        {
            return Ok(None);
        }
        // The right factor must itself be a valid dividend for the divisor
        // (this also ensures its own quotient attribute set A2 is nonempty).
        if small_divide_attrs(ctx, right, divisor).is_none() {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::Product {
            left: left.clone(),
            right: Box::new(LogicalPlan::SmallDivide {
                dividend: right.clone(),
                divisor: divisor.clone(),
            }),
        }))
    }
}

/// **Law 9**: if `π_{B2}(r2) ⊆ r**1` then
/// `(r*1 × r**1) ÷ r2 = r*1 ÷ π_{B1}(r2)`, where `R*1(A ∪ B1)` and
/// `R**1(B2)`.
///
/// Applied left-to-right: the product factor `r**1` and the `B2` part of the
/// divisor disappear entirely. The containment precondition is established
/// either from a declared foreign key (`r2.B2 → r**1`) or, when permitted, by
/// checking the data. As noted in the module tests, the law needs `r**1 ≠ ∅`
/// when the divisor is empty; the rule therefore additionally verifies that
/// `r**1` is nonempty (a foreign key with at least one referencing row, or a
/// data check).
pub struct Law9ProductElimination;

impl RewriteRule for Law9ProductElimination {
    fn name(&self) -> &'static str {
        "law-09-product-elimination"
    }

    fn reference(&self) -> &'static str {
        "Law 9, Section 5.1.5"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Product { left, right } = dividend.as_ref() else {
            return Ok(None);
        };
        let (Some(left_schema), Some(right_schema), Some(divisor_schema)) = (
            ctx.schema_of(left),
            ctx.schema_of(right),
            ctx.schema_of(divisor),
        ) else {
            return Ok(None);
        };
        // r**1's attributes are exactly B2: all of them must occur in the
        // divisor.
        let b2: Vec<&str> = right_schema.names();
        if b2.is_empty() || !b2.iter().all(|n| divisor_schema.contains(n)) {
            return Ok(None);
        }
        // B1 = divisor attributes minus B2; they must be nonempty and belong
        // to r*1, and r*1 must keep a nonempty quotient attribute set A.
        let b1: Vec<String> = divisor_schema.difference_attributes(&right_schema);
        if b1.is_empty() || !b1.iter().all(|n| left_schema.contains(n)) {
            return Ok(None);
        }
        if left_schema
            .names()
            .iter()
            .filter(|n| !b1.iter().any(|b| b == *n))
            .count()
            == 0
        {
            return Ok(None);
        }
        // Precondition π_{B2}(r2) ⊆ r**1, plus the r**1 ≠ ∅ guard.
        let precondition_ok = match ctx.try_evaluate(right)? {
            Some(right_rel) => {
                if right_rel.is_empty() {
                    false
                } else {
                    match ctx.try_evaluate(divisor)? {
                        Some(divisor_rel) => {
                            preconditions::law9_projection_contained(&right_rel, &divisor_rel)
                                .map_err(ExprError::from)?
                        }
                        None => false,
                    }
                }
            }
            None => {
                // Without data access fall back to a declared foreign key
                // divisor.B2 → r**1.B2 (which also implies r**1 is nonempty
                // only if the divisor is nonempty; accept it as the paper does
                // for Example 3, where the foreign key is given).
                let b2_owned: Vec<&str> = b2.clone();
                ctx.has_foreign_key(divisor, &b2_owned, right, &b2_owned)
            }
        };
        if !precondition_ok {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::SmallDivide {
            dividend: left.clone(),
            divisor: Box::new(LogicalPlan::Project {
                input: divisor.clone(),
                attributes: b1,
            }),
        }))
    }
}

/// **Example 2**: `(r1 × s) ÷ (r2 × s) = r1 ÷ r2`.
///
/// The paper derives this from Law 9; the rule recognizes a dividend and a
/// divisor that share a *structurally identical* factor `s` and cancels it.
/// Like Law 9 it needs `s ≠ ∅` (checked via data or declined).
pub struct Example2CommonFactorElimination;

impl RewriteRule for Example2CommonFactorElimination {
    fn name(&self) -> &'static str {
        "example-2-common-factor-elimination"
    }

    fn reference(&self) -> &'static str {
        "Example 2, Section 5.1.5 (derived from Law 9)"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let (
            LogicalPlan::Product {
                left: d_left,
                right: d_right,
            },
            LogicalPlan::Product {
                left: v_left,
                right: v_right,
            },
        ) = (dividend.as_ref(), divisor.as_ref())
        else {
            return Ok(None);
        };
        // The shared factor may appear on either side of each product; try the
        // four combinations and cancel the first structural match.
        let candidates = [
            (d_left, d_right, v_left, v_right),
            (d_left, d_right, v_right, v_left),
            (d_right, d_left, v_left, v_right),
            (d_right, d_left, v_right, v_left),
        ];
        for (keep_dividend, shared_dividend, keep_divisor, shared_divisor) in candidates {
            if shared_dividend != shared_divisor {
                continue;
            }
            // The remaining operands must still form a valid division.
            if small_divide_attrs(ctx, keep_dividend, keep_divisor).is_none() {
                continue;
            }
            // s must be nonempty for the cancellation to be sound.
            match ctx.try_evaluate(shared_dividend)? {
                Some(s) if !s.is_empty() => {}
                _ => continue,
            }
            return Ok(Some(LogicalPlan::SmallDivide {
                dividend: keep_dividend.clone(),
                divisor: keep_divisor.clone(),
            }));
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;
    use div_expr::{evaluate, Catalog, PlanBuilder};

    /// Figure 7 data (Law 8) and Figure 8 data (Law 9).
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        // Figure 7.
        c.register("r_star_7", relation! { ["a1"] => [1], [2] });
        c.register(
            "r_star_star_7",
            relation! {
                ["a2", "b"] =>
                [1, 1], [1, 2], [1, 3],
                [2, 1], [2, 3],
                [3, 2], [3, 3],
            },
        );
        c.register("r2_7", relation! { ["b"] => [2], [3] });
        // Figure 8.
        c.register(
            "r_star_8",
            relation! {
                ["a", "b1"] =>
                [1, 1], [1, 2], [1, 3],
                [2, 2], [2, 3],
                [3, 1], [3, 3], [3, 4],
            },
        );
        c.register("r_star_star_8", relation! { ["b2"] => [1], [2] });
        c.register("r2_8", relation! { ["b1", "b2"] => [1, 2], [3, 1], [3, 2] });
        c
    }

    #[test]
    fn law8_pushes_division_into_the_product_factor() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r_star_7")
            .product(PlanBuilder::scan("r_star_star_7"))
            .divide(PlanBuilder::scan("r2_7"))
            .build();
        let rewritten = Law8ProductPushthrough
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 8 should apply");
        assert!(matches!(rewritten, LogicalPlan::Product { .. }));
        // Figure 7(f): the result is {1, 2} × {1, 3}.
        let expected = relation! { ["a1", "a2"] => [1, 1], [1, 3], [2, 1], [2, 3] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
    }

    #[test]
    fn law8_declines_when_divisor_spans_both_factors() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // Divisor r2_8 references b1 (left factor) and b2 (right factor).
        let plan = PlanBuilder::scan("r_star_8")
            .product(PlanBuilder::scan("r_star_star_8"))
            .divide(PlanBuilder::scan("r2_8"))
            .build();
        assert!(Law8ProductPushthrough.apply(&plan, &ctx).unwrap().is_none());
    }

    #[test]
    fn law9_eliminates_the_product_and_projects_the_divisor() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r_star_8")
            .product(PlanBuilder::scan("r_star_star_8"))
            .divide(PlanBuilder::scan("r2_8"))
            .build();
        let rewritten = Law9ProductElimination
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 9 should apply");
        // The rewritten dividend no longer contains the product.
        match &rewritten {
            LogicalPlan::SmallDivide { dividend, divisor } => {
                assert!(matches!(dividend.as_ref(), LogicalPlan::Scan { .. }));
                assert!(matches!(divisor.as_ref(), LogicalPlan::Project { .. }));
            }
            other => panic!("unexpected rewrite {other:?}"),
        }
        // Figure 8(g): r3 = {1, 3}.
        let expected = relation! { ["a"] => [1], [3] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
    }

    #[test]
    fn law9_fires_from_foreign_key_metadata_without_data_access() {
        let mut catalog = catalog();
        catalog
            .declare_foreign_key("r2_8", &["b2"], "r_star_star_8", &["b2"])
            .unwrap();
        let ctx = RewriteContext::with_metadata_only(&catalog);
        let plan = PlanBuilder::scan("r_star_8")
            .product(PlanBuilder::scan("r_star_star_8"))
            .divide(PlanBuilder::scan("r2_8"))
            .build();
        assert!(Law9ProductElimination.apply(&plan, &ctx).unwrap().is_some());
    }

    #[test]
    fn law9_declines_when_projection_not_contained() {
        let mut catalog = catalog();
        // Divisor contains b2 = 9, which r**1 does not.
        catalog.register("r2_bad", relation! { ["b1", "b2"] => [1, 9] });
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r_star_8")
            .product(PlanBuilder::scan("r_star_star_8"))
            .divide(PlanBuilder::scan("r2_bad"))
            .build();
        assert!(Law9ProductElimination.apply(&plan, &ctx).unwrap().is_none());
    }

    #[test]
    fn example2_cancels_the_common_factor() {
        let mut catalog = Catalog::new();
        catalog.register("r1", relation! { ["a", "b1"] => [1, 1], [1, 2], [2, 1] });
        catalog.register("r2", relation! { ["b1"] => [1], [2] });
        catalog.register("s", relation! { ["b2"] => [7], [8] });
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .product(PlanBuilder::scan("s"))
            .divide(PlanBuilder::scan("r2").product(PlanBuilder::scan("s")))
            .build();
        let rewritten = Example2CommonFactorElimination
            .apply(&plan, &ctx)
            .unwrap()
            .expect("example 2 should apply");
        let expected = relation! { ["a"] => [1] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
        // The cancelled plan is exactly r1 ÷ r2.
        assert_eq!(
            rewritten,
            PlanBuilder::scan("r1")
                .divide(PlanBuilder::scan("r2"))
                .build()
        );
    }

    #[test]
    fn example2_declines_for_empty_shared_factor() {
        let mut catalog = Catalog::new();
        catalog.register("r1", relation! { ["a", "b1"] => [1, 1] });
        catalog.register("r2", relation! { ["b1"] => [1] });
        catalog.register("s", relation! { ["b2"] => });
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .product(PlanBuilder::scan("s"))
            .divide(PlanBuilder::scan("r2").product(PlanBuilder::scan("s")))
            .build();
        assert!(Example2CommonFactorElimination
            .apply(&plan, &ctx)
            .unwrap()
            .is_none());
    }
}
