//! Section 5.1.1 — union laws for the small divide (Laws 1 and 2).

use super::helpers::small_divide_attrs;
use crate::context::RewriteContext;
use crate::preconditions;
use crate::rule::RewriteRule;
use crate::Result;
use div_expr::LogicalPlan;

/// **Law 1**: `r1 ÷ (r'2 ∪ r''2) = (r1 ⋉ (r1 ÷ r'2)) ÷ r''2`.
///
/// Applied left-to-right: when the divisor is a union of two partitions (which
/// may overlap, as Figure 4 shows), divide by the first partition, use the
/// intermediate quotient to shrink the dividend with a semi-join, and divide
/// the rest by the second partition. The paper motivates this as a
/// pipeline-parallel strategy for group-preserving division algorithms.
pub struct Law1DivisorUnionToPipeline;

impl RewriteRule for Law1DivisorUnionToPipeline {
    fn name(&self) -> &'static str {
        "law-01-divisor-union-pipeline"
    }

    fn reference(&self) -> &'static str {
        "Law 1, Section 5.1.1"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Union { left, right } = divisor.as_ref() else {
            return Ok(None);
        };
        // Validate that both halves are usable divisors for this dividend.
        if small_divide_attrs(ctx, dividend, left).is_none()
            || small_divide_attrs(ctx, dividend, right).is_none()
        {
            return Ok(None);
        }
        let inner_quotient = LogicalPlan::SmallDivide {
            dividend: dividend.clone(),
            divisor: left.clone(),
        };
        let shrunk_dividend = LogicalPlan::SemiJoin {
            left: dividend.clone(),
            right: Box::new(inner_quotient),
        };
        Ok(Some(LogicalPlan::SmallDivide {
            dividend: Box::new(shrunk_dividend),
            divisor: right.clone(),
        }))
    }
}

/// **Law 2**: `(r'1 ∪ r''1) ÷ r2 = (r'1 ÷ r2) ∪ (r''1 ÷ r2)` provided
/// condition `c1(r'1, r''1)` holds.
///
/// Applied left-to-right: when the dividend is a union of partitions that
/// satisfy the precondition, divide each partition independently — the
/// degree-n parallel strategy of Section 5.1.1. Because testing `c1` "can be
/// expensive", the rule follows the paper's advice and checks the stricter
/// condition `c2` (disjoint quotient prefixes) first, falling back to the full
/// `c1` test; both require data access, so the rule only fires when the
/// context allows data checks.
pub struct Law2DividendUnionSplit;

impl RewriteRule for Law2DividendUnionSplit {
    fn name(&self) -> &'static str {
        "law-02-dividend-union-split"
    }

    fn reference(&self) -> &'static str {
        "Law 2, Section 5.1.1 (preconditions c1/c2)"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SmallDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Union { left, right } = dividend.as_ref() else {
            return Ok(None);
        };
        if small_divide_attrs(ctx, left, divisor).is_none()
            || small_divide_attrs(ctx, right, divisor).is_none()
        {
            return Ok(None);
        }
        // Data-dependent precondition.
        let (Some(left_rel), Some(right_rel), Some(divisor_rel)) = (
            ctx.try_evaluate(left)?,
            ctx.try_evaluate(right)?,
            ctx.try_evaluate(divisor)?,
        ) else {
            return Ok(None);
        };
        let c2_holds = preconditions::c2(&left_rel, &right_rel, &divisor_rel)
            .map_err(div_expr::ExprError::from)?;
        let holds = c2_holds
            || preconditions::c1(&left_rel, &right_rel, &divisor_rel)
                .map_err(div_expr::ExprError::from)?;
        if !holds {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::Union {
            left: Box::new(LogicalPlan::SmallDivide {
                dividend: left.clone(),
                divisor: divisor.clone(),
            }),
            right: Box::new(LogicalPlan::SmallDivide {
                dividend: right.clone(),
                divisor: divisor.clone(),
            }),
        }))
    }
}

/// Split a dividend plan into `n` union branches by range-partitioning on the
/// first quotient attribute, so that Law 2 (under `c2`) applies by
/// construction. Returns `None` when the partition bounds cannot be derived
/// (no data access) or `n < 2`.
///
/// This is the "two parallel scans over an index on A" strategy the paper
/// sketches, expressed as a plan: each branch is `σ_{lo ≤ a < hi}(dividend)`.
pub fn partition_dividend_for_law2(
    dividend: &LogicalPlan,
    divisor: &LogicalPlan,
    n: usize,
    ctx: &RewriteContext<'_>,
) -> Result<Option<LogicalPlan>> {
    use div_algebra::{CompareOp, Predicate, Value};
    if n < 2 {
        return Ok(None);
    }
    let Some(attrs) = small_divide_attrs(ctx, dividend, divisor) else {
        return Ok(None);
    };
    let Some(dividend_rel) = ctx.try_evaluate(dividend)? else {
        return Ok(None);
    };
    let first_a = &attrs.quotient[0];
    let values: Vec<Value> = dividend_rel
        .column(first_a)
        .map_err(div_expr::ExprError::from)?
        .into_iter()
        .collect();
    if values.len() < n {
        return Ok(None);
    }
    // Range bounds at equi-depth positions over the sorted distinct values.
    let mut branches: Vec<LogicalPlan> = Vec::with_capacity(n);
    let chunk = values.len().div_ceil(n);
    for i in 0..n {
        let lo = i * chunk;
        if lo >= values.len() {
            break;
        }
        let hi = ((i + 1) * chunk).min(values.len());
        let lower = &values[lo];
        let mut predicate = Predicate::cmp_value(first_a.clone(), CompareOp::GtEq, lower.clone());
        if hi < values.len() {
            let upper = &values[hi];
            predicate = predicate.and(Predicate::cmp_value(
                first_a.clone(),
                CompareOp::Lt,
                upper.clone(),
            ));
        }
        branches.push(LogicalPlan::Select {
            input: Box::new(dividend.clone()),
            predicate,
        });
    }
    let mut iter = branches.into_iter();
    let first = iter.next().expect("n >= 2 guarantees at least one branch");
    let unioned = iter.fold(first, |acc, branch| LogicalPlan::Union {
        left: Box::new(acc),
        right: Box::new(branch),
    });
    Ok(Some(LogicalPlan::SmallDivide {
        dividend: Box::new(unioned),
        divisor: Box::new(divisor.clone()),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;
    use div_expr::{evaluate, Catalog, PlanBuilder};

    fn figure4_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
                [4, 1], [4, 3],
            },
        );
        c.register("r2_prime", relation! { ["b"] => [1], [3] });
        c.register("r2_double", relation! { ["b"] => [3], [4] });
        c
    }

    #[test]
    fn law1_rewrites_divisor_union_and_preserves_result() {
        let catalog = figure4_catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2_prime").union(PlanBuilder::scan("r2_double")))
            .build();
        let rewritten = Law1DivisorUnionToPipeline
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 1 should apply");
        // The rewritten plan is the right-hand side of Law 1 ...
        assert!(matches!(rewritten, LogicalPlan::SmallDivide { .. }));
        assert_eq!(rewritten.node_count(), 7);
        // ... and both sides evaluate to Figure 4(g): {2, 3}.
        let expected = relation! { ["a"] => [2], [3] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
    }

    #[test]
    fn law1_ignores_non_union_divisors() {
        let catalog = figure4_catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2_prime"))
            .build();
        assert!(Law1DivisorUnionToPipeline
            .apply(&plan, &ctx)
            .unwrap()
            .is_none());
    }

    #[test]
    fn law2_applies_when_c2_holds() {
        let mut catalog = Catalog::new();
        catalog.register("low", relation! { ["a", "b"] => [1, 1], [1, 3], [2, 1] });
        catalog.register("high", relation! { ["a", "b"] => [3, 1], [3, 3] });
        catalog.register("r2", relation! { ["b"] => [1], [3] });
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("low")
            .union(PlanBuilder::scan("high"))
            .divide(PlanBuilder::scan("r2"))
            .build();
        let rewritten = Law2DividendUnionSplit
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 2 should apply");
        assert!(matches!(rewritten, LogicalPlan::Union { .. }));
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law2_declines_on_figure_5_partitions() {
        // Figure 5: the precondition is violated, the rule must not fire.
        let mut catalog = Catalog::new();
        catalog.register("p1", relation! { ["a", "b"] => [1, 1], [1, 2], [1, 3] });
        catalog.register("p2", relation! { ["a", "b"] => [1, 2], [1, 4] });
        catalog.register("r2", relation! { ["b"] => [1], [4] });
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("p1")
            .union(PlanBuilder::scan("p2"))
            .divide(PlanBuilder::scan("r2"))
            .build();
        assert!(Law2DividendUnionSplit.apply(&plan, &ctx).unwrap().is_none());
        // Sanity: splitting would indeed change the result.
        let wrong = PlanBuilder::scan("p1")
            .divide(PlanBuilder::scan("r2"))
            .union(PlanBuilder::scan("p2").divide(PlanBuilder::scan("r2")))
            .build();
        assert_ne!(
            evaluate(&wrong, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law2_requires_data_access() {
        let catalog = figure4_catalog();
        let ctx = RewriteContext::with_metadata_only(&catalog);
        let plan = PlanBuilder::scan("r1")
            .union(PlanBuilder::scan("r1"))
            .divide(PlanBuilder::scan("r2_prime"))
            .build();
        assert!(Law2DividendUnionSplit.apply(&plan, &ctx).unwrap().is_none());
    }

    #[test]
    fn partitioning_helper_builds_equivalent_plan() {
        let catalog = figure4_catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let dividend = PlanBuilder::scan("r1").build();
        let divisor = PlanBuilder::scan("r2_prime").build();
        let partitioned = partition_dividend_for_law2(&dividend, &divisor, 2, &ctx)
            .unwrap()
            .expect("partitioning should succeed");
        let original = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2_prime"))
            .build();
        assert_eq!(
            evaluate(&partitioned, &catalog).unwrap(),
            evaluate(&original, &catalog).unwrap()
        );
        // After partitioning, Law 2 fires (the branches are range-disjoint).
        let rewritten = Law2DividendUnionSplit.apply(&partitioned, &ctx).unwrap();
        assert!(rewritten.is_some());
    }
}
