//! Section 5.1.6 — join laws for the small divide (Law 10).
//!
//! The worked derivation of Example 3 (eliminating the theta-join from the
//! dividend) lives in [`super::examples`].

use super::helpers::{refs, small_divide_attrs};
use crate::context::RewriteContext;
use crate::rule::RewriteRule;
use crate::Result;
use div_expr::LogicalPlan;

/// **Law 10**: `(r1 ÷ r2) ⋉ r3 = (r1 ⋉ r3) ÷ r2`, where `R3(A)`.
///
/// Applied left-to-right: when the quotient is immediately semi-joined with a
/// small relation `r3`, the semi-join is performed *before* the division. The
/// paper motivates this for a highly selective `r3`: one scan over `r1`
/// removes most tuples and the subsequent division is cheap.
///
/// The rule accepts `R3 ⊆ A` (the semi-join then acts as a selection on a
/// subset of the quotient attributes, which commutes with the division for the
/// same reason Law 3 does); the paper's statement is the special case
/// `R3 = A`.
pub struct Law10SemiJoinCommute;

impl RewriteRule for Law10SemiJoinCommute {
    fn name(&self) -> &'static str {
        "law-10-semijoin-commute"
    }

    fn reference(&self) -> &'static str {
        "Law 10, Section 5.1.6"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::SemiJoin { left, right } = plan else {
            return Ok(None);
        };
        let LogicalPlan::SmallDivide { dividend, divisor } = left.as_ref() else {
            return Ok(None);
        };
        let Some(attrs) = small_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        let Some(r3_schema) = ctx.schema_of(right) else {
            return Ok(None);
        };
        // R3 must consist of quotient attributes only (and at least one, so
        // the semi-join actually correlates with the quotient).
        let a = refs(&attrs.quotient);
        if r3_schema.is_empty() || !r3_schema.names().iter().all(|n| a.contains(n)) {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::SmallDivide {
            dividend: Box::new(LogicalPlan::SemiJoin {
                left: dividend.clone(),
                right: right.clone(),
            }),
            divisor: divisor.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;
    use div_expr::{evaluate, Catalog, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
                [4, 1], [4, 3],
            },
        );
        c.register("r2", relation! { ["b"] => [1], [3] });
        c.register("r3", relation! { ["a"] => [3], [4], [99] });
        c.register("r3_other", relation! { ["z"] => [3] });
        c
    }

    #[test]
    fn law10_commutes_semi_join_below_division() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .semi_join(PlanBuilder::scan("r3"))
            .build();
        let rewritten = Law10SemiJoinCommute
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 10 should apply");
        match &rewritten {
            LogicalPlan::SmallDivide { dividend, .. } => {
                assert!(matches!(dividend.as_ref(), LogicalPlan::SemiJoin { .. }));
            }
            other => panic!("unexpected rewrite {other:?}"),
        }
        // (r1 ÷ r2) ⋉ r3 = {2, 3, 4} ⋉ {3, 4, 99} = {3, 4}.
        let expected = relation! { ["a"] => [3], [4] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
    }

    #[test]
    fn law10_declines_when_r3_is_not_over_quotient_attributes() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .semi_join(PlanBuilder::scan("r3_other"))
            .build();
        assert!(Law10SemiJoinCommute.apply(&plan, &ctx).unwrap().is_none());
    }

    #[test]
    fn law10_declines_when_left_is_not_a_division() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .semi_join(PlanBuilder::scan("r3"))
            .build();
        assert!(Law10SemiJoinCommute.apply(&plan, &ctx).unwrap().is_none());
    }

    #[test]
    fn law10_works_without_data_access() {
        let catalog = catalog();
        let ctx = RewriteContext::with_metadata_only(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .semi_join(PlanBuilder::scan("r3"))
            .build();
        assert!(Law10SemiJoinCommute.apply(&plan, &ctx).unwrap().is_some());
    }
}
