//! Section 5.2 — laws for the great divide (Laws 13–17) and the join push-in
//! rewrite of Example 4.

use super::helpers::{great_divide_attrs, refs};
use crate::context::RewriteContext;
use crate::preconditions;
use crate::rule::RewriteRule;
use crate::Result;
use div_expr::{ExprError, LogicalPlan};

/// **Law 13**: if `π_C(r'2) ∩ π_C(r''2) = ∅` then
/// `r1 ÷* (r'2 ∪ r''2) = (r1 ÷* r'2) ∪ (r1 ÷* r''2)`.
///
/// Applied left-to-right: the divisor groups are partitioned (e.g. by hashing
/// on `C`, as the paper's parallelization strategy suggests) and each
/// partition is divided independently.
pub struct Law13DivisorUnionSplit;

impl RewriteRule for Law13DivisorUnionSplit {
    fn name(&self) -> &'static str {
        "law-13-great-divisor-union-split"
    }

    fn reference(&self) -> &'static str {
        "Law 13, Section 5.2.1"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::GreatDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Union { left, right } = divisor.as_ref() else {
            return Ok(None);
        };
        let Some(attrs) = great_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        if attrs.group.is_empty() {
            return Ok(None);
        }
        if great_divide_attrs(ctx, dividend, left).is_none()
            || great_divide_attrs(ctx, dividend, right).is_none()
        {
            return Ok(None);
        }
        let (Some(left_rel), Some(right_rel)) = (ctx.try_evaluate(left)?, ctx.try_evaluate(right)?)
        else {
            return Ok(None);
        };
        let disjoint =
            preconditions::projections_disjoint(&left_rel, &right_rel, &refs(&attrs.group))
                .map_err(ExprError::from)?;
        if !disjoint {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::Union {
            left: Box::new(LogicalPlan::GreatDivide {
                dividend: dividend.clone(),
                divisor: left.clone(),
            }),
            right: Box::new(LogicalPlan::GreatDivide {
                dividend: dividend.clone(),
                divisor: right.clone(),
            }),
        }))
    }
}

/// **Law 14**: `σ_{p(A)}(r1 ÷* r2) = σ_{p(A)}(r1) ÷* r2` — push a filter on
/// quotient attributes into the dividend (the great-divide analogue of Law 3).
pub struct Law14SelectionPushdownQuotient;

impl RewriteRule for Law14SelectionPushdownQuotient {
    fn name(&self) -> &'static str {
        "law-14-great-selection-pushdown-quotient"
    }

    fn reference(&self) -> &'static str {
        "Law 14, Section 5.2.2"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::Select { input, predicate } = plan else {
            return Ok(None);
        };
        let LogicalPlan::GreatDivide { dividend, divisor } = input.as_ref() else {
            return Ok(None);
        };
        let Some(attrs) = great_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        if !predicate.only_references(&refs(&attrs.quotient)) {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::GreatDivide {
            dividend: Box::new(LogicalPlan::Select {
                input: dividend.clone(),
                predicate: predicate.clone(),
            }),
            divisor: divisor.clone(),
        }))
    }
}

/// **Law 15**: `σ_{p(C)}(r1 ÷* r2) = r1 ÷* σ_{p(C)}(r2)` — push a filter on
/// divisor-group attributes into the divisor.
pub struct Law15SelectionPushdownGroup;

impl RewriteRule for Law15SelectionPushdownGroup {
    fn name(&self) -> &'static str {
        "law-15-great-selection-pushdown-group"
    }

    fn reference(&self) -> &'static str {
        "Law 15, Section 5.2.2"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::Select { input, predicate } = plan else {
            return Ok(None);
        };
        let LogicalPlan::GreatDivide { dividend, divisor } = input.as_ref() else {
            return Ok(None);
        };
        let Some(attrs) = great_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        if attrs.group.is_empty() || !predicate.only_references(&refs(&attrs.group)) {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::GreatDivide {
            dividend: dividend.clone(),
            divisor: Box::new(LogicalPlan::Select {
                input: divisor.clone(),
                predicate: predicate.clone(),
            }),
        }))
    }
}

/// **Law 16**: `r1 ÷* σ_{p(B)}(r2) = σ_{p(B)}(r1) ÷* σ_{p(B)}(r2)` — replicate
/// a divisor filter on the shared attributes to the dividend (the great-divide
/// analogue of Law 4). The same termination guard as Law 4 applies.
pub struct Law16DivisorSelectionReplication;

impl RewriteRule for Law16DivisorSelectionReplication {
    fn name(&self) -> &'static str {
        "law-16-great-divisor-selection-replication"
    }

    fn reference(&self) -> &'static str {
        "Law 16, Section 5.2.2"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::GreatDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Select {
            input: divisor_input,
            predicate,
        } = divisor.as_ref()
        else {
            return Ok(None);
        };
        let Some(attrs) = great_divide_attrs(ctx, dividend, divisor) else {
            return Ok(None);
        };
        if !predicate.only_references(&refs(&attrs.shared)) {
            return Ok(None);
        }
        if great_divide_attrs(ctx, dividend, divisor_input).is_none() {
            return Ok(None);
        }
        if let LogicalPlan::Select {
            predicate: existing,
            ..
        } = dividend.as_ref()
        {
            if existing == predicate {
                return Ok(None);
            }
        }
        Ok(Some(LogicalPlan::GreatDivide {
            dividend: Box::new(LogicalPlan::Select {
                input: dividend.clone(),
                predicate: predicate.clone(),
            }),
            divisor: divisor.clone(),
        }))
    }
}

/// **Law 17**: `(r*1 × r**1) ÷* r2 = r*1 × (r**1 ÷* r2)` — the great-divide
/// analogue of Law 8: the division moves onto the product factor that carries
/// the shared attributes.
pub struct Law17ProductPushthrough;

impl RewriteRule for Law17ProductPushthrough {
    fn name(&self) -> &'static str {
        "law-17-great-product-pushthrough"
    }

    fn reference(&self) -> &'static str {
        "Law 17, Section 5.2.3"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::GreatDivide { dividend, divisor } = plan else {
            return Ok(None);
        };
        let LogicalPlan::Product { left, right } = dividend.as_ref() else {
            return Ok(None);
        };
        let (Some(left_schema), Some(divisor_schema)) =
            (ctx.schema_of(left), ctx.schema_of(divisor))
        else {
            return Ok(None);
        };
        // The left factor must not share any attribute with the divisor.
        if divisor_schema
            .names()
            .iter()
            .any(|b| left_schema.contains(b))
        {
            return Ok(None);
        }
        // The right factor alone must still form a valid great divide.
        if great_divide_attrs(ctx, right, divisor).is_none() {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::Product {
            left: left.clone(),
            right: Box::new(LogicalPlan::GreatDivide {
                dividend: right.clone(),
                divisor: divisor.clone(),
            }),
        }))
    }
}

/// **Example 4**: `r*1 ⋈_{a1=a2} (r**1 ÷* r2) = (r*1 ⋈_{a1=a2} r**1) ÷* r2`.
///
/// Applied left-to-right: a selective join against the quotient is pushed
/// *into* the dividend so that far fewer dividend groups have to be tested
/// against the divisor. The derivation in the paper composes Law 17 and
/// Law 14; the rule matches the composed shape directly. The join predicate
/// may reference only attributes of the outer relation and quotient attributes
/// `A` of the divide.
pub struct Example4JoinPushIn;

impl RewriteRule for Example4JoinPushIn {
    fn name(&self) -> &'static str {
        "example-4-join-push-in"
    }

    fn reference(&self) -> &'static str {
        "Example 4, Section 5.2.4 (composition of Laws 17 and 14)"
    }

    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>> {
        let LogicalPlan::ThetaJoin {
            left,
            right,
            predicate,
        } = plan
        else {
            return Ok(None);
        };
        let LogicalPlan::GreatDivide { dividend, divisor } = right.as_ref() else {
            return Ok(None);
        };
        let (Some(outer_schema), Some(attrs)) = (
            ctx.schema_of(left),
            great_divide_attrs(ctx, dividend, divisor),
        ) else {
            return Ok(None);
        };
        // The outer relation must be attribute-disjoint from the divisor (so
        // the rewritten dividend's quotient attributes are attrs(outer) ∪ A
        // and the group attributes C are untouched).
        let Some(divisor_schema) = ctx.schema_of(divisor) else {
            return Ok(None);
        };
        if !outer_schema.is_disjoint_from(&divisor_schema) {
            return Ok(None);
        }
        // The predicate may only mention outer attributes and quotient
        // attributes of the divide.
        let mut allowed: Vec<&str> = outer_schema.names();
        let quotient_refs = refs(&attrs.quotient);
        allowed.extend(quotient_refs.iter().copied());
        if !predicate.only_references(&allowed) {
            return Ok(None);
        }
        Ok(Some(LogicalPlan::GreatDivide {
            dividend: Box::new(LogicalPlan::ThetaJoin {
                left: left.clone(),
                right: dividend.clone(),
                predicate: predicate.clone(),
            }),
            divisor: divisor.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, Predicate};
    use div_expr::{evaluate, Catalog, PlanBuilder};

    /// Figure 2 data plus the extra relations used by the great-divide laws.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
            },
        );
        c.register(
            "r2",
            relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] },
        );
        c.register("r2_c1", relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1] });
        c.register("r2_c2", relation! { ["b", "c"] => [1, 2], [3, 2] });
        c.register("r2_c_overlap", relation! { ["b", "c"] => [1, 1], [3, 1] });
        c.register("outer", relation! { ["a1"] => [2], [99] });
        c.register("factor", relation! { ["d"] => [10], [20] });
        c
    }

    #[test]
    fn law13_splits_divisor_partitions_with_disjoint_groups() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2_c1").union(PlanBuilder::scan("r2_c2")))
            .build();
        let rewritten = Law13DivisorUnionSplit
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 13 should apply");
        assert!(matches!(rewritten, LogicalPlan::Union { .. }));
        // Both sides produce Figure 2(c).
        let expected = relation! { ["a", "c"] => [2, 1], [2, 2], [3, 2] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
    }

    #[test]
    fn law13_declines_when_group_values_overlap() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2_c1").union(PlanBuilder::scan("r2_c_overlap")))
            .build();
        assert!(Law13DivisorUnionSplit.apply(&plan, &ctx).unwrap().is_none());
    }

    #[test]
    fn law14_pushes_quotient_filter_into_dividend() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("a", 2))
            .build();
        let rewritten = Law14SelectionPushdownQuotient
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 14 should apply");
        assert!(matches!(rewritten, LogicalPlan::GreatDivide { .. }));
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law15_pushes_group_filter_into_divisor() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("c", 2))
            .build();
        let rewritten = Law15SelectionPushdownGroup
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 15 should apply");
        match &rewritten {
            LogicalPlan::GreatDivide { divisor, .. } => {
                assert!(matches!(divisor.as_ref(), LogicalPlan::Select { .. }));
            }
            other => panic!("unexpected rewrite {other:?}"),
        }
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn law15_declines_for_shared_attribute_predicates() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("b", 1))
            .build();
        // b is a shared attribute; neither Law 14 nor Law 15 applies (and b is
        // not even in the output schema — the plan is invalid, so both rules
        // must simply decline).
        assert!(Law15SelectionPushdownGroup
            .apply(&plan, &ctx)
            .unwrap()
            .is_none());
        assert!(Law14SelectionPushdownQuotient
            .apply(&plan, &ctx)
            .unwrap()
            .is_none());
    }

    #[test]
    fn law16_replicates_divisor_filter_and_terminates() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2").select(Predicate::eq_value("b", 1)))
            .build();
        let rewritten = Law16DivisorSelectionReplication
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 16 should apply");
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
        // Re-applying to the output is a no-op (termination guard).
        assert!(Law16DivisorSelectionReplication
            .apply(&rewritten, &ctx)
            .unwrap()
            .is_none());
    }

    #[test]
    fn law17_pushes_division_into_product_factor() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("factor")
            .product(PlanBuilder::scan("r1"))
            .great_divide(PlanBuilder::scan("r2"))
            .build();
        let rewritten = Law17ProductPushthrough
            .apply(&plan, &ctx)
            .unwrap()
            .expect("law 17 should apply");
        assert!(matches!(rewritten, LogicalPlan::Product { .. }));
        assert_eq!(
            evaluate(&rewritten, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn example4_pushes_selective_join_into_dividend() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("outer")
            .theta_join(
                PlanBuilder::scan("r1").great_divide(PlanBuilder::scan("r2")),
                Predicate::eq_attrs("a1", "a"),
            )
            .build();
        let rewritten = Example4JoinPushIn
            .apply(&plan, &ctx)
            .unwrap()
            .expect("example 4 should apply");
        match &rewritten {
            LogicalPlan::GreatDivide { dividend, .. } => {
                assert!(matches!(dividend.as_ref(), LogicalPlan::ThetaJoin { .. }));
            }
            other => panic!("unexpected rewrite {other:?}"),
        }
        let expected = relation! { ["a1", "a", "c"] => [2, 2, 1], [2, 2, 2] };
        assert_eq!(evaluate(&plan, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
    }

    #[test]
    fn example4_declines_when_predicate_touches_group_attributes() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("outer")
            .theta_join(
                PlanBuilder::scan("r1").great_divide(PlanBuilder::scan("r2")),
                Predicate::eq_attrs("a1", "c"),
            )
            .build();
        assert!(Example4JoinPushIn.apply(&plan, &ctx).unwrap().is_none());
    }
}
