//! The worked rewrite derivations of Examples 1 and 3.
//!
//! The paper deliberately does *not* state these equivalences as laws —
//! Example 1 because it covers "a rather extreme case", Example 3 because it
//! is a multi-step derivation that composes Example 1 with Laws 4 and 9 — but
//! both are important: Example 3 is the paper's showcase of how the rule set
//! removes a theta-join from the dividend entirely. They are provided here as
//! plan constructors (and, for Example 3, as a step-by-step derivation) so the
//! examples, tests and benchmarks can reproduce Figures 6 and 9.

use super::helpers::{refs, small_divide_attrs};
use crate::context::RewriteContext;
use crate::Result;
use div_algebra::{CompareOp, Predicate};
use div_expr::{ExprError, LogicalPlan};

/// **Example 1** (Section 5.1.2): for a predicate `p` over the divisor
/// attributes `B`,
///
/// ```text
/// σ_{p(B)}(r1) ÷ r2 =
///     (σ_{p(B)}(r1) ÷ σ_{p(B)}(r2)) − π_A(π_A(r1) × σ_{¬p(B)}(r2))
/// ```
///
/// The Cartesian product on the right merely "switches `π_A(r1)` on or off":
/// if `σ_{¬p(B)}(r2)` is nonempty the whole quotient is forced to be empty.
///
/// Given the original plan `σ_{p(B)}(dividend) ÷ divisor`, this function
/// builds the right-hand side. It returns `None` when the shape or the
/// attribute sets do not match.
pub fn example1_rewrite(
    dividend: &LogicalPlan,
    predicate: &Predicate,
    divisor: &LogicalPlan,
    ctx: &RewriteContext<'_>,
) -> Result<Option<LogicalPlan>> {
    let Some(attrs) = small_divide_attrs(ctx, dividend, divisor) else {
        return Ok(None);
    };
    if !predicate.only_references(&refs(&attrs.shared)) {
        return Ok(None);
    }
    let filtered_dividend = LogicalPlan::Select {
        input: Box::new(dividend.clone()),
        predicate: predicate.clone(),
    };
    let filtered_divisor = LogicalPlan::Select {
        input: Box::new(divisor.clone()),
        predicate: predicate.clone(),
    };
    let positive = LogicalPlan::SmallDivide {
        dividend: Box::new(filtered_dividend),
        divisor: Box::new(filtered_divisor),
    };
    // π_A(π_A(r1) × σ_{¬p(B)}(r2)) — nonempty exactly when σ_{¬p}(r2) is.
    let switch = LogicalPlan::Project {
        input: Box::new(LogicalPlan::Product {
            left: Box::new(LogicalPlan::Project {
                input: Box::new(dividend.clone()),
                attributes: attrs.quotient.clone(),
            }),
            right: Box::new(LogicalPlan::Select {
                input: Box::new(divisor.clone()),
                predicate: predicate.negate(),
            }),
        }),
        attributes: attrs.quotient.clone(),
    };
    Ok(Some(LogicalPlan::Difference {
        left: Box::new(positive),
        right: Box::new(switch),
    }))
}

/// One step of the Example 3 derivation: a named plan.
#[derive(Debug, Clone)]
pub struct DerivationStep {
    /// Which rule or definition justified this step.
    pub justification: &'static str,
    /// The plan after the step.
    pub plan: LogicalPlan,
}

/// **Example 3** (Section 5.1.6): rewrite
/// `(r*1 ⋈_{b1<b2} r**1) ÷ r2` into
/// `(r*1 ÷ π_{b1}(σ_{b1<b2}(r2))) − π_a(π_a(r*1) × σ_{b1≥b2}(r2))`,
/// eliminating the theta-join from the dividend.
///
/// The inputs are the three scans of Figure 9: `r*1(a, b1)`, `r**1(b2)` and
/// `r2(b1, b2)`; the paper's preconditions are that `r**1.b2` is unique and
/// `r2.b2` is a foreign key referencing `r**1` (so that Law 9 applies).
///
/// Returns the full derivation: the original plan followed by one entry per
/// rewrite step, exactly mirroring the chain of equalities in the paper. The
/// final step's plan is the fully rewritten expression.
pub fn example3_derivation(
    r_star: &LogicalPlan,
    r_star_star: &LogicalPlan,
    r2: &LogicalPlan,
    ctx: &RewriteContext<'_>,
) -> Result<Vec<DerivationStep>> {
    let Some(star_schema) = ctx.schema_of(r_star) else {
        return Err(ExprError::invalid("cannot infer schema of r*1"));
    };
    let Some(star_star_schema) = ctx.schema_of(r_star_star) else {
        return Err(ExprError::invalid("cannot infer schema of r**1"));
    };
    // Attribute names of Figure 9: a and b1 from r*1, b2 from r**1.
    let a_attrs: Vec<String> = star_schema
        .names()
        .into_iter()
        .filter(|n| *n != "b1")
        .map(|s| s.to_string())
        .collect();
    if !star_schema.contains("b1") || !star_star_schema.contains("b2") || a_attrs.is_empty() {
        return Err(ExprError::invalid(
            "example 3 expects r*1(a…, b1) and r**1(b2) as in Figure 9",
        ));
    }
    let join_pred = Predicate::cmp_attrs("b1", CompareOp::Lt, "b2");
    let anti_pred = join_pred.negate();

    // Step 0 — the original expression: (r*1 ⋈_{b1<b2} r**1) ÷ r2.
    let original = LogicalPlan::SmallDivide {
        dividend: Box::new(LogicalPlan::ThetaJoin {
            left: Box::new(r_star.clone()),
            right: Box::new(r_star_star.clone()),
            predicate: join_pred.clone(),
        }),
        divisor: Box::new(r2.clone()),
    };
    let mut steps = vec![DerivationStep {
        justification: "original expression",
        plan: original,
    }];

    // Step 1 — definition of theta-join: σ_{b1<b2}(r*1 × r**1) ÷ r2.
    let product = LogicalPlan::Product {
        left: Box::new(r_star.clone()),
        right: Box::new(r_star_star.clone()),
    };
    let step1 = LogicalPlan::SmallDivide {
        dividend: Box::new(LogicalPlan::Select {
            input: Box::new(product.clone()),
            predicate: join_pred.clone(),
        }),
        divisor: Box::new(r2.clone()),
    };
    steps.push(DerivationStep {
        justification: "definition of theta-join (⋈θ ≡ σθ ∘ ×)",
        plan: step1,
    });

    // Step 2 — Example 1 applied to the selection on B attributes.
    let step2 = LogicalPlan::Difference {
        left: Box::new(LogicalPlan::SmallDivide {
            dividend: Box::new(LogicalPlan::Select {
                input: Box::new(product.clone()),
                predicate: join_pred.clone(),
            }),
            divisor: Box::new(LogicalPlan::Select {
                input: Box::new(r2.clone()),
                predicate: join_pred.clone(),
            }),
        }),
        right: Box::new(LogicalPlan::Project {
            input: Box::new(LogicalPlan::Product {
                left: Box::new(LogicalPlan::Project {
                    input: Box::new(product.clone()),
                    attributes: a_attrs.clone(),
                }),
                right: Box::new(LogicalPlan::Select {
                    input: Box::new(r2.clone()),
                    predicate: anti_pred.clone(),
                }),
            }),
            attributes: a_attrs.clone(),
        }),
    };
    steps.push(DerivationStep {
        justification: "Example 1 (selection on dividend B attributes)",
        plan: step2,
    });

    // Step 3 — Law 4: drop the replicated selection from the dividend.
    let step3 = LogicalPlan::Difference {
        left: Box::new(LogicalPlan::SmallDivide {
            dividend: Box::new(product.clone()),
            divisor: Box::new(LogicalPlan::Select {
                input: Box::new(r2.clone()),
                predicate: join_pred.clone(),
            }),
        }),
        right: Box::new(LogicalPlan::Project {
            input: Box::new(LogicalPlan::Product {
                left: Box::new(LogicalPlan::Project {
                    input: Box::new(product.clone()),
                    attributes: a_attrs.clone(),
                }),
                right: Box::new(LogicalPlan::Select {
                    input: Box::new(r2.clone()),
                    predicate: anti_pred.clone(),
                }),
            }),
            attributes: a_attrs.clone(),
        }),
    };
    steps.push(DerivationStep {
        justification: "Law 4 (divisor selection replication, applied right-to-left)",
        plan: step3,
    });

    // Step 4 — Law 9: eliminate the product from the dividend.
    let step4 = LogicalPlan::Difference {
        left: Box::new(LogicalPlan::SmallDivide {
            dividend: Box::new(r_star.clone()),
            divisor: Box::new(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Select {
                    input: Box::new(r2.clone()),
                    predicate: join_pred.clone(),
                }),
                attributes: vec!["b1".to_string()],
            }),
        }),
        right: Box::new(LogicalPlan::Project {
            input: Box::new(LogicalPlan::Product {
                left: Box::new(LogicalPlan::Project {
                    input: Box::new(product),
                    attributes: a_attrs.clone(),
                }),
                right: Box::new(LogicalPlan::Select {
                    input: Box::new(r2.clone()),
                    predicate: anti_pred.clone(),
                }),
            }),
            attributes: a_attrs.clone(),
        }),
    };
    steps.push(DerivationStep {
        justification: "Law 9 (product elimination; π_{b2}(r2) ⊆ r**1)",
        plan: step4,
    });

    // Step 5 — since a ∈ R*1 but a ∉ R**1: π_a(r*1 × r**1) = π_a(r*1)
    // (provided r**1 ≠ ∅, which the foreign key of the precondition gives us
    // whenever r2 is nonempty; for r2 = ∅ both sides are the full quotient).
    let final_plan = LogicalPlan::Difference {
        left: Box::new(LogicalPlan::SmallDivide {
            dividend: Box::new(r_star.clone()),
            divisor: Box::new(LogicalPlan::Project {
                input: Box::new(LogicalPlan::Select {
                    input: Box::new(r2.clone()),
                    predicate: join_pred,
                }),
                attributes: vec!["b1".to_string()],
            }),
        }),
        right: Box::new(LogicalPlan::Project {
            input: Box::new(LogicalPlan::Product {
                left: Box::new(LogicalPlan::Project {
                    input: Box::new(r_star.clone()),
                    attributes: a_attrs.clone(),
                }),
                right: Box::new(LogicalPlan::Select {
                    input: Box::new(r2.clone()),
                    predicate: anti_pred,
                }),
            }),
            attributes: a_attrs,
        }),
    };
    steps.push(DerivationStep {
        justification:
            "projection simplification (a ∈ R*1, a ∉ R**1) — final plan, no join on the dividend",
        plan: final_plan,
    });
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RewriteContext;
    use div_algebra::relation;
    use div_expr::{evaluate, Catalog, PlanBuilder};

    /// Figure 6 data (Example 1).
    fn figure6_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
                [4, 1], [4, 3],
            },
        );
        c.register("r2", relation! { ["b"] => [1], [3], [4] });
        c.register("r2_small", relation! { ["b"] => [1], [2] });
        c
    }

    /// Figure 9 data (Example 3).
    fn figure9_catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r_star",
            relation! {
                ["a", "b1"] =>
                [1, 1], [1, 2], [1, 3],
                [2, 2], [2, 3],
                [3, 1], [3, 3], [3, 4],
            },
        );
        c.register("r_star_star", relation! { ["b2"] => [1], [2], [4] });
        c.register("r2", relation! { ["b1", "b2"] => [1, 4], [3, 4] });
        c
    }

    #[test]
    fn example1_reproduces_figure_6() {
        let catalog = figure6_catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let dividend = PlanBuilder::scan("r1").build();
        let divisor = PlanBuilder::scan("r2").build();
        let p = Predicate::cmp_value("b", CompareOp::Lt, 3);

        let original = LogicalPlan::SmallDivide {
            dividend: Box::new(LogicalPlan::Select {
                input: Box::new(dividend.clone()),
                predicate: p.clone(),
            }),
            divisor: Box::new(divisor.clone()),
        };
        let rewritten = example1_rewrite(&dividend, &p, &divisor, &ctx)
            .unwrap()
            .expect("example 1 should apply");
        // Figure 6(e)/(i): both sides are empty because σ_{b≥3}(r2) ≠ ∅.
        assert!(evaluate(&original, &catalog).unwrap().is_empty());
        assert!(evaluate(&rewritten, &catalog).unwrap().is_empty());
    }

    #[test]
    fn example1_nonempty_case() {
        // With divisor {1, 2} the negated selection is empty and the rewrite
        // must agree with the original non-empty quotient.
        let catalog = figure6_catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let dividend = PlanBuilder::scan("r1").build();
        let divisor = PlanBuilder::scan("r2_small").build();
        let p = Predicate::cmp_value("b", CompareOp::Lt, 3);
        let original = LogicalPlan::SmallDivide {
            dividend: Box::new(LogicalPlan::Select {
                input: Box::new(dividend.clone()),
                predicate: p.clone(),
            }),
            divisor: Box::new(divisor.clone()),
        };
        let rewritten = example1_rewrite(&dividend, &p, &divisor, &ctx)
            .unwrap()
            .unwrap();
        let expected = relation! { ["a"] => [2] };
        assert_eq!(evaluate(&original, &catalog).unwrap(), expected);
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), expected);
    }

    #[test]
    fn example1_declines_for_non_divisor_predicates() {
        let catalog = figure6_catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let dividend = PlanBuilder::scan("r1").build();
        let divisor = PlanBuilder::scan("r2").build();
        let p = Predicate::eq_value("a", 1);
        assert!(example1_rewrite(&dividend, &p, &divisor, &ctx)
            .unwrap()
            .is_none());
    }

    #[test]
    fn example3_every_derivation_step_is_equivalent() {
        let catalog = figure9_catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let steps = example3_derivation(
            &PlanBuilder::scan("r_star").build(),
            &PlanBuilder::scan("r_star_star").build(),
            &PlanBuilder::scan("r2").build(),
            &ctx,
        )
        .unwrap();
        assert_eq!(steps.len(), 6);
        // Figure 9(f): r3 = {1, 3}.
        let expected = relation! { ["a"] => [1], [3] };
        for step in &steps {
            assert_eq!(
                evaluate(&step.plan, &catalog).unwrap(),
                expected,
                "step `{}` is not equivalent",
                step.justification
            );
        }
        // The final plan no longer touches r**1 at all and contains no join.
        let final_plan = &steps.last().unwrap().plan;
        assert!(!final_plan
            .scanned_tables()
            .contains(&"r_star_star".to_string()));
        assert!(!format!("{final_plan}").contains("ThetaJoin"));
    }

    #[test]
    fn example3_rejects_wrong_shapes() {
        let catalog = figure9_catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // r*1 without the expected b1 attribute.
        let bad = example3_derivation(
            &PlanBuilder::scan("r_star_star").build(),
            &PlanBuilder::scan("r_star_star").build(),
            &PlanBuilder::scan("r2").build(),
            &ctx,
        );
        assert!(bad.is_err());
    }
}
