//! The algebraic laws of the paper as rewrite rules, grouped exactly like
//! Section 5:
//!
//! | Module | Paper section | Laws |
//! |--------|---------------|------|
//! | [`small_divide_union`] | 5.1.1 Union | Laws 1, 2 |
//! | [`small_divide_selection`] | 5.1.2 Selection | Laws 3, 4 (+ Example 1) |
//! | [`small_divide_set_ops`] | 5.1.3/5.1.4 Intersection & Difference | Laws 5, 6, 7 |
//! | [`small_divide_product`] | 5.1.5 Cartesian product | Laws 8, 9 (+ Example 2) |
//! | [`small_divide_join`] | 5.1.6 Join | Law 10 (+ Example 3) |
//! | [`small_divide_grouping`] | 5.1.7 Grouping | Laws 11, 12 |
//! | [`great_divide`] | 5.2 Great divide | Laws 13–17 (+ Example 4) |
//! | [`examples`] | worked derivations | Examples 1 and 3 as plan constructors |

pub mod examples;
pub mod great_divide;
pub mod small_divide_grouping;
pub mod small_divide_join;
pub mod small_divide_product;
pub mod small_divide_selection;
pub mod small_divide_set_ops;
pub mod small_divide_union;

pub(crate) mod helpers {
    //! Schema bookkeeping shared by the rules.

    use crate::context::RewriteContext;
    use div_expr::LogicalPlan;

    /// The `A`/`B` attribute sets of a small divide, derived from schemas.
    pub struct SmallDivideAttrs {
        /// Quotient attributes `A` (dividend-only).
        pub quotient: Vec<String>,
        /// Divisor attributes `B`.
        pub shared: Vec<String>,
    }

    /// The `A`/`B`/`C` attribute sets of a great divide, derived from schemas.
    pub struct GreatDivideAttrs {
        /// Quotient attributes `A` (dividend-only).
        pub quotient: Vec<String>,
        /// Shared attributes `B`.
        pub shared: Vec<String>,
        /// Divisor group attributes `C` (divisor-only).
        pub group: Vec<String>,
    }

    /// Compute the attribute partition of `dividend ÷ divisor`, or `None` if
    /// the schemas cannot be resolved or violate the operator's preconditions
    /// (in which case no rule should fire — the plan is already invalid and
    /// evaluation will report the error).
    pub fn small_divide_attrs(
        ctx: &RewriteContext<'_>,
        dividend: &LogicalPlan,
        divisor: &LogicalPlan,
    ) -> Option<SmallDivideAttrs> {
        let ds = ctx.schema_of(dividend)?;
        let vs = ctx.schema_of(divisor)?;
        if vs.is_empty() || !vs.names().iter().all(|n| ds.contains(n)) {
            return None;
        }
        let quotient = ds.difference_attributes(&vs);
        if quotient.is_empty() {
            return None;
        }
        let shared = vs.names().iter().map(|s| s.to_string()).collect();
        Some(SmallDivideAttrs { quotient, shared })
    }

    /// Compute the attribute partition of `dividend ÷* divisor`, or `None`.
    pub fn great_divide_attrs(
        ctx: &RewriteContext<'_>,
        dividend: &LogicalPlan,
        divisor: &LogicalPlan,
    ) -> Option<GreatDivideAttrs> {
        let ds = ctx.schema_of(dividend)?;
        let vs = ctx.schema_of(divisor)?;
        let shared = ds.common_attributes(&vs);
        if shared.is_empty() {
            return None;
        }
        let quotient = ds.difference_attributes(&vs);
        if quotient.is_empty() {
            return None;
        }
        let group = vs.difference_attributes(&ds);
        Some(GreatDivideAttrs {
            quotient,
            shared,
            group,
        })
    }

    /// Shorthand for string-slice views of owned attribute lists.
    pub fn refs(names: &[String]) -> Vec<&str> {
        names.iter().map(String::as_str).collect()
    }
}
