//! The context available to rewrite rules: schemas, integrity metadata and
//! (optionally) the data itself for data-dependent preconditions.

use crate::Result;
use div_algebra::{Relation, Schema};
use div_expr::{evaluate, infer_schema, Catalog, LogicalPlan, SchemaProvider};

/// Everything a rewrite rule may consult while deciding whether it applies.
///
/// The paper distinguishes between laws whose side conditions are purely
/// structural (e.g. Law 3: the predicate mentions only quotient attributes)
/// and laws whose side conditions depend on the database (e.g. Law 2's `c1`,
/// Law 7's disjoint quotient prefixes, Law 9's `π_{B2}(r2) ⊆ r**1`). The
/// former need only schemas; the latter are checked here either from declared
/// integrity constraints or — if [`RewriteContext::allow_data_checks`] is set,
/// the moral equivalent of an optimizer consulting statistics or running a
/// cheap subquery — by evaluating the relevant subplans.
pub struct RewriteContext<'a> {
    catalog: Option<&'a Catalog>,
    allow_data_checks: bool,
}

impl<'a> RewriteContext<'a> {
    /// A context with no catalog at all: only purely structural rules fire.
    pub fn schema_only() -> Self {
        RewriteContext {
            catalog: None,
            allow_data_checks: false,
        }
    }

    /// A context backed by a catalog, with data-dependent checks enabled.
    pub fn with_catalog(catalog: &'a Catalog) -> Self {
        RewriteContext {
            catalog: Some(catalog),
            allow_data_checks: true,
        }
    }

    /// A context backed by a catalog whose *data* must not be consulted — only
    /// schemas and declared constraints (what a production optimizer would see
    /// at plan time).
    pub fn with_metadata_only(catalog: &'a Catalog) -> Self {
        RewriteContext {
            catalog: Some(catalog),
            allow_data_checks: false,
        }
    }

    /// The underlying catalog, if any.
    pub fn catalog(&self) -> Option<&Catalog> {
        self.catalog
    }

    /// Whether rules may evaluate subplans to check data-dependent
    /// preconditions.
    pub fn allow_data_checks(&self) -> bool {
        self.allow_data_checks && self.catalog.is_some()
    }

    /// Infer the output schema of `plan`. Returns `None` when the schema
    /// cannot be resolved (e.g. a scan of an unregistered table in a
    /// schema-only context) — rules treat that as "rule does not apply".
    pub fn schema_of(&self, plan: &LogicalPlan) -> Option<Schema> {
        match self.catalog {
            Some(catalog) => infer_schema(plan, catalog).ok(),
            None => infer_schema(plan, &NoTables).ok(),
        }
    }

    /// Evaluate `plan` for a data-dependent precondition check. Returns
    /// `Ok(None)` when data checks are disabled, or when the plan contains
    /// unbound `$parameter` placeholders (prepared statements are optimized
    /// before their parameters are known, so data-dependent preconditions
    /// cannot be decided); rules must then decline.
    pub fn try_evaluate(&self, plan: &LogicalPlan) -> Result<Option<Relation>> {
        if !self.allow_data_checks() || plan.contains_parameters() {
            return Ok(None);
        }
        let catalog = self.catalog.expect("allow_data_checks implies catalog");
        Ok(Some(evaluate(plan, catalog)?))
    }

    /// `true` if `attributes` is a declared unique key of the base table
    /// scanned by `plan` (only recognised when `plan` is a plain scan).
    pub fn is_unique_key(&self, plan: &LogicalPlan, attributes: &[&str]) -> bool {
        match (self.catalog, plan) {
            (Some(catalog), LogicalPlan::Scan { table }) => catalog.is_unique(table, attributes),
            _ => false,
        }
    }

    /// `true` if a foreign key from the base table scanned by `from` to the
    /// base table scanned by `to` has been declared over the given attributes.
    pub fn has_foreign_key(
        &self,
        from: &LogicalPlan,
        from_attributes: &[&str],
        to: &LogicalPlan,
        to_attributes: &[&str],
    ) -> bool {
        match (self.catalog, from, to) {
            (
                Some(catalog),
                LogicalPlan::Scan { table: from_table },
                LogicalPlan::Scan { table: to_table },
            ) => catalog.has_foreign_key(from_table, from_attributes, to_table, to_attributes),
            _ => false,
        }
    }
}

/// Schema provider with no tables, used when the context has no catalog.
struct NoTables;

impl SchemaProvider for NoTables {
    fn table_schema(&self, _name: &str) -> Option<Schema> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;
    use div_expr::PlanBuilder;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register("r1", relation! { ["a", "b"] => [1, 1], [2, 1] });
        c.register("r2", relation! { ["b"] => [1] });
        c.declare_unique("r2", &["b"]).unwrap();
        c.declare_foreign_key("r1", &["b"], "r2", &["b"]).unwrap();
        c
    }

    #[test]
    fn schema_only_context_resolves_values_but_not_scans() {
        let ctx = RewriteContext::schema_only();
        let values = PlanBuilder::values(relation! { ["x"] => [1] }).build();
        assert!(ctx.schema_of(&values).is_some());
        let scan = PlanBuilder::scan("r1").build();
        assert!(ctx.schema_of(&scan).is_none());
        assert!(!ctx.allow_data_checks());
        assert!(ctx.try_evaluate(&values).unwrap().is_none());
    }

    #[test]
    fn catalog_context_resolves_schemas_and_evaluates() {
        let c = catalog();
        let ctx = RewriteContext::with_catalog(&c);
        let scan = PlanBuilder::scan("r1").build();
        assert_eq!(ctx.schema_of(&scan).unwrap().names(), vec!["a", "b"]);
        let rel = ctx.try_evaluate(&scan).unwrap().unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn metadata_only_context_blocks_data_checks() {
        let c = catalog();
        let ctx = RewriteContext::with_metadata_only(&c);
        assert!(!ctx.allow_data_checks());
        let scan = PlanBuilder::scan("r1").build();
        assert!(ctx.try_evaluate(&scan).unwrap().is_none());
        // ... but still exposes declared constraints.
        let r2 = PlanBuilder::scan("r2").build();
        assert!(ctx.is_unique_key(&r2, &["b"]));
        assert!(ctx.has_foreign_key(&scan, &["b"], &r2, &["b"]));
    }

    #[test]
    fn constraint_lookups_require_plain_scans() {
        let c = catalog();
        let ctx = RewriteContext::with_catalog(&c);
        let projected = PlanBuilder::scan("r2").project(["b"]).build();
        assert!(!ctx.is_unique_key(&projected, &["b"]));
    }
}
