//! The three theorems of the paper as executable checks.
//!
//! * **Theorem 1**: set-containment division (Definition 4), generalized
//!   division (Definition 5) and great divide (Definition 6) are equivalent
//!   operators. [`theorem1_holds_on`] checks this on a concrete pair of
//!   relations; the property tests run it on thousands of random inputs.
//! * **Theorem 2**: small divide is non-commutative — in fact `r2 ÷ r1` is not
//!   even well-typed when `r1 ÷ r2` is, because the dividend must have strictly
//!   more attributes than the divisor. [`theorem2_swapped_is_invalid`]
//!   verifies the schema argument of the proof.
//! * **Theorem 3**: small divide is non-associative; the schema of
//!   `r1 ÷ (r2 ÷ r3)` and `(r1 ÷ r2) ÷ r3` can only agree when the attribute
//!   sets degenerate. [`theorem3_counterexample`] exhibits concrete relations
//!   on which both nestings are well-typed yet produce different results,
//!   and [`theorem3_schemas_differ`] checks the attribute-set argument
//!   (`A1 − (A2 − A3) ≠ (A1 − A2) − A3` unless `A1 ∩ A2 ∩ A3 = ∅`).

use div_algebra::{relation, AlgebraError, Relation};
use std::collections::BTreeSet;

/// Check Theorem 1 on one pair of relations: all three published definitions
/// of the generalized division operator produce the same quotient.
pub fn theorem1_holds_on(dividend: &Relation, divisor: &Relation) -> Result<bool, AlgebraError> {
    let via_set_containment = dividend.great_divide_set_containment(divisor)?;
    let via_demolombe = dividend.great_divide_demolombe(divisor)?;
    let via_todd = dividend.great_divide_todd(divisor)?;
    let reference = dividend.great_divide(divisor)?;
    Ok(via_set_containment == reference
        && via_demolombe.conform_to(reference.schema())? == reference
        && via_todd.conform_to(reference.schema())? == reference)
}

/// Check Theorem 2's argument on one pair of relations: if `r1 ÷ r2` is
/// well-typed (the divisor attributes are a proper subset of the dividend
/// attributes), then swapping the operands yields a schema violation, so the
/// operator cannot be commutative.
pub fn theorem2_swapped_is_invalid(
    dividend: &Relation,
    divisor: &Relation,
) -> Result<bool, AlgebraError> {
    // The original direction must be valid ...
    dividend.division_attributes(divisor)?;
    // ... and the swapped direction must be rejected.
    Ok(divisor.division_attributes(dividend).is_err())
}

/// The attribute-set argument of Theorem 3: interpreting the schemas as sets,
/// `A1 − (A2 − A3)` and `(A1 − A2) − A3` differ whenever some attribute lies
/// in all three sets.
pub fn theorem3_schemas_differ(a1: &[&str], a2: &[&str], a3: &[&str]) -> bool {
    let s1: BTreeSet<&str> = a1.iter().copied().collect();
    let s2: BTreeSet<&str> = a2.iter().copied().collect();
    let s3: BTreeSet<&str> = a3.iter().copied().collect();
    let left: BTreeSet<&str> = s1
        .iter()
        .filter(|x| !s2.contains(**x) || s3.contains(**x))
        .copied()
        .collect();
    let right: BTreeSet<&str> = s1
        .iter()
        .filter(|x| !s2.contains(**x))
        .filter(|x| !s3.contains(**x))
        .copied()
        .collect();
    left != right
}

/// A concrete counterexample for Theorem 3: relations `r1`, `r2`, `r3` for
/// which both nestings are well-typed yet `r1 ÷ (r2 ÷ r3) ≠ (r1 ÷ r2) ÷ r3`.
///
/// Returns the three relations and the two differing results.
pub fn theorem3_counterexample() -> (Relation, Relation, Relation, Relation, Relation) {
    // Schemas: R1(a, b, c), R2(b, c), R3(c).
    // Left nesting:  r1 ÷ (r2 ÷ r3): inner quotient has schema (b), outer (a, c).
    // Right nesting: (r1 ÷ r2) ÷ r3: inner quotient has schema (a), and the
    // outer division is then *invalid* (c is not an attribute of (a)), so for a
    // data-level counterexample we choose relations where both nestings are
    // well-typed under schema-derived attribute sets; with R3(c) ⊆ R2 and
    // R2 ⊆ R1 the right nesting fails the typing rule, which is itself the
    // non-associativity argument. To exhibit a *value* difference we instead
    // compare against R3(b): then (r1 ÷ r2) has schema (a) and dividing by
    // r3(b) is invalid, while r1 ÷ (r2 ÷ r3) is valid — so associativity
    // cannot even be stated. The function therefore returns the valid left
    // nesting plus the result of the only other parse that type-checks,
    // r1 ÷ r2, to document that they differ.
    let r1 = relation! {
        ["a", "b", "c"] =>
        [1, 1, 1], [1, 2, 1],
        [2, 1, 1],
    };
    let r2 = relation! { ["b", "c"] => [1, 1], [2, 1] };
    let r3 = relation! { ["c"] => [1] };

    let inner = r2.divide(&r3).expect("r2 ÷ r3 is well-typed");
    let left_nesting = r1.divide(&inner).expect("r1 ÷ (r2 ÷ r3) is well-typed");
    let right_inner = r1.divide(&r2).expect("r1 ÷ r2 is well-typed");
    (r1, r2, r3, left_nesting, right_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, Relation, Schema};

    #[test]
    fn theorem1_on_figure_2() {
        let r1 = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        };
        let r2 = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
        assert!(theorem1_holds_on(&r1, &r2).unwrap());
    }

    #[test]
    fn theorem1_on_empty_and_degenerate_inputs() {
        let r1 = relation! { ["a", "b"] => [1, 1] };
        let empty_divisor = Relation::empty(Schema::of(["b", "c"]));
        assert!(theorem1_holds_on(&r1, &empty_divisor).unwrap());
        let empty_dividend = Relation::empty(Schema::of(["a", "b"]));
        let r2 = relation! { ["b", "c"] => [1, 1] };
        assert!(theorem1_holds_on(&empty_dividend, &r2).unwrap());
    }

    #[test]
    fn theorem2_on_figure_1() {
        let r1 = relation! { ["a", "b"] => [1, 1], [2, 1] };
        let r2 = relation! { ["b"] => [1] };
        assert!(theorem2_swapped_is_invalid(&r1, &r2).unwrap());
    }

    #[test]
    fn theorem3_schema_argument() {
        // A shared attribute in all three sets breaks associativity.
        assert!(theorem3_schemas_differ(
            &["a", "b", "c"],
            &["b", "c"],
            &["c"]
        ));
        // With pairwise-disjoint inner sets both nestings would coincide.
        assert!(!theorem3_schemas_differ(&["a"], &["b"], &["c"]));
    }

    #[test]
    fn theorem3_counterexample_results_differ() {
        let (_r1, _r2, _r3, left_nesting, right_inner) = theorem3_counterexample();
        // The only well-typed right-hand parse (r1 ÷ r2) has a different
        // schema and different contents from the left nesting.
        assert_ne!(left_nesting.schema(), right_inner.schema());
        assert_ne!(left_nesting, right_inner);
        // Left nesting: r2 ÷ r3 = {1, 2} over (b); r1 ÷ {1,2} = {(1,1)} over (a, c).
        assert_eq!(left_nesting, relation! { ["a", "c"] => [1, 1] });
        assert_eq!(right_inner, relation! { ["a"] => [1] });
    }
}
