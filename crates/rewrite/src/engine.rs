//! The heuristic rewrite engine: applies the law rule set to a plan until a
//! fixpoint (or an iteration budget) is reached, the way a rule-based
//! optimizer such as Starburst or Cascades drives its transformation rules
//! (Section 1.1 of the paper).

use crate::context::RewriteContext;
use crate::rule::RuleSet;
use crate::Result;
use div_expr::{LogicalPlan, Transformed};

/// A record of one successful rule application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedRule {
    /// Machine-readable rule name.
    pub rule: String,
    /// Paper reference of the rule.
    pub reference: String,
    /// Engine pass (1-based) in which the rule fired.
    pub pass: usize,
    /// Node count of the whole plan before the application.
    pub nodes_before: usize,
    /// Node count of the whole plan after the application.
    pub nodes_after: usize,
}

/// Tally rule applications by rule name (insertion-ordered by name).
///
/// Convenience for observability layers that keep per-law counters — e.g.
/// the SQL engine's metrics registry — without caring about pass numbers or
/// plan sizes.
pub fn count_applications(applied: &[AppliedRule]) -> std::collections::BTreeMap<String, u64> {
    let mut counts = std::collections::BTreeMap::new();
    for a in applied {
        *counts.entry(a.rule.clone()).or_insert(0u64) += 1;
    }
    counts
}

/// The result of running the engine.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    /// The rewritten plan (equal to the input when no rule fired).
    pub plan: LogicalPlan,
    /// Every rule application, in the order it happened.
    pub applied: Vec<AppliedRule>,
    /// Number of passes executed (including the final pass that found nothing
    /// to rewrite).
    pub passes: usize,
    /// `true` when the engine stopped because the pass budget was exhausted
    /// rather than because a fixpoint was reached.
    pub budget_exhausted: bool,
}

impl RewriteOutcome {
    /// `true` when at least one rule fired.
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }

    /// A compact human-readable trace of the applied rules.
    pub fn trace(&self) -> String {
        if self.applied.is_empty() {
            return "no rewrite rules applied".to_string();
        }
        self.applied
            .iter()
            .map(|a| format!("pass {}: {} ({})", a.pass, a.rule, a.reference))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// The fixpoint rewrite engine.
#[derive(Debug, Clone)]
pub struct RewriteEngine {
    rules: RuleSet,
    max_passes: usize,
}

impl RewriteEngine {
    /// Engine over an explicit rule set.
    pub fn new(rules: RuleSet) -> Self {
        RewriteEngine {
            rules,
            max_passes: 10,
        }
    }

    /// Engine with the full default rule set (all laws of the paper).
    pub fn with_default_rules() -> Self {
        Self::new(RuleSet::default_rules())
    }

    /// Change the maximum number of passes (each pass walks the whole plan
    /// once per rule).
    pub fn with_max_passes(mut self, max_passes: usize) -> Self {
        self.max_passes = max_passes.max(1);
        self
    }

    /// The rule set the engine runs.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Apply the rule set to `plan` until no rule fires anymore (or the pass
    /// budget runs out), returning the rewritten plan and the application
    /// trace.
    pub fn rewrite(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<RewriteOutcome> {
        let mut current = plan.clone();
        let mut applied = Vec::new();
        let mut passes = 0;
        let mut budget_exhausted = false;

        loop {
            passes += 1;
            let mut changed_this_pass = false;

            for rule in self.rules.rules() {
                // Walk the plan bottom-up, applying this rule wherever it
                // matches. Bottom-up keeps inner divisions simplified before
                // outer operators are considered.
                let before_nodes = current.node_count();
                let mut fired = false;
                let transformed =
                    current.transform_up(&mut |node| match rule.apply(&node, ctx)? {
                        Some(new_node) => {
                            fired = true;
                            Ok(Transformed::Yes(new_node))
                        }
                        None => Ok(Transformed::No(node)),
                    })?;
                if fired {
                    current = transformed.into_plan();
                    applied.push(AppliedRule {
                        rule: rule.name().to_string(),
                        reference: rule.reference().to_string(),
                        pass: passes,
                        nodes_before: before_nodes,
                        nodes_after: current.node_count(),
                    });
                    changed_this_pass = true;
                }
            }

            if !changed_this_pass {
                break;
            }
            if passes >= self.max_passes {
                budget_exhausted = true;
                break;
            }
        }

        Ok(RewriteOutcome {
            plan: current,
            applied,
            passes,
            budget_exhausted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::{relation, CompareOp, Predicate};
    use div_expr::{evaluate, Catalog, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
                [4, 1], [4, 3],
            },
        );
        c.register("r2", relation! { ["b"] => [1], [3] });
        c.register(
            "r2_groups",
            relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] },
        );
        c
    }

    #[test]
    fn engine_reaches_fixpoint_on_selection_pushdown() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::cmp_value("a", CompareOp::Gt, 2))
            .build();
        let engine = RewriteEngine::with_default_rules();
        let outcome = engine.rewrite(&plan, &ctx).unwrap();
        assert!(outcome.changed());
        assert!(!outcome.budget_exhausted);
        assert!(outcome.trace().contains("law-03"));
        assert_eq!(
            evaluate(&outcome.plan, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn engine_is_identity_when_nothing_matches() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1").project(["a"]).build();
        let engine = RewriteEngine::with_default_rules();
        let outcome = engine.rewrite(&plan, &ctx).unwrap();
        assert!(!outcome.changed());
        assert_eq!(outcome.plan, plan);
        assert_eq!(outcome.trace(), "no rewrite rules applied");
    }

    #[test]
    fn engine_chains_multiple_laws() {
        // σ_{a>2}(σ_{c=2}(r1 ÷* r2)) needs Law 15 for the c filter and
        // Law 14 for the a filter.
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2_groups"))
            .select(Predicate::eq_value("c", 2))
            .select(Predicate::cmp_value("a", CompareOp::Gt, 2))
            .build();
        let engine = RewriteEngine::with_default_rules();
        let outcome = engine.rewrite(&plan, &ctx).unwrap();
        let names: Vec<&str> = outcome.applied.iter().map(|a| a.rule.as_str()).collect();
        assert!(names.iter().any(|n| n.starts_with("law-14")));
        assert!(names.iter().any(|n| n.starts_with("law-15")));
        // The root of the rewritten plan is the great divide itself.
        assert!(matches!(outcome.plan, LogicalPlan::GreatDivide { .. }));
        assert_eq!(
            evaluate(&outcome.plan, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn engine_terminates_within_pass_budget() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        // Law 4 has a termination guard; the engine must reach a fixpoint and
        // not exhaust its budget.
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2").select(Predicate::eq_value("b", 1)))
            .build();
        let engine = RewriteEngine::with_default_rules().with_max_passes(4);
        let outcome = engine.rewrite(&plan, &ctx).unwrap();
        assert!(!outcome.budget_exhausted);
        assert_eq!(
            evaluate(&outcome.plan, &catalog).unwrap(),
            evaluate(&plan, &catalog).unwrap()
        );
    }

    #[test]
    fn applied_rules_record_pass_and_node_counts() {
        let catalog = catalog();
        let ctx = RewriteContext::with_catalog(&catalog);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("a", 2))
            .build();
        let outcome = RewriteEngine::with_default_rules()
            .rewrite(&plan, &ctx)
            .unwrap();
        let first = &outcome.applied[0];
        assert!(first.pass >= 1);
        assert!(first.nodes_before >= 3);
        assert!(first.nodes_after >= 3);
        assert!(first.reference.contains("Law"));
    }

    #[test]
    fn count_applications_tallies_by_rule_name() {
        let mk = |rule: &str| AppliedRule {
            rule: rule.to_string(),
            reference: "Law X".to_string(),
            pass: 1,
            nodes_before: 3,
            nodes_after: 3,
        };
        let applied = [mk("law-15"), mk("law-14"), mk("law-15")];
        let counts = count_applications(&applied);
        assert_eq!(counts.get("law-15"), Some(&2));
        assert_eq!(counts.get("law-14"), Some(&1));
        assert_eq!(counts.len(), 2);
    }
}
