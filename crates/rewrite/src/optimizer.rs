//! A small cost-based optimizer on top of the rewrite rules.
//!
//! The paper positions its laws as transformation rules that an optimizer
//! applies "together with heuristics and/or cost estimations" (Section 1.1).
//! [`Optimizer`] supplies the missing half: a cardinality estimator and a cost
//! model whose currency is the number of intermediate tuples an execution
//! would touch — the same quantity the Leinders & Van den Bussche result is
//! about — plus a greedy search that explores the plans reachable through the
//! rule set and keeps the cheapest one.

use crate::context::RewriteContext;
use crate::engine::AppliedRule;
use crate::rule::RuleSet;
use crate::Result;
use div_expr::{LogicalPlan, Transformed};
use std::collections::BTreeSet;

/// Estimated execution cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated number of tuples flowing out of every operator, summed.
    pub total_tuples: f64,
    /// Estimated cardinality of the final result.
    pub output_cardinality: f64,
}

impl CostEstimate {
    /// Total cost value used for plan comparison.
    pub fn value(&self) -> f64 {
        self.total_tuples
    }
}

/// The result of an optimization run.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// The selected plan.
    pub plan: LogicalPlan,
    /// Estimated cost of the selected plan.
    pub cost: CostEstimate,
    /// Estimated cost of the original plan.
    pub original_cost: CostEstimate,
    /// Number of alternative plans that were costed.
    pub alternatives_considered: usize,
    /// The rule application chosen in each greedy pass, in order: the law
    /// whose rewrite produced the cheapest plan of that pass. Empty when the
    /// original plan was already the cheapest.
    pub applied: Vec<AppliedRule>,
}

impl OptimizedPlan {
    /// Estimated speed-up factor of the chosen plan over the original.
    pub fn estimated_speedup(&self) -> f64 {
        if self.cost.value() <= f64::EPSILON {
            return 1.0;
        }
        self.original_cost.value() / self.cost.value()
    }

    /// `true` when the optimizer replaced the original plan.
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }

    /// A compact human-readable trace of the rules the greedy search applied.
    pub fn trace(&self) -> String {
        if self.applied.is_empty() {
            return "no rewrite rules applied".to_string();
        }
        self.applied
            .iter()
            .map(|a| format!("pass {}: {} ({})", a.pass, a.rule, a.reference))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Cardinality-estimating cost model over logical plans.
///
/// Base-table cardinalities come from the catalog when available and default
/// to [`CostModel::DEFAULT_TABLE_CARDINALITY`] otherwise. Selectivities follow
/// the classic System-R style constants; the division estimates assume the
/// number of dividend groups shrinks multiplicatively with the divisor size.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Selectivity assumed for an equality predicate.
    pub equality_selectivity: f64,
    /// Selectivity assumed for a range predicate.
    pub range_selectivity: f64,
    /// Fraction of dividend groups assumed to survive a division per divisor
    /// tuple.
    pub division_survival_per_divisor_tuple: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            equality_selectivity: 0.1,
            range_selectivity: 0.33,
            division_survival_per_divisor_tuple: 0.5,
        }
    }
}

impl CostModel {
    /// Cardinality assumed for base tables that are not in the catalog.
    pub const DEFAULT_TABLE_CARDINALITY: f64 = 1_000.0;

    /// Estimate the output cardinality of `plan`.
    pub fn cardinality(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> f64 {
        match plan {
            LogicalPlan::Scan { table } => ctx
                .catalog()
                .and_then(|c| c.table(table).ok())
                .map(|r| r.len() as f64)
                .unwrap_or(Self::DEFAULT_TABLE_CARDINALITY),
            LogicalPlan::Values { relation } => relation.len() as f64,
            LogicalPlan::Select { input, predicate } => {
                let selectivity = self.predicate_selectivity(predicate);
                self.cardinality(input, ctx) * selectivity
            }
            LogicalPlan::Project { input, .. } | LogicalPlan::Rename { input, .. } => {
                self.cardinality(input, ctx)
            }
            LogicalPlan::Union { left, right } => {
                self.cardinality(left, ctx) + self.cardinality(right, ctx)
            }
            LogicalPlan::Intersect { left, right } => {
                self.cardinality(left, ctx)
                    .min(self.cardinality(right, ctx))
                    * 0.5
            }
            LogicalPlan::Difference { left, right } => {
                let l = self.cardinality(left, ctx);
                let r = self.cardinality(right, ctx);
                (l - r * 0.5).max(l * 0.1)
            }
            LogicalPlan::Product { left, right } => {
                self.cardinality(left, ctx) * self.cardinality(right, ctx)
            }
            LogicalPlan::ThetaJoin {
                left,
                right,
                predicate,
            } => {
                self.cardinality(left, ctx)
                    * self.cardinality(right, ctx)
                    * self.predicate_selectivity(predicate)
            }
            LogicalPlan::NaturalJoin { left, right } => {
                // Assume a key/foreign-key style join.
                self.cardinality(left, ctx)
                    .max(self.cardinality(right, ctx))
            }
            LogicalPlan::SemiJoin { left, right } | LogicalPlan::AntiSemiJoin { left, right } => {
                let _ = right;
                self.cardinality(left, ctx) * 0.5
            }
            LogicalPlan::SmallDivide { dividend, divisor } => {
                let groups = (self.cardinality(dividend, ctx) / 4.0).max(1.0);
                let divisor_card = self.cardinality(divisor, ctx).max(1.0);
                (groups
                    * self
                        .division_survival_per_divisor_tuple
                        .powf(divisor_card.log2().max(1.0)))
                .max(1.0)
            }
            LogicalPlan::GreatDivide { dividend, divisor } => {
                let groups = (self.cardinality(dividend, ctx) / 4.0).max(1.0);
                let divisor_groups = (self.cardinality(divisor, ctx) / 4.0).max(1.0);
                (groups * divisor_groups * 0.1).max(1.0)
            }
            LogicalPlan::GroupAggregate { input, .. } => {
                (self.cardinality(input, ctx) / 4.0).max(1.0)
            }
        }
    }

    /// Estimate the total cost of `plan`.
    ///
    /// Each operator pays for the tuples it consumes (weighted by how much
    /// work the operator does per input tuple — a division or join groups and
    /// probes, a selection merely tests a predicate) plus the tuples it
    /// produces. The total is the sum over all operators, which makes the
    /// volume of intermediate data the dominant term, exactly the quantity the
    /// paper argues about.
    pub fn cost(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> CostEstimate {
        let mut total = 0.0;
        plan.visit(&mut |node| {
            let input_tuples: f64 = node
                .children()
                .iter()
                .map(|child| self.cardinality(child, ctx))
                .sum();
            total += Self::per_input_weight(node) * input_tuples + self.cardinality(node, ctx);
        });
        CostEstimate {
            total_tuples: total,
            output_cardinality: self.cardinality(plan, ctx),
        }
    }

    /// Relative per-input-tuple processing weight of each operator kind.
    fn per_input_weight(plan: &LogicalPlan) -> f64 {
        match plan {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => 0.0,
            LogicalPlan::Select { .. }
            | LogicalPlan::Project { .. }
            | LogicalPlan::Rename { .. } => 1.0,
            LogicalPlan::Union { .. }
            | LogicalPlan::Intersect { .. }
            | LogicalPlan::Difference { .. }
            | LogicalPlan::Product { .. } => 1.0,
            LogicalPlan::ThetaJoin { .. }
            | LogicalPlan::NaturalJoin { .. }
            | LogicalPlan::SemiJoin { .. }
            | LogicalPlan::AntiSemiJoin { .. } => 2.0,
            LogicalPlan::SmallDivide { .. }
            | LogicalPlan::GreatDivide { .. }
            | LogicalPlan::GroupAggregate { .. } => 3.0,
        }
    }

    fn predicate_selectivity(&self, predicate: &div_algebra::Predicate) -> f64 {
        use div_algebra::{CompareOp, Predicate};
        match predicate {
            Predicate::True => 1.0,
            Predicate::False => 0.0,
            Predicate::CompareValue { op, .. }
            | Predicate::CompareAttributes { op, .. }
            | Predicate::CompareParameter { op, .. } => match op {
                CompareOp::Eq => self.equality_selectivity,
                CompareOp::NotEq => 1.0 - self.equality_selectivity,
                _ => self.range_selectivity,
            },
            Predicate::And(l, r) => self.predicate_selectivity(l) * self.predicate_selectivity(r),
            Predicate::Or(l, r) => {
                (self.predicate_selectivity(l) + self.predicate_selectivity(r)).min(1.0)
            }
            Predicate::Not(inner) => 1.0 - self.predicate_selectivity(inner),
        }
    }
}

/// Greedy cost-based optimizer: repeatedly applies the single rule application
/// that most decreases the estimated cost, until no application improves it.
#[derive(Debug, Clone)]
pub struct Optimizer {
    rules: RuleSet,
    cost_model: CostModel,
    max_steps: usize,
}

impl Default for Optimizer {
    fn default() -> Self {
        Optimizer {
            rules: RuleSet::default_rules(),
            cost_model: CostModel::default(),
            max_steps: 16,
        }
    }
}

impl Optimizer {
    /// Optimizer with the default rules and cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the rule set.
    pub fn with_rules(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Replace the cost model.
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Optimize `plan`.
    pub fn optimize(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<OptimizedPlan> {
        let original_cost = self.cost_model.cost(plan, ctx);
        let mut best = plan.clone();
        let mut best_cost = original_cost;
        let mut considered = 0usize;
        let mut applied = Vec::new();
        let mut seen: BTreeSet<String> = BTreeSet::new();
        seen.insert(format!("{best}"));

        for pass in 1..=self.max_steps {
            let mut improved = false;
            let mut round_best: Option<(Neighbour, CostEstimate)> = None;

            for candidate in self.neighbours(&best, ctx)? {
                let key = format!("{}", candidate.plan);
                if !seen.insert(key) {
                    continue;
                }
                considered += 1;
                let cost = self.cost_model.cost(&candidate.plan, ctx);
                let better_than_round = round_best
                    .as_ref()
                    .map(|(_, c)| cost.value() < c.value())
                    .unwrap_or(true);
                if better_than_round {
                    round_best = Some((candidate, cost));
                }
            }

            if let Some((candidate, cost)) = round_best {
                if cost.value() < best_cost.value() {
                    applied.push(AppliedRule {
                        rule: candidate.rule,
                        reference: candidate.reference,
                        pass,
                        nodes_before: best.node_count(),
                        nodes_after: candidate.plan.node_count(),
                    });
                    best = candidate.plan;
                    best_cost = cost;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }

        Ok(OptimizedPlan {
            plan: best,
            cost: best_cost,
            original_cost,
            alternatives_considered: considered,
            applied,
        })
    }

    /// All plans reachable from `plan` by one application of one rule at one
    /// node, each labeled with the rule that produced it.
    fn neighbours(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Vec<Neighbour>> {
        let mut out = Vec::new();
        for rule in self.rules.rules() {
            // Apply the rule at each node independently: enumerate by walking
            // the tree and rewriting only the first match at or below each
            // node position.
            let mut fired = false;
            let transformed = plan.transform_up(&mut |node| {
                if fired {
                    return Ok(Transformed::No(node));
                }
                match rule.apply(&node, ctx)? {
                    Some(new_node) => {
                        fired = true;
                        Ok(Transformed::Yes(new_node))
                    }
                    None => Ok(Transformed::No(node)),
                }
            })?;
            if fired {
                out.push(Neighbour {
                    plan: transformed.into_plan(),
                    rule: rule.name().to_string(),
                    reference: rule.reference().to_string(),
                });
            }
        }
        Ok(out)
    }
}

/// A candidate plan produced by one rule application during the greedy search.
struct Neighbour {
    plan: LogicalPlan,
    rule: String,
    reference: String,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::RewriteContext;
    use div_algebra::{relation, CompareOp, Predicate};
    use div_expr::{evaluate, Catalog, PlanBuilder};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mut rows = Vec::new();
        for a in 0..50 {
            for b in 0..4 {
                rows.push(vec![a, b]);
            }
        }
        c.register(
            "r1",
            div_algebra::Relation::from_rows(["a", "b"], rows).unwrap(),
        );
        c.register("r2", relation! { ["b"] => [0], [1], [2], [3] });
        c
    }

    #[test]
    fn cost_model_estimates_scans_from_catalog() {
        let c = catalog();
        let ctx = RewriteContext::with_catalog(&c);
        let model = CostModel::default();
        let scan = PlanBuilder::scan("r1").build();
        assert_eq!(model.cardinality(&scan, &ctx), 200.0);
        let unknown = PlanBuilder::scan("unknown").build();
        assert_eq!(
            model.cardinality(&unknown, &ctx),
            CostModel::DEFAULT_TABLE_CARDINALITY
        );
    }

    #[test]
    fn selection_pushdown_reduces_estimated_cost() {
        let c = catalog();
        let ctx = RewriteContext::with_catalog(&c);
        let model = CostModel::default();
        let unpushed = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("a", 3))
            .build();
        let pushed = PlanBuilder::scan("r1")
            .select(Predicate::eq_value("a", 3))
            .divide(PlanBuilder::scan("r2"))
            .build();
        assert!(model.cost(&pushed, &ctx).value() < model.cost(&unpushed, &ctx).value());
    }

    #[test]
    fn optimizer_chooses_the_pushed_down_plan() {
        let c = catalog();
        let ctx = RewriteContext::with_catalog(&c);
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::cmp_value("a", CompareOp::Lt, 5))
            .build();
        let optimized = Optimizer::new().optimize(&plan, &ctx).unwrap();
        assert!(optimized.alternatives_considered >= 1);
        assert!(optimized.estimated_speedup() >= 1.0);
        assert!(matches!(optimized.plan, LogicalPlan::SmallDivide { .. }));
        // The greedy search reports which law each pass applied.
        assert!(optimized.changed());
        assert!(
            optimized.applied.iter().any(|a| a.rule.contains("law-03")),
            "expected the Law 3 pushdown in the trace, got: {}",
            optimized.trace()
        );
        assert_eq!(optimized.applied[0].pass, 1);
        assert_eq!(
            evaluate(&optimized.plan, &c).unwrap(),
            evaluate(&plan, &c).unwrap()
        );
    }

    #[test]
    fn optimizer_keeps_original_when_no_rule_helps() {
        let c = catalog();
        let ctx = RewriteContext::with_catalog(&c);
        let plan = PlanBuilder::scan("r1").project(["a"]).build();
        let optimized = Optimizer::new().optimize(&plan, &ctx).unwrap();
        assert_eq!(optimized.plan, plan);
        assert_eq!(optimized.estimated_speedup(), 1.0);
        assert!(!optimized.changed());
        assert_eq!(optimized.trace(), "no rewrite rules applied");
    }

    #[test]
    fn custom_cost_model_is_respected() {
        let c = catalog();
        let ctx = RewriteContext::with_catalog(&c);
        let model = CostModel {
            equality_selectivity: 0.5,
            ..CostModel::default()
        };
        let optimizer = Optimizer::new().with_cost_model(model);
        assert_eq!(optimizer.cost_model().equality_selectivity, 0.5);
        let plan = PlanBuilder::scan("r1")
            .select(Predicate::eq_value("a", 1))
            .build();
        let est = optimizer.cost_model().cardinality(&plan, &ctx);
        assert_eq!(est, 100.0);
    }
}
