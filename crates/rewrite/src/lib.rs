//! # div-rewrite
//!
//! The contribution of Rantzau & Mangold (ICDE 2006) as executable code: the
//! seventeen algebraic laws for rewriting queries that contain the small
//! divide (`÷`) or great divide (`÷*`) operator, together with
//!
//! * the side conditions the laws need (`c1`, `c2`, disjointness, foreign-key
//!   and uniqueness preconditions) in [`preconditions`],
//! * the three theorems of Section 5 / Appendix B in [`theorems`],
//! * the worked rewrite derivations of Examples 1–4 in [`laws`],
//! * a heuristic, fixpoint [`engine::RewriteEngine`] that applies the laws as
//!   transformation rules the way a rule-based optimizer would, and
//! * a simple cost-based [`optimizer::Optimizer`] that uses estimated
//!   intermediate-result sizes (the quantity the paper cares about) to decide
//!   which of the equivalent plans to keep.
//!
//! Every law is implemented as a [`rule::RewriteRule`] over the
//! [`div_expr::LogicalPlan`] IR, in the direction the paper motivates as
//! useful for an RDBMS. All rules are pure plan-to-plan functions; the data
//! dependent preconditions (e.g. Law 2's `c1`/`c2`, Law 7's disjointness, the
//! cardinality cases of Laws 11/12) are checked through the
//! [`context::RewriteContext`], which can consult catalog metadata and — when
//! allowed — the base data itself.
//!
//! ```
//! use div_algebra::{relation, Predicate};
//! use div_expr::{Catalog, PlanBuilder, evaluate};
//! use div_rewrite::engine::RewriteEngine;
//! use div_rewrite::context::RewriteContext;
//!
//! let mut catalog = Catalog::new();
//! catalog.register("r1", relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1] });
//! catalog.register("r2", relation! { ["b"] => [1], [2] });
//!
//! // σ_{a=1}(r1 ÷ r2): the engine pushes the selection below the divide (Law 3).
//! let plan = PlanBuilder::scan("r1")
//!     .divide(PlanBuilder::scan("r2"))
//!     .select(Predicate::eq_value("a", 1))
//!     .build();
//! let engine = RewriteEngine::with_default_rules();
//! let ctx = RewriteContext::with_catalog(&catalog);
//! let outcome = engine.rewrite(&plan, &ctx).unwrap();
//! assert!(outcome.applied.iter().any(|a| a.rule.contains("law-03")));
//! assert_eq!(evaluate(&outcome.plan, &catalog).unwrap(),
//!            evaluate(&plan, &catalog).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod engine;
pub mod laws;
pub mod optimizer;
pub mod preconditions;
pub mod rule;
pub mod theorems;

pub use context::RewriteContext;
pub use engine::{AppliedRule, RewriteEngine, RewriteOutcome};
pub use optimizer::{CostEstimate, OptimizedPlan, Optimizer};
pub use rule::{RewriteRule, RuleSet};

/// Convenient result alias used throughout the crate (errors come from the
/// plan layer).
pub type Result<T> = std::result::Result<T, div_expr::ExprError>;
