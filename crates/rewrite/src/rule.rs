//! The rewrite-rule abstraction and the default rule set.

use crate::context::RewriteContext;
use crate::laws;
use crate::Result;
use div_expr::LogicalPlan;
use std::fmt;
use std::sync::Arc;

/// A single transformation rule derived from one of the paper's laws.
///
/// A rule is asked to rewrite one plan *node* (it can inspect the node's whole
/// subtree). It returns `Ok(Some(new_plan))` when it applies, `Ok(None)` when
/// it does not; it must only return a plan that is equivalent to the input on
/// every database satisfying the rule's preconditions — the property tests in
/// `tests/law_properties.rs` enforce exactly this.
pub trait RewriteRule: Send + Sync {
    /// Stable machine-readable name, e.g. `"law-03-selection-pushdown"`.
    fn name(&self) -> &'static str;

    /// Where in the paper the rule comes from, e.g. `"Law 3, Section 5.1.2"`.
    fn reference(&self) -> &'static str;

    /// Try to apply the rule at `plan`'s root node.
    fn apply(&self, plan: &LogicalPlan, ctx: &RewriteContext<'_>) -> Result<Option<LogicalPlan>>;
}

impl fmt::Debug for dyn RewriteRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RewriteRule({})", self.name())
    }
}

/// An ordered collection of rules.
#[derive(Clone, Default)]
pub struct RuleSet {
    rules: Vec<Arc<dyn RewriteRule>>,
}

impl RuleSet {
    /// An empty rule set.
    pub fn empty() -> Self {
        RuleSet { rules: Vec::new() }
    }

    /// The full default rule set: every law of the paper in its useful
    /// direction, ordered so that cheap, always-beneficial rules (selection
    /// push-down, divide-elimination) run before the structural ones.
    pub fn default_rules() -> Self {
        let mut set = RuleSet::empty();
        // Selection push-down / replication (Laws 3, 4, 14, 15, 16).
        set.add(laws::small_divide_selection::Law3SelectionPushdown);
        set.add(laws::small_divide_selection::Law4DivisorSelectionReplication);
        set.add(laws::great_divide::Law14SelectionPushdownQuotient);
        set.add(laws::great_divide::Law15SelectionPushdownGroup);
        set.add(laws::great_divide::Law16DivisorSelectionReplication);
        // Division elimination via grouping metadata (Laws 11, 12).
        set.add(laws::small_divide_grouping::Law11SingleTupleGroups);
        set.add(laws::small_divide_grouping::Law12SingleTupleDivisorGroups);
        // Skip work entirely (Law 7).
        set.add(laws::small_divide_set_ops::Law7DisjointDifference);
        // Structure-changing rules (Laws 1, 2, 5, 6, 8, 9, 13, 17).
        set.add(laws::small_divide_union::Law1DivisorUnionToPipeline);
        set.add(laws::small_divide_union::Law2DividendUnionSplit);
        set.add(laws::small_divide_set_ops::Law5IntersectionSplit);
        set.add(laws::small_divide_set_ops::Law6DifferenceSplit);
        set.add(laws::small_divide_product::Law8ProductPushthrough);
        set.add(laws::small_divide_product::Law9ProductElimination);
        set.add(laws::small_divide_product::Example2CommonFactorElimination);
        set.add(laws::great_divide::Law13DivisorUnionSplit);
        set.add(laws::great_divide::Law17ProductPushthrough);
        // Join interaction (Law 10, Example 4).
        set.add(laws::small_divide_join::Law10SemiJoinCommute);
        set.add(laws::great_divide::Example4JoinPushIn);
        set
    }

    /// Add a rule to the end of the set.
    pub fn add(&mut self, rule: impl RewriteRule + 'static) -> &mut Self {
        self.rules.push(Arc::new(rule));
        self
    }

    /// Iterate over the rules in order.
    pub fn rules(&self) -> impl Iterator<Item = &Arc<dyn RewriteRule>> + '_ {
        self.rules.iter()
    }

    /// Number of rules in the set.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the set holds no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Find a rule by its machine-readable name.
    pub fn find(&self, name: &str) -> Option<&Arc<dyn RewriteRule>> {
        self.rules.iter().find(|r| r.name() == name)
    }
}

impl fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.rules.iter().map(|r| r.name()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rule_set_contains_all_seventeen_laws() {
        let set = RuleSet::default_rules();
        assert!(
            set.len() >= 17,
            "expected at least 17 rules, got {}",
            set.len()
        );
        for law in [
            "law-01", "law-02", "law-03", "law-04", "law-05", "law-06", "law-07", "law-08",
            "law-09", "law-10", "law-11", "law-12", "law-13", "law-14", "law-15", "law-16",
            "law-17",
        ] {
            assert!(
                set.rules().any(|r| r.name().starts_with(law)),
                "missing rule for {law}"
            );
        }
    }

    #[test]
    fn rules_have_paper_references() {
        for rule in RuleSet::default_rules().rules() {
            assert!(
                rule.reference().contains("Law") || rule.reference().contains("Example"),
                "rule {} has no paper reference",
                rule.name()
            );
        }
    }

    #[test]
    fn find_locates_rules_by_name() {
        let set = RuleSet::default_rules();
        assert!(set.find("law-03-selection-pushdown").is_some());
        assert!(set.find("not-a-rule").is_none());
        assert!(!set.is_empty());
        assert!(RuleSet::empty().is_empty());
    }
}
