//! Data-dependent side conditions used by the laws.
//!
//! Section 5.1.1 defines two conditions on a horizontal decomposition of the
//! dividend, `c1` (the weakest precondition of Law 2) and the stricter but
//! cheaper `c2`; Laws 6, 7, 9, 12 and 13 have further conditions on the data or
//! on declared constraints. They are implemented here as plain functions over
//! [`Relation`]s so they can be unit-tested in isolation, used by the rewrite
//! rules through the [`RewriteContext`](crate::context::RewriteContext), and
//! exercised directly by the property tests.

use div_algebra::{AlgebraError, Relation, Tuple};
use std::collections::BTreeSet;

/// Condition `c1(r'1, r''1)` of Section 5.1.1 (the precondition of Law 2).
///
/// For every quotient-candidate value `a` that occurs in *both* partitions,
/// one of the following must hold:
///
/// * the divisor is already contained in the `B`-values of `a`'s group in
///   `r'1`, or
/// * it is contained in the `B`-values of `a`'s group in `r''1`, or
/// * it is *not* contained even in the union of the two groups.
///
/// In other words: no quotient value may need tuples *from both partitions* to
/// cover the divisor (the situation of Figure 5).
pub fn c1(r1_prime: &Relation, r1_double: &Relation, r2: &Relation) -> Result<bool, AlgebraError> {
    let attrs = r1_prime.division_attributes(r2)?;
    let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
    let b_refs: Vec<&str> = attrs.shared.iter().map(String::as_str).collect();
    // The same schema rules must hold for the second partition.
    r1_double.division_attributes(r2)?;

    let divisor: BTreeSet<Tuple> = r2
        .conform_to(&div_algebra::Schema::new(b_refs.iter().copied())?)?
        .tuples()
        .cloned()
        .collect();

    let prime_groups = group_b_sets(r1_prime, &a_refs, &b_refs)?;
    let double_groups = group_b_sets(r1_double, &a_refs, &b_refs)?;

    for (a, prime_b) in &prime_groups {
        let Some(double_b) = double_groups.get(a) else {
            continue; // `a` occurs only in r'1 — c1 quantifies over the intersection.
        };
        let in_prime = divisor.is_subset(prime_b);
        let in_double = divisor.is_subset(double_b);
        let union: BTreeSet<Tuple> = prime_b.union(double_b).cloned().collect();
        let in_union = divisor.is_subset(&union);
        if !(in_prime || in_double || !in_union) {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Condition `c2(r'1, r''1)`: the quotient-candidate prefixes of the two
/// dividend partitions are disjoint, `π_A(r'1) ∩ π_A(r''1) = ∅`.
///
/// The paper notes that `c2 ⇒ c1` and that `c2` is what an RDBMS would check
/// in practice (e.g. for range-partitioned scans); see also
/// `c2_implies_c1` in the tests.
pub fn c2(r1_prime: &Relation, r1_double: &Relation, r2: &Relation) -> Result<bool, AlgebraError> {
    let attrs = r1_prime.division_attributes(r2)?;
    let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
    projections_disjoint(r1_prime, r1_double, &a_refs)
}

/// `π_X(left) ∩ π_X(right) = ∅` — used by Law 7 (`X = A`) and Law 13
/// (`X = C`).
pub fn projections_disjoint(
    left: &Relation,
    right: &Relation,
    attributes: &[&str],
) -> Result<bool, AlgebraError> {
    let l = left.project(attributes)?;
    let r = right.project(attributes)?;
    Ok(l.intersect(&r.conform_to(l.schema())?)?.is_empty())
}

/// Law 6's precondition in its data form: `r''1 ⊆ r'1` (the paper derives the
/// partitions from two selections on the same relation where one predicate
/// implies the other).
pub fn subset_of(smaller: &Relation, larger: &Relation) -> Result<bool, AlgebraError> {
    smaller.is_subset_of(larger)
}

/// Law 9's precondition: `π_{B2}(r2) ⊆ r**1`, where `B2` is the schema of
/// `r**1`.
pub fn law9_projection_contained(
    r_star_star: &Relation,
    r2: &Relation,
) -> Result<bool, AlgebraError> {
    let b2: Vec<&str> = r_star_star.schema().names();
    let projected = r2.project(&b2)?;
    projected.is_subset_of(r_star_star)
}

/// Law 11's structural precondition: every group of the dividend defined by
/// the quotient attributes `A` contains exactly one tuple (which holds by
/// construction when the dividend is `Aγf(X)→B(r0)`).
pub fn quotient_groups_are_singletons(
    dividend: &Relation,
    quotient_attrs: &[&str],
) -> Result<bool, AlgebraError> {
    let projected = dividend.project(quotient_attrs)?;
    Ok(projected.len() == dividend.len())
}

/// Law 12's structural precondition: every divisor-attribute value `B` of the
/// dividend occurs in exactly one tuple (which holds by construction when the
/// dividend is `Bγf(X)→A(r0)`).
pub fn divisor_groups_are_singletons(
    dividend: &Relation,
    shared_attrs: &[&str],
) -> Result<bool, AlgebraError> {
    quotient_groups_are_singletons(dividend, shared_attrs)
}

/// Law 12's referential precondition: `r2.B ⊆ π_B(r1)` — the divisor values
/// form a foreign key into the dividend.
pub fn divisor_references_dividend(
    dividend: &Relation,
    divisor: &Relation,
) -> Result<bool, AlgebraError> {
    let b: Vec<&str> = divisor.schema().names();
    let dividend_b = dividend.project(&b)?;
    divisor.is_subset_of(&dividend_b)
}

fn group_b_sets(
    relation: &Relation,
    a_refs: &[&str],
    b_refs: &[&str],
) -> Result<std::collections::BTreeMap<Tuple, BTreeSet<Tuple>>, AlgebraError> {
    let a_idx = relation.schema().projection_indices(a_refs)?;
    let b_idx = relation.schema().projection_indices(b_refs)?;
    Ok(relation
        .group_by_indices(&a_idx)
        .into_iter()
        .map(|(k, members)| {
            let b_set = members.iter().map(|t| t.project(&b_idx)).collect();
            (k, b_set)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    #[test]
    fn figure_5_violates_c1() {
        // Figure 5: the quotient candidate a=1 needs tuples from both
        // partitions to cover the divisor {1, 4}.
        let r1_prime = relation! { ["a", "b"] => [1, 1], [1, 2], [1, 3] };
        let r1_double = relation! { ["a", "b"] => [1, 2], [1, 4] };
        let r2 = relation! { ["b"] => [1], [4] };
        assert!(!c1(&r1_prime, &r1_double, &r2).unwrap());
        assert!(!c2(&r1_prime, &r1_double, &r2).unwrap());
    }

    #[test]
    fn c1_holds_when_one_partition_covers_the_divisor() {
        let r1_prime = relation! { ["a", "b"] => [1, 1], [1, 4], [1, 2] };
        let r1_double = relation! { ["a", "b"] => [1, 2], [2, 1] };
        let r2 = relation! { ["b"] => [1], [4] };
        assert!(c1(&r1_prime, &r1_double, &r2).unwrap());
        // c2 does not hold (a=1 occurs in both partitions) — c1 is weaker.
        assert!(!c2(&r1_prime, &r1_double, &r2).unwrap());
    }

    #[test]
    fn c1_holds_when_union_still_misses_the_divisor() {
        // a=1 appears in both partitions but even the union lacks b=4, so the
        // third disjunct of c1 applies.
        let r1_prime = relation! { ["a", "b"] => [1, 1] };
        let r1_double = relation! { ["a", "b"] => [1, 2] };
        let r2 = relation! { ["b"] => [1], [4] };
        assert!(c1(&r1_prime, &r1_double, &r2).unwrap());
    }

    #[test]
    fn c2_implies_c1_on_examples() {
        let cases = vec![
            (
                relation! { ["a", "b"] => [1, 1], [1, 3] },
                relation! { ["a", "b"] => [2, 1], [2, 3], [3, 1] },
                relation! { ["b"] => [1], [3] },
            ),
            (
                relation! { ["a", "b"] => [5, 1] },
                relation! { ["a", "b"] => [6, 1], [7, 2] },
                relation! { ["b"] => [1] },
            ),
        ];
        for (p, d, r2) in cases {
            assert!(c2(&p, &d, &r2).unwrap());
            assert!(c1(&p, &d, &r2).unwrap());
        }
    }

    #[test]
    fn law7_disjointness_check() {
        let left = relation! { ["a", "b"] => [1, 1], [2, 1] };
        let right = relation! { ["a", "b"] => [3, 1], [4, 2] };
        assert!(projections_disjoint(&left, &right, &["a"]).unwrap());
        let overlapping = relation! { ["a", "b"] => [2, 2] };
        assert!(!projections_disjoint(&left, &overlapping, &["a"]).unwrap());
    }

    #[test]
    fn law9_containment_check() {
        // Figure 8: r**1 = {1, 2} over b2; π_{b2}(r2) = {1, 2} ⊆ r**1.
        let r_star_star = relation! { ["b2"] => [1], [2] };
        let r2 = relation! { ["b1", "b2"] => [1, 2], [3, 1], [3, 2] };
        assert!(law9_projection_contained(&r_star_star, &r2).unwrap());
        let r2_bad = relation! { ["b1", "b2"] => [1, 9] };
        assert!(!law9_projection_contained(&r_star_star, &r2_bad).unwrap());
    }

    #[test]
    fn law11_and_law12_singleton_checks() {
        // Figure 10(b): groups by a are singletons.
        let r1 = relation! { ["a", "b"] => [1, 6], [2, 4], [3, 8] };
        assert!(quotient_groups_are_singletons(&r1, &["a"]).unwrap());
        // Figure 11(b): groups by b are singletons.
        let r1b = relation! { ["a", "b"] => [6, 1], [1, 2], [6, 3], [3, 4] };
        assert!(divisor_groups_are_singletons(&r1b, &["b"]).unwrap());
        // A non-singleton case.
        let multi = relation! { ["a", "b"] => [1, 1], [1, 2] };
        assert!(!quotient_groups_are_singletons(&multi, &["a"]).unwrap());
    }

    #[test]
    fn law12_foreign_key_check() {
        let r1 = relation! { ["a", "b"] => [6, 1], [1, 2], [6, 3], [3, 4] };
        let r2 = relation! { ["b"] => [1], [3] };
        assert!(divisor_references_dividend(&r1, &r2).unwrap());
        let r2_bad = relation! { ["b"] => [1], [9] };
        assert!(!divisor_references_dividend(&r1, &r2_bad).unwrap());
    }

    #[test]
    fn subset_check() {
        let larger = relation! { ["a", "b"] => [1, 1], [2, 1], [3, 1] };
        let smaller = relation! { ["a", "b"] => [2, 1] };
        assert!(subset_of(&smaller, &larger).unwrap());
        assert!(!subset_of(&larger, &smaller).unwrap());
    }
}
