//! Experiments E1 + E2: special-purpose division algorithms vs the
//! basic-operator simulation, across dividend sizes and divisor sizes.
//!
//! Paper claim (Sections 1, 6; Leinders & Van den Bussche): the simulation
//! materializes quadratic intermediate results and loses to every
//! special-purpose algorithm; among the special-purpose algorithms,
//! hash-division wins on unsorted inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::division_workload;
use div_physical::division::{divide_with, DivisionAlgorithm};
use div_physical::ExecStats;

fn bench_by_dividend_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_E2_division_algorithms/by_groups");
    for groups in [100i64, 400, 1_600] {
        let (dividend, divisor) = division_workload(groups, 16, 3);
        for algorithm in DivisionAlgorithm::ALL {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), groups),
                &groups,
                |b, _| {
                    b.iter(|| {
                        let mut stats = ExecStats::default();
                        divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_by_divisor_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_E2_division_algorithms/by_divisor");
    for items in [4i64, 16, 64] {
        let (dividend, divisor) = division_workload(300, items, 3);
        for algorithm in DivisionAlgorithm::ALL {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), items), &items, |b, _| {
                b.iter(|| {
                    let mut stats = ExecStats::default();
                    divide_with(&dividend, &divisor, algorithm, &mut stats).unwrap()
                })
            });
        }
    }
    group.finish();
}

/// Print the intermediate-result table the paper's argument is about (runs
/// once; visible with `cargo bench -- --nocapture`-style output since it is
/// plain stdout before the timing loops).
fn report_intermediate_sizes() {
    println!("\n# E1: largest intermediate result (tuples), dividend groups x divisor 16");
    println!("groups  simulated  hash-division");
    for groups in [100i64, 400, 1_600] {
        let (dividend, divisor) = division_workload(groups, 16, 3);
        let mut sim = ExecStats::default();
        divide_with(
            &dividend,
            &divisor,
            DivisionAlgorithm::SimulatedBasicOperators,
            &mut sim,
        )
        .unwrap();
        let mut hash = ExecStats::default();
        divide_with(
            &dividend,
            &divisor,
            DivisionAlgorithm::HashDivision,
            &mut hash,
        )
        .unwrap();
        println!(
            "{groups:>6}  {:>9}  {:>13}",
            sim.max_intermediate, hash.max_intermediate
        );
    }
}

fn benches(c: &mut Criterion) {
    report_intermediate_sizes();
    bench_by_dividend_size(c);
    bench_by_divisor_size(c);
}

criterion_group!(division_algorithms, benches);
criterion_main!(division_algorithms);
