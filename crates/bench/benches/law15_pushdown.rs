//! Experiment E10a (Laws 14/15/16): pushing selections below the great divide
//! across a selectivity sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::great_divide_workload;
use division::prelude::*;

fn benches(c: &mut Criterion) {
    let (dividend, divisor) = great_divide_workload(800, 20, 48, 6);
    let mut group = c.benchmark_group("E10_law15_selection_pushdown");
    // Selectivity sweep on the divisor group attribute c (Law 15).
    for keep in [4i64, 16, 48] {
        let p = Predicate::cmp_value("c", CompareOp::Lt, keep);
        let unpushed = || dividend.great_divide(&divisor).unwrap().select(&p).unwrap();
        let pushed = || dividend.great_divide(&divisor.select(&p).unwrap()).unwrap();
        assert_eq!(unpushed(), pushed());
        group.bench_with_input(BenchmarkId::new("filter-above", keep), &keep, |b, _| {
            b.iter(unpushed)
        });
        group.bench_with_input(BenchmarkId::new("law15-pushed", keep), &keep, |b, _| {
            b.iter(pushed)
        });
    }
    // Law 14: filter on the quotient attribute a.
    for keep in [50i64, 400] {
        let p = Predicate::cmp_value("a", CompareOp::Lt, keep);
        let unpushed = || dividend.great_divide(&divisor).unwrap().select(&p).unwrap();
        let pushed = || dividend.select(&p).unwrap().great_divide(&divisor).unwrap();
        assert_eq!(unpushed(), pushed());
        group.bench_with_input(
            BenchmarkId::new("law14-filter-above", keep),
            &keep,
            |b, _| b.iter(unpushed),
        );
        group.bench_with_input(BenchmarkId::new("law14-pushed", keep), &keep, |b, _| {
            b.iter(pushed)
        });
    }
    group.finish();
}

criterion_group!(law15, benches);
criterion_main!(law15);
