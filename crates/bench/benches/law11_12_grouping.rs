//! Experiment E8 (Laws 11/12): when the dividend is an aggregation result,
//! the division degenerates into a semi-join plus projection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use division::prelude::*;

/// r1 = aγsum(x)→b(r0) — one tuple per quotient group (Law 11 shape).
fn workload(groups: i64) -> (Relation, Relation) {
    let mut rows = Vec::new();
    for a in 0..groups {
        for x in 0..4i64 {
            rows.push(vec![a, x + a % 7]);
        }
    }
    let r0 = Relation::from_rows(["a", "x"], rows).unwrap();
    let r1 = r0
        .group_aggregate(&["a"], &[AggregateCall::sum("x", "b")])
        .unwrap();
    // A single-tuple divisor hitting one of the aggregate values.
    let hit = r1.tuples().next().unwrap().values()[1].clone();
    let r2 = Relation::from_rows(["b"], [vec![hit]]).unwrap();
    (r1, r2)
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("E8_law11_12_grouping");
    for groups in [1_000i64, 10_000] {
        let (r1, r2) = workload(groups);
        let divide = r1.divide(&r2).unwrap();
        let by_law = r1.semi_join(&r2).unwrap().project(&["a"]).unwrap();
        assert_eq!(divide, by_law);
        group.bench_with_input(BenchmarkId::new("small-divide", groups), &groups, |b, _| {
            b.iter(|| r1.divide(&r2).unwrap())
        });
        group.bench_with_input(
            BenchmarkId::new("law11-semijoin-project", groups),
            &groups,
            |b, _| b.iter(|| r1.semi_join(&r2).unwrap().project(&["a"]).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(law11_12, benches);
criterion_main!(law11_12);
