//! Experiment E4 (Law 2 + condition c2): degree-n parallel division of a
//! dividend partitioned on the quotient attributes, vs the sequential run.
//!
//! Paper claim (Section 5.1.1): with disjoint partitions an RDBMS "can
//! parallelize a query execution with degree 2" (and higher degrees with more
//! partitions).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::division_workload;
use div_physical::division::{divide_with, DivisionAlgorithm};
use div_physical::parallel::parallel_divide;
use div_physical::ExecStats;

fn benches(c: &mut Criterion) {
    let (dividend, divisor) = division_workload(4_000, 24, 3);
    let sequential = {
        let mut stats = ExecStats::default();
        divide_with(
            &dividend,
            &divisor,
            DivisionAlgorithm::HashDivision,
            &mut stats,
        )
        .unwrap()
    };

    let mut group = c.benchmark_group("E4_law02_partition_parallel");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut stats = ExecStats::default();
            divide_with(
                &dividend,
                &divisor,
                DivisionAlgorithm::HashDivision,
                &mut stats,
            )
            .unwrap()
        })
    });
    for workers in [2usize, 4, 8] {
        // Sanity: Law 2 under c2 preserves the quotient.
        let (parallel_result, _) = parallel_divide(
            &dividend,
            &divisor,
            DivisionAlgorithm::HashDivision,
            workers,
        )
        .unwrap();
        assert_eq!(parallel_result, sequential);
        group.bench_with_input(
            BenchmarkId::new("law2-parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    parallel_divide(
                        &dividend,
                        &divisor,
                        DivisionAlgorithm::HashDivision,
                        workers,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(law02, benches);
criterion_main!(law02);
