//! Cost of the observability layer: traced vs untraced execution.
//!
//! The claim under test (ISSUE 6 / `div_physical::trace`): attribution —
//! the per-operator span tree with row, probe and resident counters —
//! is always on and effectively free (plain integer bumps on state the
//! executors already touch), while *wall-clock timing* reads two
//! monotonic clocks per batch per operator and is therefore gated behind
//! `PlannerConfig::tracing`. With tracing off, a drain must cost the
//! same as it did before the span tree existed; with tracing on, the
//! overhead should stay in the low single-digit percent range at
//! realistic batch sizes.
//!
//! Benchmarks (every `*/untraced/*` id pairs with a `*/traced/*` id over
//! the identical plan and catalog):
//!
//! * `drain` — Q2-style divide (supplies ÷ blue parts) drained to
//!   completion through the streaming executor, tracing off vs on. The
//!   divide exercises every counter class: scan rows, probe counts, and
//!   blocking build state.
//!
//! `scripts/bench_snapshot.sh observability` records this group's
//! medians as `BENCH_observability.json` — the recorded tracing-overhead
//! datum of the repo's perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_algebra::Predicate;
use div_bench::suppliers_parts_catalog;
use div_expr::{Catalog, PlanBuilder};
use div_physical::{plan_query, PhysicalPlan, PlannerConfig, StreamExecutor};

/// Dividend widths (supplier counts) the sweep covers.
const SCALES: [usize; 2] = [2_000, 8_000];

fn catalog_for(suppliers: usize) -> Catalog {
    suppliers_parts_catalog(suppliers, 50, 0.5)
}

/// Q2: supplies ÷ blue parts.
fn divide_plan() -> PhysicalPlan {
    let logical = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::eq_value("color", "blue"))
                .project(["p#"]),
        )
        .build();
    plan_query(&logical, &PlannerConfig::default()).unwrap()
}

fn untraced_config() -> PlannerConfig {
    PlannerConfig::default().batch_size(1024)
}

fn traced_config() -> PlannerConfig {
    untraced_config().tracing(true)
}

fn drain_rows(plan: &PhysicalPlan, catalog: &Catalog, config: &PlannerConfig) -> usize {
    let mut stream = StreamExecutor::new(plan, catalog, config).unwrap();
    let mut rows = 0;
    while let Some(batch) = stream.next_batch().unwrap() {
        rows += batch.num_rows();
    }
    rows
}

fn report_span_profile() {
    let catalog = catalog_for(SCALES[SCALES.len() - 1]);
    let plan = divide_plan();
    let mut stream = StreamExecutor::new(&plan, &catalog, &traced_config()).unwrap();
    while stream.next_batch().unwrap().is_some() {}
    let stats = stream.finish();
    let timed: u64 = stats.operators.iter().map(|op| op.total_time_ns()).sum();
    println!(
        "span profile (divide, {} suppliers): {} operators, {} probes, {} ns attributed",
        SCALES[SCALES.len() - 1],
        stats.operators.len(),
        stats.probes,
        timed,
    );
}

fn bench_observability(c: &mut Criterion) {
    println!(
        "host parallelism: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    report_span_profile();

    let mut group = c.benchmark_group("observability");
    for scale in SCALES {
        let catalog = catalog_for(scale);
        let plan = divide_plan();
        group.bench_with_input(BenchmarkId::new("drain/untraced", scale), &scale, |b, _| {
            b.iter(|| drain_rows(&plan, &catalog, &untraced_config()))
        });
        group.bench_with_input(BenchmarkId::new("drain/traced", scale), &scale, |b, _| {
            b.iter(|| drain_rows(&plan, &catalog, &traced_config()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
