//! Experiment E7 (Example 3): the multi-step rewrite that removes the
//! theta-join from the dividend of `(r*1 ⋈_{b1<b2} r**1) ÷ r2`.
//!
//! Paper claim (Section 5.1.6): the rewritten plan avoids the join between
//! r*1 and r**1 entirely, which pays off when r*1 is large and no indexes
//! support the join.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_rewrite::laws::examples::example3_derivation;
use div_rewrite::RewriteContext;
use division::prelude::*;

fn catalog(outer: i64) -> Catalog {
    let mut c = Catalog::new();
    let mut rows = Vec::new();
    for a in 0..outer {
        for b1 in 0..10i64 {
            if (a + b1) % 3 != 0 {
                rows.push(vec![a, b1]);
            }
        }
    }
    c.register("r_star", Relation::from_rows(["a", "b1"], rows).unwrap());
    c.register(
        "r_star_star",
        Relation::from_rows(["b2"], (0..12i64).map(|b2| vec![b2])).unwrap(),
    );
    c.register(
        "r2",
        Relation::from_rows(["b1", "b2"], (0..6i64).map(|i| vec![i, (i * 2) % 12])).unwrap(),
    );
    c
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_example3_join_elimination");
    for outer in [200i64, 800] {
        let catalog = catalog(outer);
        let ctx = RewriteContext::with_catalog(&catalog);
        let steps = example3_derivation(
            &PlanBuilder::scan("r_star").build(),
            &PlanBuilder::scan("r_star_star").build(),
            &PlanBuilder::scan("r2").build(),
            &ctx,
        )
        .unwrap();
        let original = steps.first().unwrap().plan.clone();
        let rewritten = steps.last().unwrap().plan.clone();
        assert_eq!(
            evaluate(&original, &catalog).unwrap(),
            evaluate(&rewritten, &catalog).unwrap()
        );
        group.bench_with_input(
            BenchmarkId::new("original-with-join", outer),
            &outer,
            |b, _| b.iter(|| evaluate(&original, &catalog).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("example3-rewritten", outer),
            &outer,
            |b, _| b.iter(|| evaluate(&rewritten, &catalog).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(example3, benches);
criterion_main!(example3);
