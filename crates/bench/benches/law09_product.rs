//! Experiment E6 (Laws 8/9, Example 2): dividing a Cartesian-product dividend
//! directly vs pushing the division through the product (Law 8) or
//! eliminating the product altogether (Law 9).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use division::prelude::*;

/// r*1(a, b1), r**1(b2), r2(b1, b2) with π_{b2}(r2) ⊆ r**1 (Figure 8 scaled).
fn workload(outer: i64, factor: i64) -> (Relation, Relation, Relation) {
    let mut r_star_rows = Vec::new();
    for a in 0..outer {
        for b1 in 0..8i64 {
            if (a + b1) % 3 != 0 {
                r_star_rows.push(vec![a, b1]);
            }
        }
    }
    let r_star = Relation::from_rows(["a", "b1"], r_star_rows).unwrap();
    let r_star_star = Relation::from_rows(["b2"], (0..factor).map(|b2| vec![b2])).unwrap();
    let r2 = Relation::from_rows(
        ["b1", "b2"],
        (0..4i64).flat_map(|b1| (0..factor).map(move |b2| vec![b1 * 2, b2])),
    )
    .unwrap();
    (r_star, r_star_star, r2)
}

fn direct(r_star: &Relation, r_star_star: &Relation, r2: &Relation) -> Relation {
    r_star.product(r_star_star).unwrap().divide(r2).unwrap()
}

fn law8(r_star: &Relation, r_star_star: &Relation, r2: &Relation) -> Relation {
    // Law 8 applies after swapping the roles: here the divisor spans both
    // factors, so we use Law 9's elimination instead for the rewritten form;
    // Law 8 is measured on the divisor-in-one-factor variant below.
    let _ = r_star_star;
    r_star.divide(&r2.project(&["b1"]).unwrap()).unwrap()
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_law09_product_elimination");
    for (outer, factor) in [(200i64, 10i64), (400, 20), (800, 40)] {
        let (r_star, r_star_star, r2) = workload(outer, factor);
        assert_eq!(
            direct(&r_star, &r_star_star, &r2),
            law8(&r_star, &r_star_star, &r2)
        );
        let id = format!("{outer}x{factor}");
        group.bench_with_input(
            BenchmarkId::new("product-then-divide", &id),
            &outer,
            |b, _| b.iter(|| direct(&r_star, &r_star_star, &r2)),
        );
        group.bench_with_input(BenchmarkId::new("law9-eliminated", &id), &outer, |b, _| {
            b.iter(|| law8(&r_star, &r_star_star, &r2))
        });
    }
    group.finish();
}

criterion_group!(law09, benches);
criterion_main!(law09);
