//! Experiment E11 (Section 3): frequent itemset support counting via the
//! great divide vs the per-candidate scan baseline, and the full Apriori run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_datagen::baskets::{self, BasketConfig};
use div_mining::{mine_frequent_itemsets, AprioriConfig, SupportCounting};
use div_physical::great_divide::GreatDivideAlgorithm;

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_frequent_itemsets");
    for transactions in [500usize, 2_000] {
        let data = baskets::generate(&BasketConfig {
            transactions,
            items: 120,
            avg_length: 8,
            skew: 1.0,
            planted_itemsets: 4,
            planted_size: 3,
            planted_probability: 0.3,
            seed: 99,
        });
        let min_support = transactions / 10;
        let strategies = [
            SupportCounting::PerCandidateScan,
            SupportCounting::GreatDivide(GreatDivideAlgorithm::GroupLoop),
            SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets),
            SupportCounting::GreatDivide(GreatDivideAlgorithm::SortMerge),
        ];
        for strategy in strategies {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), transactions),
                &transactions,
                |b, _| {
                    b.iter(|| {
                        mine_frequent_itemsets(
                            &data.transactions,
                            &AprioriConfig {
                                min_support,
                                max_size: 3,
                                counting: strategy,
                            },
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(frequent_itemsets, benches);
criterion_main!(frequent_itemsets);
