//! Experiment E10b (Example 4): pushing a selective equi-join against the
//! quotient into the dividend of a great divide.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::great_divide_workload;
use division::prelude::*;

fn benches(c: &mut Criterion) {
    let (dividend, divisor) = great_divide_workload(800, 20, 32, 6);
    let mut group = c.benchmark_group("E10_example4_join_push_in");
    for outer_size in [5i64, 50, 400] {
        let outer = Relation::from_rows(["a1"], (0..outer_size).map(|a| vec![a * 2])).unwrap();
        let join = Predicate::eq_attrs("a1", "a");
        let join_above = || {
            outer
                .theta_join(&dividend.great_divide(&divisor).unwrap(), &join)
                .unwrap()
        };
        let pushed_in = || {
            outer
                .theta_join(&dividend, &join)
                .unwrap()
                .great_divide(&divisor)
                .unwrap()
        };
        assert_eq!(
            join_above().conform_to(pushed_in().schema()).unwrap(),
            pushed_in()
        );
        group.bench_with_input(
            BenchmarkId::new("join-above-divide", outer_size),
            &outer_size,
            |b, _| b.iter(join_above),
        );
        group.bench_with_input(
            BenchmarkId::new("example4-join-pushed-in", outer_size),
            &outer_size,
            |b, _| b.iter(pushed_in),
        );
    }
    group.finish();
}

criterion_group!(example4, benches);
criterion_main!(example4);
