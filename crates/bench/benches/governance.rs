//! Cost of query-lifecycle governance: guarded vs unguarded execution.
//!
//! The claim under test (`div_physical::guard`): a fully armed
//! [`QueryGuard`] — cancellation token, wall-clock deadline and
//! resident-row budget, all checked at every batch boundary of every
//! operator — costs close to nothing when it never trips. The ungoverned
//! path is a single branch per check; the armed path adds one atomic
//! load, one `Instant::now` and two integer compares per batch per
//! operator, amortized over `batch_size` rows.
//!
//! Benchmarks (every `*/unguarded/*` id pairs with a `*/guarded/*` id
//! over the identical plan and catalog; the guarded run arms all three
//! limits generously enough that none ever trips, so both runs do the
//! same relational work):
//!
//! * `drain` — Q2-style divide (supplies ÷ blue parts) drained to
//!   completion. The divide holds blocking state, so the resident-row
//!   accounting the budget check reads is live on every batch.
//!
//! `scripts/bench_snapshot.sh governance` records this group's medians
//! as `BENCH_governance.json` — the recorded governance-overhead datum
//! of the repo's perf trajectory (the "speedup" is the guard overhead,
//! expected close to 1.0).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_algebra::Predicate;
use div_bench::suppliers_parts_catalog;
use div_expr::{Catalog, PlanBuilder};
use div_physical::{
    plan_query, CancelToken, PhysicalPlan, PlannerConfig, QueryGuard, StreamExecutor,
};
use std::time::Duration;

/// Dividend widths (supplier counts) the sweep covers.
const SCALES: [usize; 2] = [2_000, 8_000];

fn catalog_for(suppliers: usize) -> Catalog {
    suppliers_parts_catalog(suppliers, 50, 0.5)
}

/// Q2: supplies ÷ blue parts.
fn divide_plan() -> PhysicalPlan {
    let logical = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::eq_value("color", "blue"))
                .project(["p#"]),
        )
        .build();
    plan_query(&logical, &PlannerConfig::default()).unwrap()
}

/// All three limits armed, none tight enough to ever trip.
fn armed_guard() -> QueryGuard {
    QueryGuard::default()
        .with_token(CancelToken::new())
        .with_deadline(Duration::from_secs(3_600))
        .with_budget_rows(usize::MAX / 2)
}

fn drain_rows(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    config: &PlannerConfig,
    guard: QueryGuard,
) -> usize {
    let mut stream = StreamExecutor::with_guard(plan, catalog, config, guard).unwrap();
    let mut rows = 0;
    while let Some(batch) = stream.next_batch().unwrap() {
        rows += batch.num_rows();
    }
    rows
}

fn bench_governance(c: &mut Criterion) {
    println!(
        "host parallelism: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let config = PlannerConfig::default().batch_size(1024);
    let mut group = c.benchmark_group("governance");
    for scale in SCALES {
        let catalog = catalog_for(scale);
        let plan = divide_plan();
        group.bench_with_input(
            BenchmarkId::new("drain/unguarded", scale),
            &scale,
            |b, _| b.iter(|| drain_rows(&plan, &catalog, &config, QueryGuard::default())),
        );
        group.bench_with_input(BenchmarkId::new("drain/guarded", scale), &scale, |b, _| {
            b.iter(|| drain_rows(&plan, &catalog, &config, armed_guard()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_governance);
criterion_main!(benches);
