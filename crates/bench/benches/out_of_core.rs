//! Out-of-core execution: the price of spilling, and what zone maps save.
//!
//! Two claims under test (`div_physical::stream_spill`, `div_storage`):
//!
//! * Hybrid hash operators under a resident-row budget complete by
//!   partitioning to disk instead of aborting, at a bounded slowdown —
//!   every `*/inmemory/*` id pairs with a `*/spilled/*` id over the
//!   identical plan and catalog, the spilled run squeezed to an eighth of
//!   its input so it genuinely recurses through disk:
//!   - `divide` — Q2-style divide (supplies ÷ blue parts),
//!   - `join` — natural join supplies ⋈ parts, build side spilled,
//!   - `aggregate` — parts-per-supplier grouped count.
//! * File-backed scans stream without materializing, and zone maps make
//!   selective scans cheaper than full ones (warm OS page cache — the
//!   datum is decode + skip cost, not disk latency):
//!   - `file_scan/full` — drain every chunk of a 50k-row table file,
//!   - `file_scan/zonemap` — the same file under a selective pushed-down
//!     predicate (zone maps skip ~31/32 chunks),
//!   - `file_scan/ram` — the in-catalog scan of the same rows, the
//!     memory-resident baseline.
//!
//! `scripts/bench_snapshot.sh out_of_core` records this group's medians as
//! `BENCH_out_of_core.json` — the recorded out-of-core datum of the repo's
//! perf trajectory (the "speedup" is the spill overhead factor, expected
//! modestly above 1.0).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_algebra::{AggregateCall, CompareOp, Predicate, Relation};
use div_bench::suppliers_parts_catalog;
use div_expr::{Catalog, LogicalPlan, PlanBuilder};
use div_physical::{plan_query, PlannerConfig, QueryGuard, StreamExecutor};
use div_storage::{TableReader, TableWriter};

/// Dividend widths (supplier counts) the operator sweep covers.
const SCALES: [usize; 2] = [2_000, 8_000];

fn catalog_for(suppliers: usize) -> Catalog {
    suppliers_parts_catalog(suppliers, 50, 0.5)
}

fn shapes() -> Vec<(&'static str, LogicalPlan)> {
    vec![
        (
            "divide",
            PlanBuilder::scan("supplies")
                .divide(
                    PlanBuilder::scan("parts")
                        .select(Predicate::eq_value("color", "blue"))
                        .project(["p#"]),
                )
                .build(),
        ),
        (
            // Self-join: the *right* child is the build side, so the build
            // holds all 50k supplies rows and must partition to disk, while
            // every probe row still matches exactly once (output stays
            // 1:1, no per-chunk blow-up). No projection on top — a
            // relational projection deduplicates, and its seen-set is
            // (deliberately) non-spillable blocking state that would
            // dominate the budget.
            "join",
            PlanBuilder::scan("supplies")
                .natural_join(PlanBuilder::scan("supplies"))
                .build(),
        ),
        (
            "aggregate",
            PlanBuilder::scan("supplies")
                .group_aggregate(["s#"], [AggregateCall::count("p#", "n")])
                .build(),
        ),
    ]
}

fn drain_rows(logical: &LogicalPlan, catalog: &Catalog, config: &PlannerConfig) -> usize {
    let plan = plan_query(logical, config).unwrap();
    let guard = QueryGuard::from_config(config);
    let mut stream = StreamExecutor::with_guard(&plan, catalog, config, guard).unwrap();
    let mut rows = 0;
    while let Some(batch) = stream.next_batch().unwrap() {
        rows += batch.num_rows();
    }
    rows
}

fn bench_out_of_core(c: &mut Criterion) {
    println!(
        "host parallelism: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut group = c.benchmark_group("out_of_core");

    for scale in SCALES {
        let catalog = catalog_for(scale);
        let rows_in = catalog.table("supplies").unwrap().len();
        let inmemory = PlannerConfig::default().batch_size(1024);
        // An eighth of the input: the build sides cannot fit, so every
        // spilling operator partitions to disk and recurses.
        let spilled = PlannerConfig::default()
            .batch_size(1024)
            .memory_budget_rows((rows_in / 8).max(1))
            .spill_to_disk(true);
        for (name, logical) in shapes() {
            let baseline = drain_rows(&logical, &catalog, &inmemory);
            assert_eq!(
                drain_rows(&logical, &catalog, &spilled),
                baseline,
                "{name}: spilled run diverges"
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/inmemory"), scale),
                &scale,
                |b, _| b.iter(|| drain_rows(&logical, &catalog, &inmemory)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{name}/spilled"), scale),
                &scale,
                |b, _| b.iter(|| drain_rows(&logical, &catalog, &spilled)),
            );
        }
    }

    // File-backed scans: 50k rows in 512-row chunks, written once.
    let rows = 50_000i64;
    let table = Relation::from_rows(["a", "b"], (0..rows).map(|i| vec![i, i % 97])).unwrap();
    let path = std::env::temp_dir().join(format!(
        "div_bench_out_of_core_{}.divcol",
        std::process::id()
    ));
    TableWriter::write_relation(&path, &table, 512).unwrap();
    let reader = TableReader::open(&path).unwrap();
    let selective = Predicate::cmp_value("a", CompareOp::Lt, 1_500);

    group.bench_with_input(BenchmarkId::new("file_scan/full", rows), &rows, |b, _| {
        b.iter(|| {
            let mut cursor = reader.scan(None).unwrap();
            let mut n = 0usize;
            while let Some(chunk) = cursor.next_chunk().unwrap() {
                n += chunk.num_rows();
            }
            n
        })
    });
    group.bench_with_input(
        BenchmarkId::new("file_scan/zonemap", rows),
        &rows,
        |b, _| {
            b.iter(|| {
                let mut cursor = reader.scan(Some(&selective)).unwrap();
                let mut n = 0usize;
                while let Some(chunk) = cursor.next_chunk().unwrap() {
                    n += chunk.num_rows();
                }
                n
            })
        },
    );
    let mut ram_catalog = Catalog::new();
    ram_catalog.register("big", table);
    let scan = PlanBuilder::scan("big").build();
    let scan_config = PlannerConfig::default().batch_size(1024);
    group.bench_with_input(BenchmarkId::new("file_scan/ram", rows), &rows, |b, _| {
        b.iter(|| drain_rows(&scan, &ram_catalog, &scan_config))
    });

    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_out_of_core);
criterion_main!(benches);
