//! Streaming vs materialized execution: first-batch latency and peak
//! resident rows.
//!
//! The claim under test (ISSUE 5 / `div_physical::stream`): the
//! materializing executors pay for the *whole* pipeline before the first
//! result row exists, and hold the largest intermediate in memory; the
//! Volcano-style streaming executor produces its first batch after one
//! chunk has traversed the pipeline, and its resident footprint is
//! O(pipeline depth × batch_size) plus the genuinely blocking state.
//!
//! Benchmarks (every `cursor/*` id pairs with a `materialized/*` id over
//! the identical plan and catalog):
//!
//! * `first_batch` — a deep filter pipeline over a wide dividend: time to
//!   the FIRST batch from a `StreamExecutor` vs a full
//!   `execute_with_config` on the whole-batch columnar backend. This is
//!   the latency a paginating consumer (`take(1)`) observes.
//! * `full_drain` — the same pipeline drained to completion: the streaming
//!   executor's overhead when the consumer wants everything anyway.
//! * `divide_probe` — Q2-style divide: the divisor table builds eagerly on
//!   both sides, but the streaming divide consumes the dividend
//!   chunk-at-a-time (state ∝ quotient groups) instead of materializing it.
//!
//! The peak-resident-rows comparison is printed once at startup (criterion
//! measures time; the memory claim is asserted by
//! `tests/streaming_cursor.rs`). `scripts/bench_snapshot.sh streaming`
//! records this group's medians as `BENCH_streaming.json` — the second
//! point of the repo's recorded perf trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_algebra::{CompareOp, Predicate};
use div_bench::suppliers_parts_catalog;
use div_expr::{Catalog, PlanBuilder};
use div_physical::{
    execute_with_config, plan_query, ExecutionBackend, PhysicalPlan, PlannerConfig, StreamExecutor,
};

/// Dividend widths (supplier counts) the sweep covers.
const SCALES: [usize; 2] = [2_000, 8_000];

fn catalog_for(suppliers: usize) -> Catalog {
    suppliers_parts_catalog(suppliers, 50, 0.5)
}

/// A deep, fully pipelineable plan: scan → filter → filter → filter →
/// project. Every operator streams, so the first batch should cost
/// O(batch_size), not O(table).
fn deep_pipeline() -> PhysicalPlan {
    let logical = PlanBuilder::scan("supplies")
        .select(Predicate::cmp_value("p#", CompareOp::Lt, 45))
        .select(Predicate::cmp_value("p#", CompareOp::GtEq, 1))
        .select(Predicate::cmp_value("s#", CompareOp::GtEq, 0))
        .project(["s#"])
        .build();
    plan_query(&logical, &PlannerConfig::default()).unwrap()
}

/// Q2: supplies ÷ blue parts — the probe (dividend) side streams through
/// the divide's coverage state.
fn divide_plan() -> PhysicalPlan {
    let logical = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::eq_value("color", "blue"))
                .project(["p#"]),
        )
        .build();
    plan_query(&logical, &PlannerConfig::default()).unwrap()
}

fn stream_config() -> PlannerConfig {
    PlannerConfig::default().batch_size(1024)
}

fn materialized_config() -> PlannerConfig {
    PlannerConfig::with_backend(ExecutionBackend::Columnar)
}

fn first_batch_rows(plan: &PhysicalPlan, catalog: &Catalog) -> usize {
    let mut stream = StreamExecutor::new(plan, catalog, &stream_config()).unwrap();
    stream
        .next_batch()
        .unwrap()
        .map(|b| b.num_rows())
        .unwrap_or(0)
}

fn drain_rows(plan: &PhysicalPlan, catalog: &Catalog) -> usize {
    let mut stream = StreamExecutor::new(plan, catalog, &stream_config()).unwrap();
    let mut rows = 0;
    while let Some(batch) = stream.next_batch().unwrap() {
        rows += batch.num_rows();
    }
    rows
}

fn report_memory_profile() {
    let catalog = catalog_for(SCALES[SCALES.len() - 1]);
    let plan = deep_pipeline();
    let mut stream = StreamExecutor::new(&plan, &catalog, &stream_config()).unwrap();
    while stream.next_batch().unwrap().is_some() {}
    let streaming = stream.finish();
    let (_, materialized) = execute_with_config(&plan, &catalog, &materialized_config()).unwrap();
    println!(
        "memory profile (deep pipeline, {} suppliers): streaming peak resident rows = {}, \
         materialized max intermediate = {} ({}x)",
        SCALES[SCALES.len() - 1],
        streaming.peak_resident_rows,
        materialized.max_intermediate,
        materialized.max_intermediate / streaming.peak_resident_rows.max(1),
    );
}

fn bench_streaming(c: &mut Criterion) {
    println!(
        "host parallelism: {}",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    report_memory_profile();

    let mut group = c.benchmark_group("streaming_vs_materialized");
    for scale in SCALES {
        let catalog = catalog_for(scale);

        // First-batch latency on the deep pipeline.
        let plan = deep_pipeline();
        group.bench_with_input(
            BenchmarkId::new("first_batch/cursor", scale),
            &scale,
            |b, _| b.iter(|| first_batch_rows(&plan, &catalog)),
        );
        group.bench_with_input(
            BenchmarkId::new("first_batch/materialized", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    execute_with_config(&plan, &catalog, &materialized_config())
                        .unwrap()
                        .0
                        .len()
                })
            },
        );

        // Full drain on the deep pipeline.
        group.bench_with_input(
            BenchmarkId::new("full_drain/cursor", scale),
            &scale,
            |b, _| b.iter(|| drain_rows(&plan, &catalog)),
        );
        group.bench_with_input(
            BenchmarkId::new("full_drain/materialized", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    execute_with_config(&plan, &catalog, &materialized_config())
                        .unwrap()
                        .0
                        .len()
                })
            },
        );

        // The divide with a streamed dividend.
        let divide = divide_plan();
        group.bench_with_input(
            BenchmarkId::new("divide_probe/cursor", scale),
            &scale,
            |b, _| b.iter(|| drain_rows(&divide, &catalog)),
        );
        group.bench_with_input(
            BenchmarkId::new("divide_probe/materialized", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    execute_with_config(&divide, &catalog, &materialized_config())
                        .unwrap()
                        .0
                        .len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
