//! Division over the generated workload families of `div_datagen::scenarios`
//! (RBAC, courses, feature flags): small divide with the optimizer on vs
//! off, and the great (grouped) divide, as cardinality and divisor
//! selectivity sweep.
//!
//! These are the same generators the conformance harness draws on
//! (`crates/conformance`), so the shapes measured here are the shapes the
//! differential fuzzer certifies for correctness.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_datagen::scenarios::{generate, ScenarioConfig, ScenarioFamily};
use div_sql::Engine;

/// Entity counts the sweep covers.
const SCALES: [usize; 2] = [200, 1_000];

fn config_for(family: ScenarioFamily, entities: usize, selectivity: f64) -> ScenarioConfig {
    ScenarioConfig {
        family,
        entities,
        items: 40,
        groups: 4,
        membership: 0.55,
        skew: 0.8,
        divisor_selectivity: selectivity,
        null_density: 0.02,
        full_entities: 0.05,
        seed: 0xd1_71de,
    }
}

fn small_divide(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_small_divide");
    for family in ScenarioFamily::ALL {
        for entities in SCALES {
            let data = generate(&config_for(family, entities, 0.4));
            let sql = data.small_divide_sql();
            let optimized = Engine::new(data.catalog());
            let raw = Engine::builder(data.catalog()).without_optimizer().build();
            let id = format!("{}/{entities}", family.name());
            group.bench_with_input(BenchmarkId::new("optimized", &id), &sql, |b, sql| {
                b.iter(|| optimized.query_collect(sql).expect("query").relation.len())
            });
            group.bench_with_input(BenchmarkId::new("raw", &id), &sql, |b, sql| {
                b.iter(|| raw.query_collect(sql).expect("query").relation.len())
            });
        }
    }
    group.finish();
}

fn great_divide(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_great_divide");
    for family in ScenarioFamily::ALL {
        for entities in SCALES {
            let data = generate(&config_for(family, entities, 0.5));
            let sql = data.great_divide_sql();
            let engine = Engine::new(data.catalog());
            let id = format!("{}/{entities}", family.name());
            group.bench_with_input(BenchmarkId::new("grouped", &id), &sql, |b, sql| {
                b.iter(|| engine.query_collect(sql).expect("query").relation.len())
            });
        }
    }
    group.finish();
}

fn selectivity_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_divisor_selectivity");
    for selectivity in [0.0, 0.2, 0.8] {
        let data = generate(&config_for(ScenarioFamily::Rbac, 500, selectivity));
        let sql = data.small_divide_sql();
        let engine = Engine::new(data.catalog());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{selectivity:.1}")),
            &sql,
            |b, sql| b.iter(|| engine.query_collect(sql).expect("query").relation.len()),
        );
    }
    group.finish();
}

criterion_group!(benches, small_divide, great_divide, selectivity_sweep);
criterion_main!(benches);
