//! Experiment E12 (Section 4): executing Q1 through the `DIVIDE BY` syntax
//! (lowered to a first-class great-divide operator) vs the double
//! `NOT EXISTS` simulation executed naively as nested scans.
//!
//! The NOT EXISTS baseline is evaluated the way a system without division
//! support would: for every (supplier, color) pair, scan the parts of that
//! color and probe the supplier's parts — the nested-loops semantics of the
//! SQL formulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::suppliers_parts_catalog;
use division::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

const Q1: &str = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#";

/// Nested-loop evaluation of the double NOT EXISTS formulation (Q3).
fn not_exists_baseline(catalog: &Catalog) -> Relation {
    let supplies = catalog.table("supplies").unwrap();
    let parts = catalog.table("parts").unwrap();
    let mut supplier_parts: BTreeMap<Value, BTreeSet<Value>> = BTreeMap::new();
    for t in supplies.tuples() {
        supplier_parts
            .entry(t.values()[0].clone())
            .or_default()
            .insert(t.values()[1].clone());
    }
    let colors: BTreeSet<Value> = parts.tuples().map(|t| t.values()[1].clone()).collect();
    let mut out = Relation::empty(Schema::of(["s#", "color"]));
    for (supplier, owned) in &supplier_parts {
        'colors: for color in &colors {
            // NOT EXISTS a part of this color NOT supplied by the supplier.
            for part in parts.tuples() {
                if &part.values()[1] == color && !owned.contains(&part.values()[0]) {
                    continue 'colors;
                }
            }
            out.insert(Tuple::new([supplier.clone(), color.clone()]))
                .unwrap();
        }
    }
    out
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_sql_divide_vs_not_exists");
    for (suppliers, parts) in [(100usize, 30usize), (400, 60)] {
        let catalog = suppliers_parts_catalog(suppliers, parts, 0.55);
        // The DIVIDE BY path runs as a prepared statement on the engine: the
        // plan (optimizer in the loop) is compiled once, outside the timing
        // loop.
        let engine = Engine::new(catalog.clone());
        let stmt = engine.prepare(Q1).unwrap();
        // Both strategies compute the same result.
        assert_eq!(
            stmt.execute_collect(&engine, &Params::new())
                .unwrap()
                .relation,
            not_exists_baseline(&catalog)
        );
        let id = format!("{suppliers}x{parts}");
        group.bench_with_input(
            BenchmarkId::new("divide-by-first-class", &id),
            &suppliers,
            |b, _| b.iter(|| stmt.execute_collect(&engine, &Params::new()).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("double-not-exists", &id),
            &suppliers,
            |b, _| b.iter(|| not_exists_baseline(&catalog)),
        );
    }
    group.finish();
}

criterion_group!(sql_divide, benches);
criterion_main!(sql_divide);
