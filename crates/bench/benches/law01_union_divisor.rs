//! Experiment E3 (Law 1): dividing by a union of divisor partitions directly
//! vs the pipelined form `(r1 ⋉ (r1 ÷ r'2)) ÷ r''2`, which shrinks the
//! dividend between the two divisions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::division_workload;
use div_physical::division::{divide_with, DivisionAlgorithm};
use div_physical::ExecStats;
use division::prelude::*;

fn split_divisor(divisor: &Relation, parts: usize) -> Vec<Relation> {
    div_datagen::partition::round_robin_partition(divisor, parts).unwrap()
}

fn run_union_form(dividend: &Relation, partitions: &[Relation]) -> Relation {
    let mut divisor = partitions[0].clone();
    for p in &partitions[1..] {
        divisor = divisor.union(p).unwrap();
    }
    let mut stats = ExecStats::default();
    divide_with(
        dividend,
        &divisor,
        DivisionAlgorithm::MergeSortDivision,
        &mut stats,
    )
    .unwrap()
}

fn run_pipelined_form(dividend: &Relation, partitions: &[Relation]) -> Relation {
    // Law 1 applied repeatedly: each intermediate quotient shrinks the
    // dividend via a semi-join before the next partition is processed.
    let mut stats = ExecStats::default();
    let mut current = dividend.clone();
    let mut quotient = divide_with(
        &current,
        &partitions[0],
        DivisionAlgorithm::MergeSortDivision,
        &mut stats,
    )
    .unwrap();
    for p in &partitions[1..] {
        current = current.semi_join(&quotient).unwrap();
        quotient = divide_with(
            &current,
            p,
            DivisionAlgorithm::MergeSortDivision,
            &mut stats,
        )
        .unwrap();
    }
    quotient
}

fn benches(c: &mut Criterion) {
    let (dividend, divisor) = division_workload(600, 24, 4);
    let mut group = c.benchmark_group("E3_law01_divisor_union");
    for parts in [2usize, 4, 8] {
        let partitions = split_divisor(&divisor, parts);
        // Sanity: the two forms agree (Law 1).
        assert_eq!(
            run_union_form(&dividend, &partitions),
            run_pipelined_form(&dividend, &partitions)
        );
        group.bench_with_input(BenchmarkId::new("union-form", parts), &parts, |b, _| {
            b.iter(|| run_union_form(&dividend, &partitions))
        });
        group.bench_with_input(BenchmarkId::new("law1-pipelined", parts), &parts, |b, _| {
            b.iter(|| run_pipelined_form(&dividend, &partitions))
        });
    }
    group.finish();
}

criterion_group!(law01, benches);
criterion_main!(law01);
