//! Vectorized key pipeline vs the pre-pipeline `RowKey` kernels.
//!
//! The claim under test (ISSUE 4 / the `key_vector` + `hash_table`
//! modules): materializing a `RowKey` enum per row per operator — cloning
//! `Value`s, allocating a `Vec<Value>` for composite keys, SipHashing
//! through `std::collections` maps — dominates the hash kernels' budget;
//! normalizing keys once per batch into dense `u64` codes consumed by
//! open-addressing tables removes that constant factor.
//!
//! Each benchmark pairs a rewritten kernel with a faithful replica of its
//! pre-pipeline implementation (`rowkey_*` below, kept verbatim from the
//! old kernels so the comparison is against real history, not a strawman):
//!
//! * `string_join` — natural join on a dictionary-encoded string key,
//! * `composite_aggregate` — COUNT/SUM grouped by a two-column key,
//! * `generic_divide` — small divide with string `A` and `B` attributes
//!   (the old kernel's non-`i64` "generic path"),
//! * `hash_partition` — Law 2/13 partition routing (old: one
//!   `DefaultHasher` per row + `% partitions`; new: one `KeyVector` per
//!   batch + multiply-based reduction).
//!
//! `scripts/bench_snapshot.sh` runs this group and records the medians in
//! `BENCH_key_pipeline.json` — the repo's perf trajectory for the key
//! machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_algebra::{AggregateCall, Relation, Schema, Tuple, Value};
use div_columnar::{kernels, partition, Column, ColumnarBatch, RowKey};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

// ---------------------------------------------------------------------------
// Pre-pipeline baselines: the old kernels' key machinery, verbatim.
// ---------------------------------------------------------------------------

/// The old `hash_natural_join`: `RowKey` per row on both sides, SipHash
/// `HashMap`, and the all-columns right gather of the old assembly.
fn rowkey_natural_join(left: &ColumnarBatch, right: &ColumnarBatch) -> ColumnarBatch {
    let common = left.schema().common_attributes(right.schema());
    let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
    let left_key = left.projection_indices(&common_refs).unwrap();
    let right_key = right.projection_indices(&common_refs).unwrap();
    let right_extra: Vec<&str> = right
        .schema()
        .names()
        .into_iter()
        .filter(|n| !left.schema().contains(n))
        .collect();
    let right_extra_idx = right.projection_indices(&right_extra).unwrap();

    let mut table: HashMap<RowKey, Vec<usize>> = HashMap::with_capacity(right.num_rows());
    for i in 0..right.num_rows() {
        table
            .entry(right.key_at(i, &right_key))
            .or_default()
            .push(i);
    }
    let mut left_indices: Vec<usize> = Vec::new();
    let mut right_indices: Vec<usize> = Vec::new();
    for i in 0..left.num_rows() {
        if let Some(matches) = table.get(&left.key_at(i, &left_key)) {
            for &j in matches {
                left_indices.push(i);
                right_indices.push(j);
            }
        }
    }
    let out_schema = left.schema().natural_union(right.schema());
    let gathered_left = left.gather(&left_indices);
    let gathered_right = right.gather(&right_indices);
    let mut columns = gathered_left.columns().to_vec();
    columns.extend(
        right_extra_idx
            .iter()
            .map(|&c| gathered_right.column(c).clone()),
    );
    ColumnarBatch::from_parts(out_schema, columns, left_indices.len())
}

/// The old `ColumnarBatch::dedup`: a `RowKey` per row through a SipHash
/// `HashSet` (the pre-pipeline set-semantics boundary the old aggregate
/// kernel called).
fn rowkey_dedup(batch: &ColumnarBatch) -> ColumnarBatch {
    let all_columns: Vec<usize> = (0..batch.schema().arity()).collect();
    let mut seen: HashSet<RowKey> = HashSet::with_capacity(batch.num_rows());
    let mut keep: Vec<usize> = Vec::with_capacity(batch.num_rows());
    for i in 0..batch.num_rows() {
        if seen.insert(batch.key_at(i, &all_columns)) {
            keep.push(i);
        }
    }
    if keep.len() == batch.num_rows() {
        batch.clone()
    } else {
        batch.gather(&keep)
    }
}

/// The old `hash_aggregate` grouping loop: one `RowKey` (a `Vec<Value>` for
/// composite keys) per row through a SipHash map.
fn rowkey_aggregate(
    batch: &ColumnarBatch,
    group_by: &[&str],
    aggregates: &[AggregateCall],
) -> ColumnarBatch {
    let mut out_names: Vec<String> = group_by.iter().map(|s| s.to_string()).collect();
    for agg in aggregates {
        out_names.push(agg.output.clone());
    }
    let out_schema = Schema::new(out_names).unwrap();
    let batch = rowkey_dedup(batch);
    let key_idx = batch.projection_indices(group_by).unwrap();
    let mut group_of: HashMap<RowKey, usize> = HashMap::new();
    let mut first_row: Vec<usize> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for row in 0..batch.num_rows() {
        let key = batch.key_at(row, &key_idx);
        let next = members.len();
        let gid = *group_of.entry(key).or_insert(next);
        if gid == first_row.len() {
            first_row.push(row);
            members.push(Vec::new());
        }
        members[gid].push(row);
    }
    let mut columns = Vec::with_capacity(out_schema.arity());
    for &key_col in &key_idx {
        columns.push(batch.column(key_col).gather(&first_row));
    }
    for agg in aggregates {
        let input_idx = batch.schema().require(&agg.input).unwrap();
        let mut outputs: Vec<Value> = Vec::with_capacity(members.len());
        for group in &members {
            let inputs: Vec<Value> = group
                .iter()
                .map(|&row| batch.value_at(row, input_idx))
                .collect();
            outputs.push(agg.function.eval(&inputs).unwrap());
        }
        columns.push(Column::from_values(outputs.iter()));
    }
    ColumnarBatch::from_parts(out_schema, columns, members.len())
}

/// The old `hash_divide` generic path: `RowKey`-keyed divisor ids and
/// dividend groups with per-group coverage bitmaps.
fn rowkey_divide(dividend: &ColumnarBatch, divisor: &ColumnarBatch) -> ColumnarBatch {
    let shared: Vec<String> = divisor
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let quotient = dividend.schema().difference_attributes(divisor.schema());
    let shared_refs: Vec<&str> = shared.iter().map(String::as_str).collect();
    let quotient_refs: Vec<&str> = quotient.iter().map(String::as_str).collect();
    let dividend_b = dividend.projection_indices(&shared_refs).unwrap();
    let divisor_b = divisor.projection_indices(&shared_refs).unwrap();
    let dividend_a = dividend.projection_indices(&quotient_refs).unwrap();

    let mut divisor_ids: HashMap<RowKey, u32> = HashMap::with_capacity(divisor.num_rows());
    for i in 0..divisor.num_rows() {
        let next = divisor_ids.len() as u32;
        divisor_ids
            .entry(divisor.key_at(i, &divisor_b))
            .or_insert(next);
    }
    let divisor_len = divisor_ids.len();
    let words = divisor_len.div_ceil(64);
    struct State {
        first_row: usize,
        bits: Vec<u64>,
        covered: u32,
    }
    let mut groups: HashMap<RowKey, State> = HashMap::new();
    for row in 0..dividend.num_rows() {
        let Some(&id) = divisor_ids.get(&dividend.key_at(row, &dividend_b)) else {
            continue;
        };
        let state = groups
            .entry(dividend.key_at(row, &dividend_a))
            .or_insert_with(|| State {
                first_row: row,
                bits: vec![0; words],
                covered: 0,
            });
        let word = (id / 64) as usize;
        let bit = 1u64 << (id % 64);
        if state.bits[word] & bit == 0 {
            state.bits[word] |= bit;
            state.covered += 1;
        }
    }
    let qualifying: Vec<usize> = groups
        .values()
        .filter(|s| s.covered as usize == divisor_len)
        .map(|s| s.first_row)
        .collect();
    let schema = dividend.schema().project(&quotient_refs).unwrap();
    let columns = dividend_a
        .iter()
        .map(|&c| dividend.column(c).gather(&qualifying))
        .collect();
    ColumnarBatch::from_parts(schema, columns, qualifying.len())
}

/// The old `hash_partition`: a fresh `DefaultHasher` and a materialized
/// `RowKey` per row, routed with `% partitions`.
fn rowkey_partition(
    batch: &ColumnarBatch,
    key_columns: &[usize],
    partitions: usize,
) -> Vec<ColumnarBatch> {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); partitions];
    for row in 0..batch.num_rows() {
        let mut hasher = DefaultHasher::new();
        batch.key_at(row, key_columns).hash(&mut hasher);
        buckets[(hasher.finish() as usize) % partitions].push(row);
    }
    buckets.iter().map(|rows| batch.gather(rows)).collect()
}

// ---------------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------------

fn string_name(i: usize, distinct: usize) -> String {
    format!("customer-{:04}", i % distinct)
}

/// Left: `rows` facts keyed by a low-cardinality string; right: one row per
/// distinct key (the dimension side of a string-keyed join).
fn string_join_inputs(rows: usize, distinct: usize) -> (ColumnarBatch, ColumnarBatch) {
    let left = Relation::new(
        Schema::of(["name", "v"]),
        (0..rows)
            .map(|i| Tuple::new([Value::from(string_name(i, distinct)), Value::from(i as i64)])),
    )
    .unwrap();
    let right = Relation::new(
        Schema::of(["name", "w"]),
        (0..distinct).map(|i| {
            Tuple::new([
                Value::from(string_name(i, distinct)),
                Value::from((i * 10) as i64),
            ])
        }),
    )
    .unwrap();
    (
        ColumnarBatch::from_relation(&left),
        ColumnarBatch::from_relation(&right),
    )
}

/// `rows` facts under a two-column (composite) integer group key.
fn composite_aggregate_input(rows: usize) -> ColumnarBatch {
    let rel = Relation::from_rows(
        ["g1", "g2", "v"],
        (0..rows as i64).map(|i| vec![i % 50, (i / 3) % 40, i % 7]),
    )
    .unwrap();
    ColumnarBatch::from_relation(&rel)
}

/// String-keyed division: `who` takes courses `what`; the divisor is the
/// full course list — the old kernel's generic (non-`i64`) path on both
/// key sides.
fn generic_divide_inputs(groups: usize, items: usize) -> (ColumnarBatch, ColumnarBatch) {
    let mut rows = Vec::new();
    for g in 0..groups {
        for i in 0..items {
            if g % 3 == 0 || i % 2 == 0 {
                rows.push(Tuple::new([
                    Value::from(format!("who-{g:03}")),
                    Value::from(format!("what-{i:03}")),
                ]));
            }
        }
    }
    let dividend = Relation::new(Schema::of(["who", "what"]), rows).unwrap();
    let divisor = Relation::new(
        Schema::of(["what"]),
        (0..items).map(|i| Tuple::new([Value::from(format!("what-{i:03}"))])),
    )
    .unwrap();
    (
        ColumnarBatch::from_relation(&dividend),
        ColumnarBatch::from_relation(&divisor),
    )
}

fn partition_input(rows: usize) -> ColumnarBatch {
    let rel =
        Relation::from_rows(["a", "b"], (0..rows as i64).map(|i| vec![i % 400, i % 13])).unwrap();
    ColumnarBatch::from_relation(&rel)
}

// ---------------------------------------------------------------------------
// Benchmarks.
// ---------------------------------------------------------------------------

fn bench_string_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_pipeline/string_join");
    for rows in [1_000usize, 4_000] {
        let (left, right) = string_join_inputs(rows, 200);
        // Sanity: both implementations answer the same relation.
        assert_eq!(
            kernels::hash_natural_join(&left, &right)
                .unwrap()
                .batch
                .to_relation()
                .unwrap(),
            rowkey_natural_join(&left, &right).to_relation().unwrap()
        );
        group.bench_with_input(BenchmarkId::new("keyvector", rows), &rows, |b, _| {
            b.iter(|| kernels::hash_natural_join(&left, &right).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rowkey", rows), &rows, |b, _| {
            b.iter(|| rowkey_natural_join(&left, &right))
        });
    }
    group.finish();
}

fn bench_composite_aggregate(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_pipeline/composite_aggregate");
    let aggregates = [
        AggregateCall::count("v", "n"),
        AggregateCall::sum("v", "total"),
    ];
    for rows in [1_000usize, 4_000] {
        let batch = composite_aggregate_input(rows);
        assert_eq!(
            kernels::hash_aggregate(&batch, &["g1", "g2"], &aggregates)
                .unwrap()
                .to_relation()
                .unwrap(),
            rowkey_aggregate(&batch, &["g1", "g2"], &aggregates)
                .to_relation()
                .unwrap()
        );
        group.bench_with_input(BenchmarkId::new("keyvector", rows), &rows, |b, _| {
            b.iter(|| kernels::hash_aggregate(&batch, &["g1", "g2"], &aggregates).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rowkey", rows), &rows, |b, _| {
            b.iter(|| rowkey_aggregate(&batch, &["g1", "g2"], &aggregates))
        });
    }
    group.finish();
}

fn bench_generic_divide(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_pipeline/generic_divide");
    for groups in [100usize, 400] {
        let (dividend, divisor) = generic_divide_inputs(groups, 16);
        assert_eq!(
            kernels::hash_divide(&dividend, &divisor)
                .unwrap()
                .batch
                .to_relation()
                .unwrap(),
            rowkey_divide(&dividend, &divisor).to_relation().unwrap()
        );
        group.bench_with_input(BenchmarkId::new("keyvector", groups), &groups, |b, _| {
            b.iter(|| kernels::hash_divide(&dividend, &divisor).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("rowkey", groups), &groups, |b, _| {
            b.iter(|| rowkey_divide(&dividend, &divisor))
        });
    }
    group.finish();
}

fn bench_hash_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_pipeline/hash_partition");
    for rows in [2_000usize, 8_000] {
        let batch = partition_input(rows);
        let partitions = 8usize;
        group.bench_with_input(
            BenchmarkId::new(format!("keyvector-p{partitions}"), rows),
            &rows,
            |b, _| b.iter(|| partition::hash_partition(&batch, &[0], partitions)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("rowkey-p{partitions}"), rows),
            &rows,
            |b, _| b.iter(|| rowkey_partition(&batch, &[0], partitions)),
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_string_join(c);
    bench_composite_aggregate(c);
    bench_generic_divide(c);
    bench_hash_partition(c);
}

criterion_group!(key_pipeline, benches);
criterion_main!(key_pipeline);
