//! Execution-strategy sweep: row vs columnar vs partition-parallel columnar,
//! end to end and kernel-level.
//!
//! The claim under test (ROADMAP north star + the motivation for
//! `div-columnar` and `div-physical::parallel_columnar`): the row executor's
//! per-tuple allocation and enum dispatch drown out the algorithmic
//! differences the other benches measure; a batch-at-a-time executor over
//! primitive column slices removes that overhead; and the paper's
//! partition-parallel laws then scale the batch kernels across cores — Law 2
//! partitions the dividend on the quotient attributes, Law 13 distributes
//! the divisor groups. Experiments:
//!
//! * whole Q2 plans (suppliers-parts, Section 4 — the Law 2 workload) over
//!   backend × parallelism,
//! * whole great-divide plans (market baskets, Section 3 — the Law 13
//!   workload) over backend × parallelism,
//! * the bare small-divide kernel against the row hash-division algorithm,
//!   with conversion costs excluded,
//! * `prepared_vs_adhoc`: per-execution cost of a cached
//!   [`div_sql::PreparedStatement`] against the full
//!   [`div_sql::Engine::query`] pipeline — the compile-amortization win of
//!   prepared statements.
//!
//! Parallel speedup is only observable with more than one core; the
//! agreement report prints the host's available parallelism so single-core
//! CI output is interpretable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_algebra::Predicate;
use div_bench::{division_workload, suppliers_parts_catalog};
use div_columnar::{kernels, ColumnarBatch};
use div_datagen::baskets::{self, candidates_relation};
use div_datagen::BasketConfig;
use div_expr::{Catalog, PlanBuilder};
use div_physical::division::{divide_with, DivisionAlgorithm};
use div_physical::{
    execute_with_config, plan_query, ExecStats, ExecutionBackend, PhysicalPlan, PlannerConfig,
};
use div_sql::{Engine, Params};

/// Partition counts the parallel-columnar sweep covers.
const PARALLELISM_SWEEP: [usize; 3] = [2, 4, 8];

/// The execution strategies under comparison, labeled for benchmark ids.
fn strategies() -> Vec<(String, PlannerConfig)> {
    let mut out = vec![
        ("row".to_string(), PlannerConfig::default()),
        (
            "columnar".to_string(),
            PlannerConfig::with_backend(ExecutionBackend::Columnar),
        ),
    ];
    for p in PARALLELISM_SWEEP {
        out.push((format!("columnar-p{p}"), PlannerConfig::with_parallelism(p)));
    }
    out
}

fn q2_plan() -> PhysicalPlan {
    let logical = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::eq_value("color", "blue"))
                .project(["p#"]),
        )
        .build();
    plan_query(&logical, &PlannerConfig::default()).unwrap()
}

fn baskets_catalog(transactions: usize) -> Catalog {
    let data = baskets::generate(&BasketConfig {
        transactions,
        items: 60,
        planted_probability: 0.4,
        ..BasketConfig::default()
    });
    let mut catalog = Catalog::new();
    catalog.register("transactions", data.transactions);
    catalog.register("candidates", candidates_relation(&data.planted));
    catalog
}

fn great_divide_plan() -> PhysicalPlan {
    let logical = PlanBuilder::scan("transactions")
        .great_divide(PlanBuilder::scan("candidates"))
        .build();
    plan_query(&logical, &PlannerConfig::default()).unwrap()
}

/// Law 2 workload: Q2 over the suppliers-parts generator, swept over
/// strategy × scale.
fn bench_q2_suppliers_parts(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_vs_row/q2_suppliers_parts");
    let plan = q2_plan();
    for suppliers in [100usize, 400, 1_600] {
        let catalog = suppliers_parts_catalog(suppliers, 50, 0.5);
        for (name, config) in strategies() {
            group.bench_with_input(BenchmarkId::new(name, suppliers), &suppliers, |b, _| {
                b.iter(|| execute_with_config(&plan, &catalog, &config).unwrap())
            });
        }
    }
    group.finish();
}

/// Law 13 workload: the great divide over market baskets, swept over
/// strategy × scale.
fn bench_baskets_great_divide(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_vs_row/baskets_great_divide");
    let plan = great_divide_plan();
    for transactions in [200usize, 800, 3_200] {
        let catalog = baskets_catalog(transactions);
        for (name, config) in strategies() {
            group.bench_with_input(
                BenchmarkId::new(name, transactions),
                &transactions,
                |b, _| b.iter(|| execute_with_config(&plan, &catalog, &config).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_divide_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_vs_row/divide_kernel");
    for groups in [100i64, 400, 1_600] {
        let (dividend, divisor) = division_workload(groups, 16, 3);
        let dividend_batch = ColumnarBatch::from_relation(&dividend);
        let divisor_batch = ColumnarBatch::from_relation(&divisor);
        group.bench_with_input(
            BenchmarkId::new("row-hash-division", groups),
            &groups,
            |b, _| {
                b.iter(|| {
                    let mut stats = ExecStats::default();
                    divide_with(
                        &dividend,
                        &divisor,
                        DivisionAlgorithm::HashDivision,
                        &mut stats,
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("columnar-hash-divide", groups),
            &groups,
            |b, _| b.iter(|| kernels::hash_divide(&dividend_batch, &divisor_batch).unwrap()),
        );
        for p in PARALLELISM_SWEEP {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel-hash-divide-p{p}"), groups),
                &groups,
                |b, _| {
                    b.iter(|| {
                        div_physical::parallel_columnar::parallel_divide_batches(
                            &dividend_batch,
                            &divisor_batch,
                            p,
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

/// The Q2 query as SQL, with the color literal inline (ad-hoc path) and as a
/// `$color` parameter (prepared path).
const Q2_SQL: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                      (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
const Q2_SQL_PARAM: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                            (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#";

/// Compile-amortization experiment: per-execution cost of
/// `PreparedStatement::execute` (plan compiled once at prepare time, only
/// parameter binding + execution in the loop) vs `Engine::query` (the whole
/// parse → translate → optimize → plan pipeline on every call), on the Q2
/// workload over strategy × scale.
fn bench_prepared_vs_adhoc(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_vs_row/prepared_vs_adhoc");
    for suppliers in [100usize, 400, 1_600] {
        let catalog = suppliers_parts_catalog(suppliers, 50, 0.5);
        for (name, config) in strategies() {
            let engine = Engine::builder(catalog.clone())
                .planner_config(config)
                .build();
            let stmt = engine.prepare(Q2_SQL_PARAM).expect("Q2 prepares");
            let params = Params::new().bind("color", "blue");
            // Sanity: both paths answer the same bytes before being timed.
            assert_eq!(
                engine.query_collect(Q2_SQL).unwrap().relation,
                stmt.execute_collect(&engine, &params).unwrap().relation
            );
            group.bench_with_input(
                BenchmarkId::new(format!("adhoc-{name}"), suppliers),
                &suppliers,
                |b, _| b.iter(|| engine.query_collect(Q2_SQL).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("prepared-{name}"), suppliers),
                &suppliers,
                |b, _| b.iter(|| stmt.execute_collect(&engine, &params).unwrap()),
            );
        }
    }
    group.finish();
}

/// Print the cross-strategy sanity table (results must agree; statistics
/// must report the same output cardinality) for the Law 2 and Law 13
/// workloads.
fn report_backend_agreement() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n# columnar_vs_row: host parallelism = {cores} core(s)");
    if cores == 1 {
        println!("# (single core: partition-parallel runs cannot beat sequential wall-clock here)");
    }
    for (workload, plan, catalog) in [
        (
            "Law 2 / Q2 (suppliers=400)",
            q2_plan(),
            suppliers_parts_catalog(400, 50, 0.5),
        ),
        (
            "Law 13 / baskets (transactions=800)",
            great_divide_plan(),
            baskets_catalog(800),
        ),
    ] {
        println!("\n# strategy agreement on {workload}");
        println!("strategy       output_rows  probes  max_intermediate");
        let mut outputs = Vec::new();
        for (name, config) in strategies() {
            let (result, stats) = execute_with_config(&plan, &catalog, &config).unwrap();
            println!(
                "{:<14} {:>11}  {:>6}  {:>16}",
                name, stats.output_rows, stats.probes, stats.max_intermediate
            );
            outputs.push(result);
        }
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "strategies disagree on {workload}"
        );
    }
}

fn benches(c: &mut Criterion) {
    report_backend_agreement();
    bench_q2_suppliers_parts(c);
    bench_baskets_great_divide(c);
    bench_divide_kernel(c);
    bench_prepared_vs_adhoc(c);
}

criterion_group!(columnar_vs_row, benches);
criterion_main!(columnar_vs_row);
