//! Row vs columnar execution backend, end to end and kernel-level.
//!
//! The claim under test (ROADMAP north star + the motivation for
//! `div-columnar`): the row executor's per-tuple allocation and enum dispatch
//! drown out the algorithmic differences the other benches measure, and a
//! batch-at-a-time executor over primitive column slices removes that
//! overhead. Three experiments:
//!
//! * whole Q2 plans (suppliers-parts, Section 4) on both backends,
//! * whole great-divide plans (market baskets, Section 3) on both backends,
//! * the bare small-divide kernel against the row hash-division algorithm,
//!   with conversion costs excluded.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_algebra::Predicate;
use div_bench::{division_workload, suppliers_parts_catalog};
use div_columnar::{kernels, ColumnarBatch};
use div_datagen::baskets::{self, candidates_relation};
use div_datagen::BasketConfig;
use div_expr::{Catalog, PlanBuilder};
use div_physical::division::{divide_with, DivisionAlgorithm};
use div_physical::{
    execute_on_backend, plan_query, ExecStats, ExecutionBackend, PhysicalPlan, PlannerConfig,
};

fn q2_plan() -> PhysicalPlan {
    let logical = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::eq_value("color", "blue"))
                .project(["p#"]),
        )
        .build();
    plan_query(&logical, &PlannerConfig::default()).unwrap()
}

fn baskets_catalog(transactions: usize) -> Catalog {
    let data = baskets::generate(&BasketConfig {
        transactions,
        items: 60,
        planted_probability: 0.4,
        ..BasketConfig::default()
    });
    let mut catalog = Catalog::new();
    catalog.register("transactions", data.transactions);
    catalog.register("candidates", candidates_relation(&data.planted));
    catalog
}

fn bench_q2_suppliers_parts(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_vs_row/q2_suppliers_parts");
    let plan = q2_plan();
    for suppliers in [100usize, 400, 1_600] {
        let catalog = suppliers_parts_catalog(suppliers, 50, 0.5);
        for backend in ExecutionBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(backend.name(), suppliers),
                &suppliers,
                |b, _| b.iter(|| execute_on_backend(&plan, &catalog, backend).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_baskets_great_divide(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_vs_row/baskets_great_divide");
    let logical = PlanBuilder::scan("transactions")
        .great_divide(PlanBuilder::scan("candidates"))
        .build();
    let plan = plan_query(&logical, &PlannerConfig::default()).unwrap();
    for transactions in [200usize, 800, 3_200] {
        let catalog = baskets_catalog(transactions);
        for backend in ExecutionBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(backend.name(), transactions),
                &transactions,
                |b, _| b.iter(|| execute_on_backend(&plan, &catalog, backend).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_divide_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("columnar_vs_row/divide_kernel");
    for groups in [100i64, 400, 1_600] {
        let (dividend, divisor) = division_workload(groups, 16, 3);
        let dividend_batch = ColumnarBatch::from_relation(&dividend);
        let divisor_batch = ColumnarBatch::from_relation(&divisor);
        group.bench_with_input(
            BenchmarkId::new("row-hash-division", groups),
            &groups,
            |b, _| {
                b.iter(|| {
                    let mut stats = ExecStats::default();
                    divide_with(
                        &dividend,
                        &divisor,
                        DivisionAlgorithm::HashDivision,
                        &mut stats,
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("columnar-hash-divide", groups),
            &groups,
            |b, _| b.iter(|| kernels::hash_divide(&dividend_batch, &divisor_batch).unwrap()),
        );
    }
    group.finish();
}

/// Print the cross-backend sanity table (results must agree; statistics must
/// report the same output cardinality).
fn report_backend_agreement() {
    println!("\n# columnar_vs_row: backend agreement on Q2 (suppliers=400)");
    println!("backend    output_rows  probes  max_intermediate");
    let catalog = suppliers_parts_catalog(400, 50, 0.5);
    let plan = q2_plan();
    let mut outputs = Vec::new();
    for backend in ExecutionBackend::ALL {
        let (result, stats) = execute_on_backend(&plan, &catalog, backend).unwrap();
        println!(
            "{:<10} {:>11}  {:>6}  {:>16}",
            backend.name(),
            stats.output_rows,
            stats.probes,
            stats.max_intermediate
        );
        outputs.push(result);
    }
    assert!(
        outputs.windows(2).all(|w| w[0] == w[1]),
        "backends disagree on Q2"
    );
}

fn benches(c: &mut Criterion) {
    report_backend_agreement();
    bench_q2_suppliers_parts(c);
    bench_baskets_great_divide(c);
    bench_divide_kernel(c);
}

criterion_group!(columnar_vs_row, benches);
criterion_main!(columnar_vs_row);
