//! Experiment E5 (Law 7): when the two dividends have disjoint quotient
//! prefixes, the second division of `(r'1 ÷ r2) − (r''1 ÷ r2)` can be skipped
//! entirely. The paper's example: `σ_{a≤10}(r1) ÷ r2 − σ_{a>10}(r1) ÷ r2`
//! where the second selection covers almost the whole table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::division_workload;
use division::prelude::*;

fn run_both_divisions(r1: &Relation, r2: &Relation, split: i64) -> Relation {
    let low = r1
        .select(&Predicate::cmp_value("a", CompareOp::LtEq, split))
        .unwrap();
    let high = r1
        .select(&Predicate::cmp_value("a", CompareOp::Gt, split))
        .unwrap();
    low.divide(r2)
        .unwrap()
        .difference(&high.divide(r2).unwrap())
        .unwrap()
}

fn run_law7(r1: &Relation, r2: &Relation, split: i64) -> Relation {
    // Law 7: the prefixes are disjoint by construction, so only the first
    // (cheap) division is needed.
    r1.select(&Predicate::cmp_value("a", CompareOp::LtEq, split))
        .unwrap()
        .divide(r2)
        .unwrap()
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_law07_difference");
    for groups in [1_000i64, 4_000] {
        let (r1, r2) = division_workload(groups, 16, 3);
        let split = 10; // only 11 of the `groups` quotient groups are cheap
        assert_eq!(
            run_both_divisions(&r1, &r2, split),
            run_law7(&r1, &r2, split)
        );
        group.bench_with_input(
            BenchmarkId::new("both-divisions", groups),
            &groups,
            |b, _| b.iter(|| run_both_divisions(&r1, &r2, split)),
        );
        group.bench_with_input(
            BenchmarkId::new("law7-skip-second", groups),
            &groups,
            |b, _| b.iter(|| run_law7(&r1, &r2, split)),
        );
    }
    group.finish();
}

criterion_group!(law07, benches);
criterion_main!(law07);
