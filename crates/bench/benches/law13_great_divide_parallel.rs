//! Experiment E9 (Law 13): hash-partitioning the divisor groups on `C` and
//! running the great divide per partition in parallel, vs the sequential run.
//!
//! Paper claim (Section 5.2.1): with the dividend replicated on n nodes and
//! the divisor hash-distributed on C, execution time drops to roughly 1/n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::great_divide_workload;
use div_physical::great_divide::{great_divide_with, GreatDivideAlgorithm};
use div_physical::parallel::parallel_great_divide;
use div_physical::ExecStats;

fn benches(c: &mut Criterion) {
    let (dividend, divisor) = great_divide_workload(600, 20, 64, 6);
    let sequential = {
        let mut stats = ExecStats::default();
        great_divide_with(
            &dividend,
            &divisor,
            GreatDivideAlgorithm::HashSets,
            &mut stats,
        )
        .unwrap()
    };

    let mut group = c.benchmark_group("E9_law13_great_divide_parallel");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut stats = ExecStats::default();
            great_divide_with(
                &dividend,
                &divisor,
                GreatDivideAlgorithm::HashSets,
                &mut stats,
            )
            .unwrap()
        })
    });
    for workers in [2usize, 4, 8] {
        let (result, _) =
            parallel_great_divide(&dividend, &divisor, GreatDivideAlgorithm::HashSets, workers)
                .unwrap();
        assert_eq!(result, sequential);
        group.bench_with_input(
            BenchmarkId::new("law13-parallel", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    parallel_great_divide(
                        &dividend,
                        &divisor,
                        GreatDivideAlgorithm::HashSets,
                        workers,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(law13, benches);
criterion_main!(law13);
