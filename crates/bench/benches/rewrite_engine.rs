//! Experiment E13: the cost of running the rewrite engine and the cost-based
//! optimizer themselves, across plan sizes — logical rewriting must stay cheap
//! relative to execution for the laws to be worth implementing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use div_bench::suppliers_parts_catalog;
use division::prelude::*;

fn nested_plan(depth: usize) -> LogicalPlan {
    let mut builder = PlanBuilder::scan("supplies").divide(
        PlanBuilder::scan("parts")
            .select(Predicate::eq_value("color", "blue"))
            .project(["p#"]),
    );
    for i in 0..depth {
        builder = builder.select(Predicate::cmp_value("s#", CompareOp::Gt, i as i64 - 100));
    }
    builder.build()
}

fn benches(c: &mut Criterion) {
    let catalog = suppliers_parts_catalog(200, 40, 0.5);
    let ctx = RewriteContext::with_catalog(&catalog);
    let engine = RewriteEngine::with_default_rules();
    let optimizer = Optimizer::new();

    let mut group = c.benchmark_group("E13_rewrite_engine_overhead");
    for depth in [1usize, 5, 15] {
        let plan = nested_plan(depth);
        group.bench_with_input(
            BenchmarkId::new("engine-fixpoint", depth),
            &depth,
            |b, _| b.iter(|| engine.rewrite(&plan, &ctx).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("cost-based-optimize", depth),
            &depth,
            |b, _| b.iter(|| optimizer.optimize(&plan, &ctx).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("execute-unrewritten", depth),
            &depth,
            |b, _| b.iter(|| evaluate(&plan, &catalog).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(rewrite_engine, benches);
criterion_main!(rewrite_engine);
