//! Shared workload builders for the Criterion benches (and the examples).
//!
//! Every experiment in `EXPERIMENTS.md` names one of the workloads below, so
//! the benches, the integration tests and the examples all measure the same
//! data shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use div_algebra::Relation;
use div_datagen::suppliers_parts::{self, SuppliersPartsConfig};
use div_expr::Catalog;

/// A dividend/divisor pair for small-divide experiments:
/// `groups` quotient-candidate groups over `items` shared values, where every
/// `hit_every`-th group contains the whole divisor (and therefore qualifies).
pub fn division_workload(groups: i64, items: i64, hit_every: i64) -> (Relation, Relation) {
    let mut dividend_rows = Vec::new();
    for g in 0..groups {
        let keep_all = hit_every > 0 && g % hit_every == 0;
        for i in 0..items {
            if keep_all || i % 2 == 0 {
                dividend_rows.push(vec![g, i]);
            }
        }
    }
    let divisor_rows: Vec<Vec<i64>> = (0..items).map(|i| vec![i]).collect();
    (
        Relation::from_rows(["a", "b"], dividend_rows).expect("valid dividend"),
        Relation::from_rows(["b"], divisor_rows).expect("valid divisor"),
    )
}

/// A dividend/divisor pair for great-divide experiments: the divisor holds
/// `divisor_groups` groups of `group_size` shared values each.
pub fn great_divide_workload(
    groups: i64,
    items: i64,
    divisor_groups: i64,
    group_size: i64,
) -> (Relation, Relation) {
    let (dividend, _) = division_workload(groups, items, 3);
    let mut divisor_rows = Vec::new();
    for c in 0..divisor_groups {
        for k in 0..group_size.min(items) {
            let b = (c + 2 * k) % items.max(1);
            divisor_rows.push(vec![b, c]);
        }
    }
    (
        dividend,
        Relation::from_rows(["b", "c"], divisor_rows).expect("valid divisor"),
    )
}

/// A suppliers-parts catalog of the given scale, registered under the table
/// names used by queries Q1–Q3 (`supplies`, `parts`).
pub fn suppliers_parts_catalog(suppliers: usize, parts: usize, coverage: f64) -> Catalog {
    let data = suppliers_parts::generate(&SuppliersPartsConfig {
        suppliers,
        parts,
        colors: 4,
        coverage,
        full_suppliers: 0.05,
        seed: 20_061_231,
    });
    let mut catalog = Catalog::new();
    catalog.register("supplies", data.supplies);
    catalog.register("parts", data.parts);
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn division_workload_has_expected_quotient() {
        let (dividend, divisor) = division_workload(30, 10, 3);
        let quotient = dividend.divide(&divisor).unwrap();
        // Exactly the groups 0, 3, 6, … qualify.
        assert_eq!(quotient.len(), 10);
    }

    #[test]
    fn great_divide_workload_is_valid() {
        let (dividend, divisor) = great_divide_workload(20, 8, 5, 3);
        let quotient = dividend.great_divide(&divisor).unwrap();
        assert_eq!(quotient.schema().names(), vec!["a", "c"]);
        assert!(!quotient.is_empty());
    }

    #[test]
    fn suppliers_parts_catalog_contains_both_tables() {
        let catalog = suppliers_parts_catalog(20, 10, 0.6);
        assert!(catalog.contains_table("supplies"));
        assert!(catalog.contains_table("parts"));
    }
}
