//! # division
//!
//! Facade crate of the *division-laws* workspace — a Rust reproduction of
//! Rantzau & Mangold, *Laws for Rewriting Queries Containing Division
//! Operators* (ICDE 2006).
//!
//! The facade re-exports every layer of the system so applications can depend
//! on a single crate:
//!
//! * [`algebra`] — set-semantics relational algebra with small and great
//!   divide (reference semantics),
//! * [`expr`] — logical plans, catalog, reference evaluator,
//! * [`rewrite`] — the seventeen algebraic laws, theorems, rewrite engine and
//!   cost-based optimizer,
//! * [`physical`] — special-purpose division algorithms, physical planner,
//!   partition-parallel execution, and the row/columnar backend selector,
//! * [`columnar`] — the columnar batch representation and vectorized
//!   division kernels behind `ExecutionBackend::Columnar`,
//! * [`sql`] — the `DIVIDE BY … ON` SQL dialect of Section 4,
//! * [`mining`] — frequent itemset discovery via the great divide (Section 3),
//! * [`datagen`] — workload generators used by the examples, tests and
//!   benches.
//!
//! ```
//! use division::prelude::*;
//!
//! let mut catalog = Catalog::new();
//! catalog.register("supplies", relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] });
//! catalog.register("blue_parts", relation! { ["p#"] => [1], [2] });
//! let plan = PlanBuilder::scan("supplies")
//!     .divide(PlanBuilder::scan("blue_parts"))
//!     .build();
//! assert_eq!(evaluate(&plan, &catalog).unwrap(), relation! { ["s#"] => [1] });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use div_algebra as algebra;
pub use div_columnar as columnar;
pub use div_datagen as datagen;
pub use div_expr as expr;
pub use div_mining as mining;
pub use div_physical as physical;
pub use div_rewrite as rewrite;
pub use div_sql as sql;

/// The most commonly used items, re-exported for `use division::prelude::*`.
pub mod prelude {
    pub use div_algebra::{
        relation, AggregateCall, AggregateFunction, CompareOp, Predicate, Relation, Schema, Tuple,
        Value,
    };
    pub use div_columnar::ColumnarBatch;
    pub use div_expr::{evaluate, plans_equivalent_on, Catalog, LogicalPlan, PlanBuilder};
    pub use div_physical::{
        execute, execute_on_backend, execute_with_config, execute_with_stats, plan_query,
        DivisionAlgorithm, ExecutionBackend, GreatDivideAlgorithm, OperatorId, OperatorStats,
        PlannerConfig, QueryTrace, StreamExecutor,
    };
    pub use div_rewrite::optimizer::CostModel;
    pub use div_rewrite::{Optimizer, RewriteContext, RewriteEngine, RuleSet};
    #[allow(deprecated)] // deliberate: the deprecated shim stays reachable through the facade
    pub use div_sql::run_query;
    pub use div_sql::{
        parse_query, translate_query, Cursor, Engine, EngineBuilder, EngineMetrics, Explain,
        MetricsSnapshot, Params, PreparedStatement, QueryOutput,
    };
    pub use div_sql::{Error as SqlError, ParseError};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_all_layers() {
        let mut catalog = Catalog::new();
        catalog.register("r1", relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1] });
        catalog.register("r2", relation! { ["b"] => [1], [2] });
        let plan = PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .build();
        // Logical evaluation, rewriting and physical execution all agree.
        let logical = evaluate(&plan, &catalog).unwrap();
        let engine = RewriteEngine::with_default_rules();
        let ctx = RewriteContext::with_catalog(&catalog);
        let rewritten = engine.rewrite(&plan, &ctx).unwrap().plan;
        assert_eq!(evaluate(&rewritten, &catalog).unwrap(), logical);
        let physical = plan_query(&plan, &PlannerConfig::default()).unwrap();
        assert_eq!(execute(&physical, &catalog).unwrap(), logical);
        assert_eq!(logical, relation! { ["a"] => [1] });
    }
}
