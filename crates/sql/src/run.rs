//! Deprecated free-function shims: parse → translate → plan → execute.
//!
//! These predate the [`Engine`](crate::Engine) facade and — unlike it — skip
//! the rewrite optimizer. They are kept as thin migration shims; new code
//! should construct an `Engine` (see the deprecation notes on each function
//! for the one-line replacement).
//!
//! The paper's pipeline in one call: a `DIVIDE BY … ON` query string goes
//! through the parser and the logical translator of this crate, the physical
//! planner of `div-physical`, and the streaming executor behind the engine's
//! [`Cursor`](crate::Cursor) — these shims keep no execution plumbing of
//! their own; [`run_query`] simply collects a cursor. The materializing
//! backends selected by [`PlannerConfig::backend`] (row-at-a-time,
//! whole-batch columnar, partition-parallel columnar) remain reachable
//! through `div_physical::execute_with_config` for differential testing and
//! the benchmarks; every strategy returns identical relations.

use crate::{parse_query, translate_query};
use div_algebra::Relation;
use div_expr::{Catalog, ExprError};
use div_physical::{plan_query, ExecStats, PhysicalPlan, PlannerConfig};

type Result<T> = std::result::Result<T, ExprError>;

/// Collapse the engine's structured error into the legacy [`ExprError`]
/// these shims promised.
fn flatten(err: crate::Error) -> ExprError {
    match err {
        crate::Error::Plan(err) => err,
        other => ExprError::invalid(other.to_string()),
    }
}

/// Compile a SQL query string down to a physical plan.
///
/// Deprecated shim: it bypasses the rewrite optimizer and collapses parse
/// errors into [`ExprError`]. Build an [`Engine`](crate::Engine) instead —
/// `Engine::prepare(sql)` returns the optimized plan and the new
/// [`Error`](crate::Error) type preserves the parse error as a source.
#[deprecated(
    since = "0.1.0",
    note = "use `div_sql::Engine::prepare` — it runs the rewrite optimizer and \
            preserves structured errors"
)]
pub fn compile_query(sql: &str, catalog: &Catalog, config: &PlannerConfig) -> Result<PhysicalPlan> {
    let query = parse_query(sql).map_err(|e| ExprError::invalid(e.to_string()))?;
    let logical = translate_query(&query, catalog)?;
    plan_query(&logical, config)
}

/// Parse, translate, plan and execute a SQL query, returning the collected
/// result and the execution statistics.
///
/// Deprecated shim: it skips the rewrite optimizer that
/// [`Engine::query`](crate::Engine::query) runs by default. Migrate via
/// `Engine::builder(catalog).planner_config(config).build().query(sql)`.
///
/// Since the streaming redesign this shim carries no execution plumbing of
/// its own: it compiles the plan and drains a
/// [`Cursor`](crate::Cursor) (`Cursor::collect`), so the deprecated
/// surface and the engine run the exact same executor.
#[deprecated(
    since = "0.1.0",
    note = "use `div_sql::Engine::query` — it runs the rewrite optimizer in the loop \
            and returns an incremental `Cursor`"
)]
#[allow(deprecated)]
pub fn run_query(
    sql: &str,
    catalog: &Catalog,
    config: &PlannerConfig,
) -> Result<(Relation, ExecStats)> {
    let physical = compile_query(sql, catalog, config)?;
    let cursor = crate::engine::Cursor::over(&physical, catalog, config).map_err(flatten)?;
    let output = cursor.collect().map_err(flatten)?;
    Ok((output.relation, output.stats))
}

#[cfg(test)]
#[allow(deprecated)] // the shims are exercised here, at their definition site
mod tests {
    use super::*;
    use div_algebra::relation;
    use div_physical::ExecutionBackend;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                      (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";

    #[test]
    fn q2_runs_identically_on_both_backends() {
        let c = catalog();
        let expected = relation! { ["s#"] => [1], [2] };
        for backend in ExecutionBackend::ALL {
            let config = PlannerConfig::with_backend(backend);
            let (result, stats) = run_query(Q2, &c, &config).unwrap();
            assert_eq!(result, expected, "backend {}", backend.name());
            assert_eq!(stats.output_rows, 2, "backend {}", backend.name());
        }
    }

    #[test]
    fn q2_runs_identically_on_the_parallel_columnar_backend() {
        // SQL to result over the Law-2 partition-parallel columnar executor:
        // same bytes for every partition count.
        let c = catalog();
        let expected = relation! { ["s#"] => [1], [2] };
        for parallelism in [2, 4, 7] {
            let config = PlannerConfig::with_parallelism(parallelism);
            let (result, stats) = run_query(Q2, &c, &config).unwrap();
            assert_eq!(result, expected, "parallelism {parallelism}");
            assert_eq!(stats.output_rows, 2);
            assert!(stats.rows_per_operator.contains_key("ColumnarHashDivision"));
        }
    }

    #[test]
    fn parse_errors_surface_as_expr_errors() {
        let c = catalog();
        assert!(run_query("SELECT FROM WHERE", &c, &PlannerConfig::default()).is_err());
        assert!(run_query("SELECT x FROM missing", &c, &PlannerConfig::default()).is_err());
    }
}
