//! Abstract syntax tree of the SQL subset.

use std::fmt;

/// A column reference, optionally qualified with a table alias
/// (`s.p#` or just `p#`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table alias qualifier, if present.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column.
    pub fn bare(column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            column: column.into(),
        }
    }

    /// Qualified column.
    pub fn qualified(qualifier: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(qualifier.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A literal value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlLiteral {
    /// Integer literal.
    Number(i64),
    /// String literal.
    String(String),
}

/// One operand of a comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlOperand {
    /// A column reference.
    Column(ColumnRef),
    /// A literal.
    Literal(SqlLiteral),
    /// A `$name` parameter placeholder, bound at execution time (prepared
    /// statements).
    Parameter(String),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlCompareOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

/// A search condition.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlCondition {
    /// `left op right`.
    Comparison {
        /// Left operand.
        left: SqlOperand,
        /// Operator.
        op: SqlCompareOp,
        /// Right operand.
        right: SqlOperand,
    },
    /// `left AND right`.
    And(Box<SqlCondition>, Box<SqlCondition>),
    /// `left OR right`.
    Or(Box<SqlCondition>, Box<SqlCondition>),
    /// `NOT inner`.
    Not(Box<SqlCondition>),
    /// `EXISTS (subquery)`.
    Exists(Box<Query>),
}

impl SqlCondition {
    /// Flatten a conjunction into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&SqlCondition> {
        match self {
            SqlCondition::And(l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

/// A table factor: a named base table or a parenthesized derived table, each
/// with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    /// Base table, e.g. `supplies AS s`.
    Table {
        /// Table name.
        name: String,
        /// Optional alias.
        alias: Option<String>,
    },
    /// Derived table, e.g. `(SELECT p# FROM parts WHERE …) AS p`.
    Derived {
        /// The subquery.
        query: Box<Query>,
        /// Alias (required by SQL; optional here for robustness).
        alias: Option<String>,
    },
}

impl TableFactor {
    /// The alias if present, otherwise the base-table name (derived tables
    /// without alias have no name).
    pub fn binding_name(&self) -> Option<&str> {
        match self {
            TableFactor::Table { name, alias } => Some(alias.as_deref().unwrap_or(name)),
            TableFactor::Derived { alias, .. } => alias.as_deref(),
        }
    }
}

/// A table reference in the `FROM` clause: a plain factor or the paper's
/// `<quotient>` production.
#[derive(Debug, Clone, PartialEq)]
pub enum TableReference {
    /// A single table factor.
    Factor(TableFactor),
    /// `dividend DIVIDE BY divisor ON condition`.
    DivideBy {
        /// The dividend table reference.
        dividend: Box<TableReference>,
        /// The divisor table reference.
        divisor: Box<TableReference>,
        /// The `ON` search condition.
        condition: SqlCondition,
    },
}

/// An item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// A column reference.
    Column(ColumnRef),
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`? (a no-op under set semantics, but preserved).
    pub distinct: bool,
    /// The select list.
    pub select: Vec<SelectItem>,
    /// The `FROM` clause (one or more table references, combined by Cartesian
    /// product as in SQL).
    pub from: Vec<TableReference>,
    /// The optional `WHERE` condition.
    pub where_clause: Option<SqlCondition>,
}

impl Query {
    /// `true` if any table reference in the `FROM` clause uses `DIVIDE BY`.
    pub fn uses_divide_by(&self) -> bool {
        self.from
            .iter()
            .any(|t| matches!(t, TableReference::DivideBy { .. }))
    }

    /// The set of `$parameter` placeholder names used anywhere in the query
    /// (WHERE clauses, `DIVIDE BY … ON` conditions, derived tables and
    /// `EXISTS` subqueries included).
    pub fn parameters(&self) -> std::collections::BTreeSet<String> {
        fn walk_cond(c: &SqlCondition, out: &mut std::collections::BTreeSet<String>) {
            match c {
                SqlCondition::Comparison { left, right, .. } => {
                    for operand in [left, right] {
                        if let SqlOperand::Parameter(name) = operand {
                            out.insert(name.clone());
                        }
                    }
                }
                SqlCondition::And(l, r) | SqlCondition::Or(l, r) => {
                    walk_cond(l, out);
                    walk_cond(r, out);
                }
                SqlCondition::Not(inner) => walk_cond(inner, out),
                SqlCondition::Exists(query) => walk_query(query, out),
            }
        }
        fn walk_table_ref(t: &TableReference, out: &mut std::collections::BTreeSet<String>) {
            match t {
                TableReference::Factor(TableFactor::Table { .. }) => {}
                TableReference::Factor(TableFactor::Derived { query, .. }) => {
                    walk_query(query, out)
                }
                TableReference::DivideBy {
                    dividend,
                    divisor,
                    condition,
                } => {
                    walk_table_ref(dividend, out);
                    walk_table_ref(divisor, out);
                    walk_cond(condition, out);
                }
            }
        }
        fn walk_query(q: &Query, out: &mut std::collections::BTreeSet<String>) {
            for t in &q.from {
                walk_table_ref(t, out);
            }
            if let Some(cond) = &q.where_clause {
                walk_cond(cond, out);
            }
        }
        let mut out = std::collections::BTreeSet::new();
        walk_query(self, &mut out);
        out
    }

    /// `true` if the `WHERE` clause contains an `EXISTS` (or `NOT EXISTS`)
    /// subquery anywhere.
    pub fn uses_exists(&self) -> bool {
        fn cond_uses_exists(c: &SqlCondition) -> bool {
            match c {
                SqlCondition::Exists(_) => true,
                SqlCondition::And(l, r) | SqlCondition::Or(l, r) => {
                    cond_uses_exists(l) || cond_uses_exists(r)
                }
                SqlCondition::Not(inner) => cond_uses_exists(inner),
                SqlCondition::Comparison { .. } => false,
            }
        }
        self.where_clause.as_ref().is_some_and(cond_uses_exists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_refs_display() {
        assert_eq!(ColumnRef::bare("s#").to_string(), "s#");
        assert_eq!(ColumnRef::qualified("s", "p#").to_string(), "s.p#");
    }

    #[test]
    fn binding_names() {
        let t = TableFactor::Table {
            name: "supplies".into(),
            alias: Some("s".into()),
        };
        assert_eq!(t.binding_name(), Some("s"));
        let bare = TableFactor::Table {
            name: "parts".into(),
            alias: None,
        };
        assert_eq!(bare.binding_name(), Some("parts"));
    }

    #[test]
    fn conjunct_flattening() {
        let a = SqlCondition::Comparison {
            left: SqlOperand::Column(ColumnRef::bare("a")),
            op: SqlCompareOp::Eq,
            right: SqlOperand::Literal(SqlLiteral::Number(1)),
        };
        let cond = SqlCondition::And(
            Box::new(a.clone()),
            Box::new(SqlCondition::And(Box::new(a.clone()), Box::new(a.clone()))),
        );
        assert_eq!(cond.conjuncts().len(), 3);
    }
}
