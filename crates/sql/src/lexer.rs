//! Tokenizer for the SQL subset.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (keywords are recognized case-insensitively by
    /// the parser; the original spelling is preserved here).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// Single-quoted string literal (quotes removed).
    String(String),
    /// `$name` parameter placeholder (sigil removed).
    Parameter(String),
    /// `,`
    Comma,
    /// `(`
    LeftParen,
    /// `)`
    RightParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::String(s) => write!(f, "'{s}'"),
            Token::Parameter(s) => write!(f, "${s}"),
            Token::Comma => write!(f, ","),
            Token::LeftParen => write!(f, "("),
            Token::RightParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
        }
    }
}

/// Tokenize an SQL string.
///
/// Identifiers may contain `#` (for the textbook attribute names `s#`, `p#`)
/// and `_`. Errors are reported as a message naming the offending character.
pub fn tokenize(input: &str) -> Result<Vec<Token>, String> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LeftParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RightParen);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != '\'' {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err("unterminated string literal".to_string());
                }
                i += 1; // closing quote
                tokens.push(Token::String(s));
            }
            '$' => {
                let mut s = String::new();
                i += 1;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '#')
                {
                    s.push(chars[i]);
                    i += 1;
                }
                if s.is_empty() {
                    return Err("`$` must be followed by a parameter name".to_string());
                }
                tokens.push(Token::Parameter(s));
            }
            c if c.is_ascii_digit() => {
                let mut n = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    n.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Number(
                    n.parse().map_err(|e| format!("bad number: {e}"))?,
                ));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '#')
                {
                    s.push(chars[i]);
                    i += 1;
                }
                tokens.push(Token::Ident(s));
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_q2_style_query() {
        let tokens = tokenize(
            "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
        )
        .unwrap();
        assert!(tokens.contains(&Token::Ident("DIVIDE".into())));
        assert!(tokens.contains(&Token::Ident("s#".into())));
        assert!(tokens.contains(&Token::String("blue".into())));
        assert!(tokens.contains(&Token::LeftParen));
        assert!(tokens.contains(&Token::Dot));
    }

    #[test]
    fn tokenizes_comparison_operators() {
        let tokens =
            tokenize("a <= 1 AND b <> 2 AND c >= 3 AND d != 4 AND e < 5 AND f > 6").unwrap();
        assert!(tokens.contains(&Token::LtEq));
        assert!(tokens.contains(&Token::GtEq));
        assert_eq!(tokens.iter().filter(|t| **t == Token::NotEq).count(), 2);
        assert!(tokens.contains(&Token::Lt));
        assert!(tokens.contains(&Token::Gt));
    }

    #[test]
    fn reports_errors() {
        assert!(tokenize("SELECT 'unterminated").is_err());
        assert!(tokenize("SELECT ?").is_err());
        assert!(tokenize("color = $").is_err());
    }

    #[test]
    fn tokenizes_parameter_placeholders() {
        let tokens = tokenize("color = $color AND p# <= $max_p#").unwrap();
        assert!(tokens.contains(&Token::Parameter("color".into())));
        assert!(tokens.contains(&Token::Parameter("max_p#".into())));
        assert_eq!(Token::Parameter("color".into()).to_string(), "$color");
    }

    #[test]
    fn numbers_and_display() {
        let tokens = tokenize("42").unwrap();
        assert_eq!(tokens, vec![Token::Number(42)]);
        assert_eq!(Token::Ident("x".into()).to_string(), "x");
        assert_eq!(Token::String("y".into()).to_string(), "'y'");
        assert_eq!(Token::NotEq.to_string(), "<>");
    }
}
