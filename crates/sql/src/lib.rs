//! # div-sql
//!
//! A small SQL dialect implementing the hypothetical syntax extension of
//! Section 4 of the paper:
//!
//! ```text
//! <table reference> ::= <table factor> | <joined table> | <quotient>
//! <quotient>        ::= <table reference> DIVIDE BY <table reference>
//!                       ON <search condition>
//! ```
//!
//! The crate provides a lexer (including `$name` parameter placeholders), a
//! recursive-descent parser for the `SELECT … FROM … [WHERE …]` subset needed
//! by the paper's queries Q1–Q3 (including derived tables and `NOT EXISTS`
//! subqueries), a translator to [`div_expr::LogicalPlan`]s, and — most
//! importantly — the [`Engine`] facade that runs the whole pipeline with the
//! rewrite optimizer of `div-rewrite` in the loop by default, returns results
//! as an incremental streaming [`Cursor`] (an iterator of columnar batches
//! whose early termination short-circuits the scans), supports prepared
//! statements ([`Engine::prepare`]), structured EXPLAIN reports
//! ([`Engine::explain`], [`Engine::explain_analyze`] with per-operator
//! estimate-vs-actual spans) and a session-wide metrics registry
//! ([`Engine::metrics`], module [`metrics`]). Translation rules:
//!
//! * a `DIVIDE BY … ON` table reference becomes a [`LogicalPlan::SmallDivide`](div_expr::LogicalPlan::SmallDivide)
//!   when every divisor attribute appears in the `ON` clause as a conjunction
//!   of equi-joins (the rule stated in Section 4), and a
//!   [`LogicalPlan::GreatDivide`](div_expr::LogicalPlan::GreatDivide) otherwise;
//! * the double-`NOT EXISTS` formulation of universal quantification (query
//!   Q3) is *detected* and rewritten into a great divide — the rewrite the
//!   paper describes as hard for general optimizers and therefore a major
//!   motivation for first-class division syntax.
//!
//! ```
//! use div_algebra::relation;
//! use div_expr::Catalog;
//! use div_sql::Engine;
//!
//! let mut catalog = Catalog::new();
//! catalog.register("supplies", relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] });
//! catalog.register("parts", relation! { ["p#", "color"] => [1, "blue"], [2, "blue"] });
//!
//! let engine = Engine::new(catalog);
//! let cursor = engine.query(
//!     "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') AS p \
//!      ON s.p# = p.p#",
//! ).unwrap();
//! assert_eq!(cursor.collect_relation().unwrap(), relation! { ["s#"] => [1] });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod engine;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod metrics;
pub mod parser;
pub mod run;

pub use ast::{Query, SelectItem, SqlCondition, SqlOperand, TableFactor, TableReference};
pub use div_physical::{CancelToken, QueryGuard};
pub use engine::{Cursor, Engine, EngineBuilder, Explain, Params, PreparedStatement, QueryOutput};
pub use error::Error;
pub use lexer::{tokenize, Token};
pub use lower::translate_query;
pub use metrics::{EngineMetrics, MetricsSnapshot};
pub use parser::{parse_query, ParseError};
#[allow(deprecated)]
pub use run::{compile_query, run_query};
