//! The unified error type of the [`Engine`](crate::Engine) API.
//!
//! The pre-`Engine` free functions collapsed every failure into
//! [`ExprError`] — most destructively a [`ParseError`], which was flattened
//! into `ExprError::invalid(err.to_string())`, losing the structured source.
//! [`Error`] keeps each pipeline stage's error as its own variant with
//! `std::error::Error::source` chaining, so callers can match on *what*
//! failed instead of grepping substrings.

use crate::parser::ParseError;
use div_expr::ExprError;
use std::fmt;

/// Any failure of the [`Engine`](crate::Engine) pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The SQL text did not parse. The source [`ParseError`] is preserved.
    Parse(ParseError),
    /// Translation, optimization, physical planning or execution failed.
    Plan(ExprError),
    /// The statement uses a `$parameter` for which no value was bound.
    UnboundParameter {
        /// Name of the unbound parameter (without the `$` sigil).
        parameter: String,
    },
    /// A value was bound for a parameter the statement does not use
    /// (almost always a typo in the binding name).
    UnknownParameter {
        /// The offending binding name.
        parameter: String,
        /// The parameters the statement actually declares.
        expected: Vec<String>,
    },
    /// A [`PreparedStatement`](crate::PreparedStatement) was executed against
    /// a catalog that changed after the statement was prepared; the cached
    /// plan may be stale (dropped tables, changed schemas, new constraints).
    StalePlan {
        /// Catalog version the statement was prepared against.
        prepared_version: u64,
        /// Current catalog version.
        catalog_version: u64,
    },
    /// The query's cancellation token was tripped
    /// (see [`CancelToken`](crate::CancelToken)).
    Cancelled {
        /// Operator span that observed the cancellation.
        operator: String,
    },
    /// The query ran past its wall-clock deadline.
    DeadlineExceeded {
        /// Operator span that observed the expiry.
        operator: String,
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
    /// The query's resident-row footprint exceeded its memory budget.
    MemoryBudget {
        /// Operator span whose emission tripped the budget.
        operator: String,
        /// The configured budget, in resident rows.
        budget_rows: usize,
        /// The resident footprint that tripped it.
        resident_rows: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(err) => write!(f, "{err}"),
            Error::Plan(err) => write!(f, "{err}"),
            Error::UnboundParameter { parameter } => {
                write!(f, "parameter `${parameter}` has no bound value")
            }
            Error::UnknownParameter {
                parameter,
                expected,
            } => {
                if expected.is_empty() {
                    write!(
                        f,
                        "binding `${parameter}` does not match any statement parameter \
                         (the statement has none)"
                    )
                } else {
                    write!(
                        f,
                        "binding `${parameter}` does not match any statement parameter \
                         (expected one of: {})",
                        expected
                            .iter()
                            .map(|p| format!("${p}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
            Error::StalePlan {
                prepared_version,
                catalog_version,
            } => write!(
                f,
                "prepared statement is stale: compiled against catalog version \
                 {prepared_version}, but the catalog is now at version {catalog_version}; \
                 prepare the statement again"
            ),
            Error::Cancelled { operator } => {
                write!(f, "query cancelled (at operator {operator})")
            }
            Error::DeadlineExceeded { operator, limit_ms } => {
                write!(
                    f,
                    "deadline of {limit_ms}ms exceeded (at operator {operator})"
                )
            }
            Error::MemoryBudget {
                operator,
                budget_rows,
                resident_rows,
            } => write!(
                f,
                "memory budget of {budget_rows} resident rows exceeded \
                 ({resident_rows} resident, at operator {operator})"
            ),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(err) => Some(err),
            Error::Plan(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ParseError> for Error {
    fn from(err: ParseError) -> Self {
        Error::Parse(err)
    }
}

impl From<ExprError> for Error {
    fn from(err: ExprError) -> Self {
        // The governance trips are lifecycle outcomes, not plan failures —
        // they keep their own variants so servers can map them to typed
        // wire codes without string matching.
        match err {
            ExprError::Cancelled { operator } => Error::Cancelled { operator },
            ExprError::DeadlineExceeded { operator, limit_ms } => {
                Error::DeadlineExceeded { operator, limit_ms }
            }
            ExprError::MemoryBudget {
                operator,
                budget_rows,
                resident_rows,
            } => Error::MemoryBudget {
                operator,
                budget_rows,
                resident_rows,
            },
            other => Error::Plan(other),
        }
    }
}

impl From<div_algebra::AlgebraError> for Error {
    fn from(err: div_algebra::AlgebraError) -> Self {
        Error::Plan(ExprError::from(err))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn parse_errors_keep_their_source() {
        let parse_err = crate::parse_query("SELECT FROM WHERE").unwrap_err();
        let err: Error = parse_err.clone().into();
        // The variant survives — no stringification.
        assert_eq!(err, Error::Parse(parse_err.clone()));
        // And the source chain points at the original ParseError.
        let source = err.source().expect("parse errors chain their source");
        assert_eq!(source.to_string(), parse_err.to_string());
        assert!(source.downcast_ref::<ParseError>().is_some());
    }

    #[test]
    fn plan_errors_keep_their_source() {
        let expr_err = ExprError::UnknownTable {
            table: "missing".into(),
        };
        let err: Error = expr_err.clone().into();
        assert_eq!(err, Error::Plan(expr_err));
        assert!(err.source().unwrap().downcast_ref::<ExprError>().is_some());
    }

    #[test]
    fn parameter_and_staleness_errors_render_context() {
        let err = Error::UnboundParameter {
            parameter: "color".into(),
        };
        assert!(err.to_string().contains("$color"));
        let err = Error::UnknownParameter {
            parameter: "colour".into(),
            expected: vec!["color".into()],
        };
        assert!(err.to_string().contains("$colour"));
        assert!(err.to_string().contains("$color"));
        let err = Error::StalePlan {
            prepared_version: 3,
            catalog_version: 5,
        };
        assert!(err.to_string().contains('3'));
        assert!(err.to_string().contains('5'));
        assert!(err.source().is_none());
    }

    #[test]
    fn governance_trips_convert_to_their_own_variants() {
        let err: Error = ExprError::Cancelled {
            operator: "Filter(x)".into(),
        }
        .into();
        assert_eq!(
            err,
            Error::Cancelled {
                operator: "Filter(x)".into()
            }
        );
        let err: Error = ExprError::DeadlineExceeded {
            operator: "CrossProduct".into(),
            limit_ms: 50,
        }
        .into();
        assert!(matches!(err, Error::DeadlineExceeded { limit_ms: 50, .. }));
        assert!(err.to_string().contains("50ms"));
        let err: Error = ExprError::MemoryBudget {
            operator: "Union".into(),
            budget_rows: 10,
            resident_rows: 25,
        }
        .into();
        assert!(matches!(
            err,
            Error::MemoryBudget {
                budget_rows: 10,
                resident_rows: 25,
                ..
            }
        ));
    }
}
