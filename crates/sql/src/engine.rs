//! The [`Engine`] facade: the paper's whole pipeline behind one session API.
//!
//! The pre-engine free functions (`run_query`, `compile_query`) wired the
//! parser straight into the physical planner, *skipping the contribution of
//! the paper* — the seventeen rewrite laws and the cost model that picks
//! among the plans they generate. [`Engine::query`] runs the full pipeline
//! with the optimizer in the loop by default:
//!
//! ```text
//! SQL text ──parse──► AST ──translate──► LogicalPlan
//!          ──optimize (laws + cost model)──► LogicalPlan
//!          ──plan──► PhysicalPlan ──stream──► Cursor (batches, ExecStats)
//! ```
//!
//! Execution is *streaming by default*: [`Engine::query`] returns a
//! [`Cursor`] — an iterator of [`ColumnarBatch`]es driven by the pull-based
//! executor of [`div_physical::stream`]. Pipelineable operators run
//! chunk-at-a-time, only genuinely blocking operators buffer, and a
//! consumer that stops early (drop, `take(n)`) short-circuits the source
//! scans. [`Engine::query_collect`] keeps the pre-cursor one-call shape
//! ([`QueryOutput`]) for callers that want the whole relation at once.
//!
//! On top of the pipeline the engine adds the two session features a system
//! serving repeated traffic needs:
//!
//! * **Prepared statements** ([`Engine::prepare`]): the optimized physical
//!   plan is compiled once and cached; every execution re-binds the
//!   statement's `$name` parameters and streams the cached plan, skipping
//!   parse, translate, optimization and planning entirely. The statement
//!   records the catalog version it was compiled against and refuses to run
//!   against a mutated catalog ([`Error::StalePlan`]).
//! * **EXPLAIN** ([`Engine::explain`], [`Engine::explain_analyze`]): a
//!   structured [`Explain`] report — logical plan before and after the
//!   rewrite, the laws that fired, cost estimates, the chosen physical
//!   operators, and (for `explain_analyze`) the measured [`ExecStats`],
//!   including a per-operator span tree that lines cost-model estimates up
//!   against actual row counts, wall time, hash probes and resident rows.
//!
//! The engine is also **observable**: every query updates the session-wide
//! [`EngineMetrics`] registry (throughput
//! counters, pipeline time split, latency histogram, per-law application
//! counts — read it with [`Engine::metrics`]), and per-operator wall-clock
//! tracing can be switched on for ordinary queries with
//! [`EngineBuilder::with_tracing`] (`explain_analyze` always traces).
//!
//! ```
//! use div_algebra::relation;
//! use div_expr::Catalog;
//! use div_sql::{Engine, Params};
//!
//! let mut catalog = Catalog::new();
//! catalog.register("supplies", relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] });
//! catalog.register("parts", relation! { ["p#", "color"] => [1, "blue"], [2, "blue"] });
//! let engine = Engine::new(catalog);
//!
//! // Ad-hoc query, optimizer in the loop; the cursor streams batches.
//! let cursor = engine.query(
//!     "SELECT s# FROM supplies AS s DIVIDE BY \
//!      (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
//! )?;
//! assert_eq!(cursor.collect_relation()?, relation! { ["s#"] => [1] });
//!
//! // Compile once, run many: the color literal becomes a parameter.
//! let stmt = engine.prepare(
//!     "SELECT s# FROM supplies AS s DIVIDE BY \
//!      (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#",
//! )?;
//! let blue = stmt.execute_collect(&engine, &Params::new().bind("color", "blue"))?;
//! assert_eq!(blue.relation, relation! { ["s#"] => [1] });
//! # Ok::<(), div_sql::Error>(())
//! ```

use crate::error::Error;
use crate::metrics::{EngineMetrics, MetricsSnapshot};
use crate::{parse_query, translate_query};
use div_algebra::{Relation, Schema, Value};
use div_columnar::ColumnarBatch;
use div_expr::{Catalog, LogicalPlan};
use div_physical::{
    plan_query, ExecStats, ExecutionBackend, OperatorStats, PhysicalPlan, PlannerConfig,
    QueryGuard, StreamExecutor,
};
use div_rewrite::engine::AppliedRule;
use div_rewrite::optimizer::{CostEstimate, CostModel};
use div_rewrite::{OptimizedPlan, Optimizer, RewriteContext, RuleSet};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Result alias of the engine API.
pub type Result<T> = std::result::Result<T, Error>;

/// Values for the `$name` parameters of a statement.
///
/// ```
/// use div_sql::Params;
/// let params = Params::new().bind("color", "blue").bind("min", 3i64);
/// assert_eq!(params.len(), 2);
/// assert!(params.get("color").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    values: BTreeMap<String, Value>,
}

impl Params {
    /// No bindings.
    pub fn new() -> Self {
        Params::default()
    }

    /// This set of bindings with `name` bound to `value` (builder style).
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.values.insert(name.into(), value.into());
        self
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no parameter is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over the bound names.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.values.keys().map(String::as_str)
    }

    pub(crate) fn map(&self) -> &BTreeMap<String, Value> {
        &self.values
    }
}

/// The result of collecting a whole statement: the relation plus the
/// executor's statistics. Produced by [`Cursor::collect`] and the
/// `*_collect` compatibility shims ([`Engine::query_collect`]).
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The result relation.
    pub relation: Relation,
    /// Per-operator row counts and intermediate-result sizes.
    pub stats: ExecStats,
}

/// An incrementally consumable query result: a handle on a running
/// streaming execution ([`div_physical::stream`]).
///
/// A cursor is an `Iterator` over columnar result batches. Batches are
/// produced on demand — upstream operators run only as far as the consumer
/// pulls, so dropping the cursor early (or taking only the first `n`
/// batches) short-circuits the source scans. The result schema is known
/// up front via [`Cursor::schema`]; [`Cursor::collect_relation`] /
/// [`Cursor::collect`] drain the stream into a whole [`Relation`], and
/// [`Cursor::finish_stats`] closes the execution and reports what it
/// actually did (for an early-terminated cursor, `rows_scanned` stays below
/// the table cardinality).
///
/// ```
/// use div_algebra::relation;
/// use div_expr::Catalog;
/// use div_sql::Engine;
///
/// let mut catalog = Catalog::new();
/// catalog.register("parts", relation! { ["p#", "color"] => [1, "blue"], [2, "red"] });
/// let engine = Engine::new(catalog);
/// let cursor = engine.query("SELECT p# FROM parts WHERE color = 'blue'")?;
/// let mut rows = 0;
/// for batch in cursor {
///     rows += batch?.num_rows();
/// }
/// assert_eq!(rows, 1);
/// # Ok::<(), div_sql::Error>(())
/// ```
/// A cursor is **self-contained**: the streaming operator tree inside it
/// holds shared snapshot handles to the tables it scans (not borrows of the
/// engine's catalog), so an open cursor keeps streaming consistent
/// pre-mutation data even while [`Engine::mutate_catalog`] swaps the
/// catalog underneath it — the snapshot-isolation contract concurrent
/// serving relies on.
#[derive(Debug)]
pub struct Cursor {
    exec: Option<StreamExecutor>,
    schema: Schema,
    failed: bool,
    rows: u64,
    opened: Instant,
    metrics: Option<Arc<EngineMetrics>>,
}

impl Cursor {
    /// Start a streaming execution of `physical` over `catalog`. This is
    /// the engine-room constructor shared by [`Engine::query`],
    /// [`PreparedStatement::execute`] and the deprecated free-function
    /// shims; it does *not* check for unbound parameters (the engine does).
    /// The compiled operator tree captures shared handles to the scanned
    /// tables, so the returned cursor does not borrow `catalog`.
    pub(crate) fn over(
        physical: &PhysicalPlan,
        catalog: &Catalog,
        config: &PlannerConfig,
    ) -> Result<Cursor> {
        Cursor::over_guarded(physical, catalog, config, QueryGuard::from_config(config))
    }

    /// [`Cursor::over`] with an explicit [`QueryGuard`] — the constructor
    /// behind [`Engine::query_guarded`]. The guard's deadline (if any) was
    /// armed when the guard was built, so callers should build it
    /// immediately before opening the cursor.
    pub(crate) fn over_guarded(
        physical: &PhysicalPlan,
        catalog: &Catalog,
        config: &PlannerConfig,
        guard: QueryGuard,
    ) -> Result<Cursor> {
        let exec = StreamExecutor::with_guard(physical, catalog, config, guard)?;
        let schema = exec.schema().clone();
        Ok(Cursor {
            exec: Some(exec),
            schema,
            failed: false,
            rows: 0,
            opened: Instant::now(),
            metrics: None,
        })
    }

    /// Attach the engine's metrics registry: the cursor reports its row
    /// count and execution latency there exactly once, when it finishes
    /// (collect, `finish_stats` or drop — whichever comes first).
    pub(crate) fn with_metrics(mut self, metrics: Arc<EngineMetrics>) -> Cursor {
        self.metrics = Some(metrics);
        self
    }

    /// Report this execution to the metrics registry (idempotent: the
    /// registry reference is taken on first use; [`Drop`] calls this too).
    fn record_metrics(&mut self) {
        if let Some(metrics) = self.metrics.take() {
            metrics.record_execution(self.rows, self.opened.elapsed());
        }
    }

    /// The result schema (available before any batch is pulled).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Drain the remaining batches into a relation and discard the
    /// statistics. See [`Cursor::collect`] to keep both.
    pub fn collect_relation(self) -> Result<Relation> {
        Ok(self.collect()?.relation)
    }

    /// Drain the remaining batches into a [`QueryOutput`] (relation plus
    /// the execution statistics, including the streaming executor's
    /// peak-resident-batch accounting).
    pub fn collect(mut self) -> Result<QueryOutput> {
        let mut relation = Relation::empty(self.schema.clone());
        let mut exec = self.exec.take().expect("cursor not yet finished");
        loop {
            match exec.next_batch() {
                Ok(Some(batch)) => {
                    self.rows += batch.num_rows() as u64;
                    for i in 0..batch.num_rows() {
                        relation
                            .insert(batch.row(i))
                            .map_err(div_expr::ExprError::from)?;
                    }
                }
                Ok(None) => break,
                Err(err) => return Err(err.into()),
            }
        }
        let stats = exec.finish();
        if let Some(metrics) = &self.metrics {
            metrics.record_exec_stats(&stats);
        }
        self.record_metrics();
        Ok(QueryOutput { relation, stats })
    }

    /// Close the execution without consuming further batches and return
    /// the statistics of what actually ran — after `take(n)`-style early
    /// termination, `rows_scanned` stays strictly below the scanned
    /// tables' cardinality.
    pub fn finish_stats(mut self) -> ExecStats {
        let stats = self.exec.take().expect("cursor not yet finished").finish();
        if let Some(metrics) = &self.metrics {
            metrics.record_exec_stats(&stats);
        }
        self.record_metrics();
        stats
    }
}

impl Iterator for Cursor {
    type Item = Result<ColumnarBatch>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.exec.as_mut()?.next_batch() {
            Ok(Some(batch)) => {
                self.rows += batch.num_rows() as u64;
                Some(Ok(batch))
            }
            Ok(None) => None,
            Err(err) => {
                self.failed = true;
                Some(Err(err.into()))
            }
        }
    }
}

impl Drop for Cursor {
    fn drop(&mut self) {
        // An abandoned cursor (early drop, error mid-stream) still counts
        // as one execution; `record_metrics` is a no-op when the cursor
        // already reported on collect/finish.
        self.record_metrics();
    }
}

/// Builder for a customized [`Engine`].
///
/// ```
/// use div_expr::Catalog;
/// use div_physical::PlannerConfig;
/// use div_rewrite::optimizer::CostModel;
/// use div_rewrite::RuleSet;
/// use div_sql::Engine;
///
/// let engine = Engine::builder(Catalog::new())
///     .planner_config(PlannerConfig::with_parallelism(4))
///     .rule_set(RuleSet::default_rules())
///     .cost_model(CostModel::default())
///     .build();
/// assert_eq!(engine.planner_config().parallelism, 4);
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    catalog: Catalog,
    config: PlannerConfig,
    rules: RuleSet,
    cost_model: CostModel,
    optimize: bool,
}

impl EngineBuilder {
    /// Replace the planner configuration (division algorithms, streaming
    /// `batch_size`, `parallelism`). The engine always executes through the
    /// streaming path; `config.backend` only selects the executor of the
    /// materializing compatibility layer (`div_physical::execute_with_config`),
    /// which differential tests run side by side with the engine.
    pub fn planner_config(mut self, config: PlannerConfig) -> Self {
        self.config = config;
        self
    }

    /// Replace the rewrite rule set the optimizer searches over.
    pub fn rule_set(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Replace the cost model the optimizer ranks plans with.
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Disable the rewrite optimizer: plans go from the translator straight
    /// to the physical planner, like the pre-engine pipeline. Useful for
    /// differential testing and for measuring what the laws buy.
    pub fn without_optimizer(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// Set a default wall-clock deadline for every query this engine runs —
    /// shorthand for [`PlannerConfig::deadline`]. The clock starts when each
    /// cursor opens; a query that outlives it aborts at its next batch
    /// boundary with [`Error::DeadlineExceeded`]. Per-query guards
    /// ([`Engine::query_guarded`]) override this default.
    pub fn with_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.config = self.config.deadline(deadline);
        self
    }

    /// Set a default resident-row memory budget for every query this engine
    /// runs — shorthand for [`PlannerConfig::memory_budget_rows`]. A query
    /// whose executor-resident footprint (in-flight batches plus blocking
    /// state) exceeds the budget aborts with [`Error::MemoryBudget`].
    /// Per-query guards ([`Engine::query_guarded`]) override this default.
    pub fn with_memory_budget(mut self, budget_rows: usize) -> Self {
        self.config = self.config.memory_budget_rows(budget_rows);
        self
    }

    /// Let blocking hash operators spill to disk instead of aborting when
    /// the memory budget would trip — shorthand for
    /// [`PlannerConfig::spill_to_disk`]. Only meaningful together with
    /// [`EngineBuilder::with_memory_budget`]: without a budget there is no
    /// pressure signal and the flag is inert. Results are byte-identical to
    /// the in-memory operators; `ExecStats::spill_partitions` (and the
    /// `spill` counters in [`crate::MetricsSnapshot`]) show whether a query
    /// actually spilled.
    pub fn with_spill_to_disk(mut self, spill: bool) -> Self {
        self.config = self.config.spill_to_disk(spill);
        self
    }

    /// Switch per-operator wall-clock tracing on (or off) for ordinary
    /// queries — shorthand for setting [`PlannerConfig::tracing`].
    ///
    /// With tracing on, every execution's [`ExecStats::operators`] span tree
    /// carries open/next/close wall time per operator. Row, probe and
    /// resident-row attribution is always on regardless of this flag; it
    /// only gates the clock reads. Defaults to `false`;
    /// [`Engine::explain_analyze`] always traces its execution.
    pub fn with_tracing(mut self, tracing: bool) -> Self {
        self.config.tracing = tracing;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> Engine {
        Engine {
            catalog: RwLock::new(Arc::new(self.catalog)),
            config: self.config,
            optimizer: Optimizer::new()
                .with_rules(self.rules)
                .with_cost_model(self.cost_model),
            optimize: self.optimize,
            compile_count: AtomicU64::new(0),
            metrics: Arc::new(EngineMetrics::default()),
            prepared_cache: Mutex::new(BTreeMap::new()),
        }
    }
}

/// A SQL session: a catalog plus the configured optimize-and-execute
/// pipeline. See the [module documentation](self) for an overview.
///
/// The engine is `Send + Sync` and designed to be shared (`Arc<Engine>`)
/// across threads: the catalog lives behind a snapshot scheme — readers
/// take a cheap [`Arc<Catalog>`] snapshot ([`Engine::catalog`]) that every
/// step of one statement (compile, version check, execute) runs against,
/// while [`Engine::mutate_catalog`] applies writes to a copy and swaps the
/// snapshot in atomically. A statement therefore never observes a
/// half-applied mutation, and open [`Cursor`]s keep streaming their
/// pre-mutation snapshot.
#[derive(Debug)]
pub struct Engine {
    /// The current catalog snapshot. Readers clone the `Arc` (read lock held
    /// only for the clone); `mutate_catalog` briefly takes the write lock to
    /// swap in the successor snapshot.
    catalog: RwLock<Arc<Catalog>>,
    config: PlannerConfig,
    optimizer: Optimizer,
    optimize: bool,
    compile_count: AtomicU64,
    metrics: Arc<EngineMetrics>,
    /// Compiled statements keyed by SQL text, so repeated
    /// [`Engine::prepare`] calls for the same statement reuse one
    /// compilation. Entries are validated against the catalog version on
    /// lookup; the cache is bounded by [`PREPARED_CACHE_CAPACITY`].
    prepared_cache: Mutex<BTreeMap<String, PreparedStatement>>,
}

/// Maximum number of statements the engine's prepared-plan cache retains.
const PREPARED_CACHE_CAPACITY: usize = 128;

/// A statement compiled down to its optimized physical plan.
///
/// Produced by [`Engine::prepare`]; executed with
/// [`PreparedStatement::execute`]. The expensive pipeline (parse → translate
/// → optimize → plan) ran exactly once, at prepare time; each execution only
/// substitutes the `$name` parameter bindings into a copy of the cached plan
/// template and runs it.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    sql: String,
    template: Arc<PhysicalPlan>,
    parameters: BTreeSet<String>,
    catalog_version: u64,
    applied: Vec<AppliedRule>,
}

/// What one compilation produced (shared by `query`, `prepare`, `explain`).
struct Compiled {
    logical: LogicalPlan,
    optimized: LogicalPlan,
    applied: Vec<AppliedRule>,
    cost_before: CostEstimate,
    cost_after: CostEstimate,
    alternatives_considered: usize,
    physical: PhysicalPlan,
}

impl Engine {
    /// An engine over `catalog` with the default planner configuration, the
    /// full default rule set and the default cost model — the optimizer is
    /// **in the loop by default**.
    pub fn new(catalog: Catalog) -> Engine {
        Engine::builder(catalog).build()
    }

    /// Start building a customized engine.
    pub fn builder(catalog: Catalog) -> EngineBuilder {
        EngineBuilder {
            catalog,
            config: PlannerConfig::default(),
            rules: RuleSet::default_rules(),
            cost_model: CostModel::default(),
            optimize: true,
        }
    }

    /// The current catalog snapshot.
    ///
    /// The returned handle is immutable and stable: concurrent
    /// [`Engine::mutate_catalog`] calls swap the engine's snapshot but never
    /// change a handle already taken, so a caller that binds the snapshot
    /// once sees one consistent catalog version across any number of reads.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog.read())
    }

    /// Mutable access to the catalog through exclusive engine ownership.
    ///
    /// Deprecated: it requires `&mut Engine`, which a shared
    /// (`Arc<Engine>`) serving deployment cannot produce — use
    /// [`Engine::mutate_catalog`], which works through `&self`.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::mutate_catalog, which works through a shared engine"
    )]
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        Arc::make_mut(self.catalog.get_mut())
    }

    /// Apply a catalog mutation atomically and swap in the successor
    /// snapshot.
    ///
    /// The closure runs on a private copy of the current catalog (cheap:
    /// tables are shared `Arc` handles, so the copy is metadata-sized);
    /// statements compiled against the old snapshot keep executing it, and
    /// every statement that starts after `mutate_catalog` returns sees the
    /// whole mutation. Mutations that change the catalog (register, drop,
    /// constraint declarations) bump the catalog version, which invalidates
    /// prepared statements ([`Error::StalePlan`]) and the engine's prepared
    /// cache entries.
    ///
    /// ```
    /// use div_algebra::relation;
    /// use div_expr::Catalog;
    /// use div_sql::Engine;
    ///
    /// let engine = Engine::new(Catalog::new());
    /// engine.mutate_catalog(|catalog| {
    ///     catalog.register("parts", relation! { ["p#"] => [1], [2] });
    /// });
    /// assert_eq!(engine.query("SELECT p# FROM parts")?.collect_relation()?.len(), 2);
    /// # Ok::<(), div_sql::Error>(())
    /// ```
    pub fn mutate_catalog<R>(&self, mutate: impl FnOnce(&mut Catalog) -> R) -> R {
        let mut slot = self.catalog.write();
        let mut next = Catalog::clone(&slot);
        let out = mutate(&mut next);
        *slot = Arc::new(next);
        out
    }

    /// The planner configuration in use.
    pub fn planner_config(&self) -> &PlannerConfig {
        &self.config
    }

    /// `true` when the rewrite optimizer runs inside [`Engine::query`] /
    /// [`Engine::prepare`] (the default).
    pub fn optimizer_enabled(&self) -> bool {
        self.optimize
    }

    /// How many statements this engine has compiled (parse → translate →
    /// optimize → plan). Executing a [`PreparedStatement`] does *not*
    /// compile, which is the point of preparing:
    ///
    /// ```
    /// use div_algebra::relation;
    /// use div_expr::Catalog;
    /// use div_sql::{Engine, Params};
    ///
    /// let mut catalog = Catalog::new();
    /// catalog.register("parts", relation! { ["p#", "color"] => [1, "blue"], [2, "red"] });
    /// let engine = Engine::new(catalog);
    /// let stmt = engine.prepare("SELECT p# FROM parts WHERE color = $color")?;
    /// assert_eq!(engine.compile_count(), 1);
    /// for color in ["blue", "red", "blue"] {
    ///     stmt.execute_collect(&engine, &Params::new().bind("color", color))?;
    /// }
    /// assert_eq!(engine.compile_count(), 1); // still one compilation
    /// # Ok::<(), div_sql::Error>(())
    /// ```
    pub fn compile_count(&self) -> u64 {
        self.compile_count.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of the session-wide metrics registry:
    /// queries executed, rows returned, the parse/optimize/plan/execute
    /// time split, the execution-latency histogram, prepared-statement
    /// cache hits and misses, and per-rewrite-law application counts.
    ///
    /// The snapshot renders as text ([`fmt::Display`]) or JSON
    /// ([`MetricsSnapshot::to_json`]).
    ///
    /// ```
    /// use div_algebra::relation;
    /// use div_expr::Catalog;
    /// use div_sql::Engine;
    ///
    /// let mut catalog = Catalog::new();
    /// catalog.register("parts", relation! { ["p#"] => [1], [2], [3] });
    /// let engine = Engine::new(catalog);
    /// engine.query("SELECT p# FROM parts")?.collect_relation()?;
    /// let metrics = engine.metrics();
    /// assert_eq!(metrics.queries_executed, 1);
    /// assert_eq!(metrics.rows_returned, 3);
    /// # Ok::<(), div_sql::Error>(())
    /// ```
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Parse `sql`, crediting the time to the metrics registry.
    fn parse_timed(&self, sql: &str) -> Result<crate::Query> {
        let started = Instant::now();
        let query = parse_query(sql)?;
        self.metrics.add_parse(started.elapsed());
        Ok(query)
    }

    /// Parse, translate, optimize and plan `sql`, and open a streaming
    /// [`Cursor`] over the result.
    ///
    /// The cursor is an iterator of columnar batches: execution proceeds
    /// only as far as the consumer pulls, so `cursor.take(1)` or an early
    /// drop stops the source scans short. Collect everything with
    /// [`Cursor::collect_relation`], or use [`Engine::query_collect`] for
    /// the one-call materializing form.
    ///
    /// ```
    /// use div_algebra::relation;
    /// use div_expr::Catalog;
    /// use div_sql::Engine;
    ///
    /// let mut catalog = Catalog::new();
    /// catalog.register(
    ///     "supplies",
    ///     relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [3, 1], [3, 2] },
    /// );
    /// let engine = Engine::new(catalog);
    /// let mut cursor = engine.query("SELECT s# FROM supplies WHERE p# = 1")?;
    /// assert_eq!(cursor.schema().names(), vec!["s#"]);
    /// // Batch-at-a-time consumption; each batch is a ColumnarBatch.
    /// let mut rows = 0;
    /// while let Some(batch) = cursor.next() {
    ///     rows += batch?.num_rows();
    /// }
    /// assert_eq!(rows, 3);
    /// let stats = cursor.finish_stats();
    /// assert_eq!(stats.output_rows, 3);
    /// # Ok::<(), div_sql::Error>(())
    /// ```
    ///
    /// Statements with `$name` parameters cannot run ad hoc — prepare them
    /// and bind values, or use [`Engine::query_with_params`].
    pub fn query(&self, sql: &str) -> Result<Cursor> {
        self.query_with_params(sql, &Params::new())
    }

    /// [`Engine::query`] with `$name` parameter bindings applied.
    ///
    /// Unlike the prepare/execute path — which must optimize with the
    /// placeholders still unresolved — the bindings are known here, so they
    /// are substituted into the logical plan *before* the optimizer runs and
    /// the query gets the same rewrite search as its all-literal equivalent.
    pub fn query_with_params(&self, sql: &str, params: &Params) -> Result<Cursor> {
        // One snapshot for the whole statement: compile and execute see the
        // same catalog version even under concurrent `mutate_catalog`.
        let catalog = self.catalog();
        let query = self.parse_timed(sql)?;
        check_bindings(params, &query.parameters())?;
        let compiled = self.compile_parsed(&query, params, &catalog)?;
        self.cursor_for(&compiled.physical, &catalog)
    }

    /// [`Engine::query_with_params`] under an explicit [`QueryGuard`]:
    /// the caller-supplied guard *replaces* the engine's config-derived
    /// default (deadline / budget set at build time), so a serving session
    /// can attach its own [`CancelToken`](div_physical::CancelToken) and
    /// per-session limits. Build the guard immediately before this call —
    /// deadlines are armed at guard construction.
    ///
    /// ```
    /// use div_algebra::relation;
    /// use div_expr::Catalog;
    /// use div_sql::{CancelToken, Engine, Params, QueryGuard};
    ///
    /// let mut catalog = Catalog::new();
    /// catalog.register("parts", relation! { ["p#"] => [1], [2] });
    /// let engine = Engine::new(catalog);
    /// let token = CancelToken::new();
    /// let guard = QueryGuard::default().with_token(token.clone());
    /// let cursor = engine.query_guarded("SELECT p# FROM parts", &Params::new(), guard)?;
    /// token.cancel();
    /// // The next pull observes the trip.
    /// let err = cursor.collect().unwrap_err();
    /// assert!(matches!(err, div_sql::Error::Cancelled { .. }));
    /// # Ok::<(), div_sql::Error>(())
    /// ```
    pub fn query_guarded(&self, sql: &str, params: &Params, guard: QueryGuard) -> Result<Cursor> {
        let catalog = self.catalog();
        let query = self.parse_timed(sql)?;
        check_bindings(params, &query.parameters())?;
        let compiled = self.compile_parsed(&query, params, &catalog)?;
        self.cursor_guarded(&compiled.physical, &catalog, &self.config, guard)
    }

    /// [`Engine::query`], fully collected: the compatibility shim that
    /// returns the pre-cursor [`QueryOutput`] (whole relation plus
    /// statistics) in one call.
    pub fn query_collect(&self, sql: &str) -> Result<QueryOutput> {
        self.query(sql)?.collect()
    }

    /// [`Engine::query_with_params`], fully collected (see
    /// [`Engine::query_collect`]).
    pub fn query_collect_with_params(&self, sql: &str, params: &Params) -> Result<QueryOutput> {
        self.query_with_params(sql, params)?.collect()
    }

    /// Optimize, plan and execute an already-translated logical plan,
    /// collecting the whole result.
    ///
    /// This is the tail of [`Engine::query_collect`] without the SQL front
    /// end, for callers that build [`LogicalPlan`]s programmatically; use
    /// [`Engine::stream_logical`] for the incremental form.
    pub fn execute_logical(&self, logical: &LogicalPlan) -> Result<QueryOutput> {
        self.stream_logical(logical)?.collect()
    }

    /// Optimize and plan an already-translated logical plan, and open a
    /// streaming [`Cursor`] over the result — the tail of [`Engine::query`]
    /// without the SQL front end.
    pub fn stream_logical(&self, logical: &LogicalPlan) -> Result<Cursor> {
        let catalog = self.catalog();
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let optimized = self.optimize_plan(logical, &catalog)?;
        self.metrics.add_optimize(started.elapsed());
        self.metrics.record_laws(&optimized.applied);
        let started = Instant::now();
        let physical = plan_query(&optimized.plan, &self.config)?;
        self.metrics.add_plan(started.elapsed());
        self.cursor_for(&physical, &catalog)
    }

    /// Compile `sql` into a [`PreparedStatement`] holding the optimized
    /// physical plan. See [`PreparedStatement`] for the execution contract.
    ///
    /// Preparing the same SQL text twice against an unchanged catalog is
    /// answered from a bounded per-engine plan cache without recompiling
    /// (the returned statements share one plan `Arc`); catalog mutations
    /// invalidate cached entries. Hits and misses are counted in
    /// [`Engine::metrics`].
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        // One snapshot for the whole prepare: the cache-validity check and
        // the recorded `catalog_version` agree even if a concurrent
        // `mutate_catalog` lands mid-call.
        let catalog = self.catalog();
        self.metrics.record_prepare();
        if let Some(cached) = self.prepared_cache.lock().get(sql) {
            if cached.catalog_version == catalog.version() {
                self.metrics.record_prepared_cache(true);
                return Ok(cached.clone());
            }
        }
        self.metrics.record_prepared_cache(false);
        let query = self.parse_timed(sql)?;
        let declared = query.parameters();
        let compiled = self.compile_parsed(&query, &Params::new(), &catalog)?;
        let statement = PreparedStatement {
            sql: sql.to_string(),
            template: Arc::new(compiled.physical),
            parameters: declared,
            catalog_version: catalog.version(),
            applied: compiled.applied,
        };
        let mut cache = self.prepared_cache.lock();
        if cache.len() >= PREPARED_CACHE_CAPACITY && !cache.contains_key(sql) {
            // Bound the cache by evicting an arbitrary entry (the map is
            // small and keyed by SQL text; LRU precision is not worth a
            // recency list here).
            if let Some(evict) = cache.keys().next().cloned() {
                cache.remove(&evict);
            }
        }
        cache.insert(sql.to_string(), statement.clone());
        Ok(statement)
    }

    /// Compile `sql` and report the whole pipeline without executing it.
    pub fn explain(&self, sql: &str) -> Result<Explain> {
        let catalog = self.catalog();
        let compiled = self.compile(sql, &catalog)?;
        Ok(self.explain_from(sql, compiled, None, &catalog))
    }

    /// [`Engine::explain`] plus an actual execution: the report additionally
    /// carries the measured [`ExecStats`]. The execution runs through the
    /// streaming path with per-operator tracing forced **on** (regardless of
    /// [`EngineBuilder::with_tracing`]), so the report annotates every
    /// physical operator with its actual row count, wall time, hash probes
    /// and resident-row peak next to the cost-model estimate. Statements
    /// with parameters cannot be analyzed without bindings — pass them via
    /// [`Engine::explain_analyze_with_params`].
    pub fn explain_analyze(&self, sql: &str) -> Result<Explain> {
        self.explain_analyze_with_params(sql, &Params::new())
    }

    /// [`Engine::explain_analyze`] with `$name` parameter bindings applied.
    pub fn explain_analyze_with_params(&self, sql: &str, params: &Params) -> Result<Explain> {
        let catalog = self.catalog();
        let query = self.parse_timed(sql)?;
        check_bindings(params, &query.parameters())?;
        let compiled = self.compile_parsed(&query, params, &catalog)?;
        // Analysis is explicitly about per-operator behaviour: force the
        // span-timing flag on for this one execution.
        let mut config = self.config;
        config.tracing = true;
        let output = self
            .cursor_with_config(&compiled.physical, &catalog, &config)?
            .collect()?;
        Ok(self.explain_from(sql, compiled, Some(output.stats), &catalog))
    }

    fn explain_from(
        &self,
        sql: &str,
        compiled: Compiled,
        stats: Option<ExecStats>,
        catalog: &Catalog,
    ) -> Explain {
        // Cardinality estimates per operator, in the same pre-order the
        // physical plan (and the executors' OperatorId numbering) uses:
        // `plan_query` maps logical nodes to physical operators 1:1, so a
        // pre-order walk of the optimized logical plan lines up with the
        // physical tree.
        let ctx = RewriteContext::with_catalog(catalog);
        let model = self.optimizer.cost_model();
        let mut estimated_rows = Vec::with_capacity(compiled.physical.operator_count());
        compiled
            .optimized
            .visit(&mut |node| estimated_rows.push(model.cardinality(node, &ctx)));
        debug_assert_eq!(estimated_rows.len(), compiled.physical.operator_count());
        Explain {
            sql: sql.to_string(),
            logical: compiled.logical,
            optimized: compiled.optimized,
            applied: compiled.applied,
            cost_before: compiled.cost_before,
            cost_after: compiled.cost_after,
            alternatives_considered: compiled.alternatives_considered,
            physical: compiled.physical,
            estimated_rows,
            backend: self.config.backend,
            parallelism: self.config.parallelism,
            batch_size: self.config.batch_size,
            stats,
        }
    }

    fn compile(&self, sql: &str, catalog: &Catalog) -> Result<Compiled> {
        let query = self.parse_timed(sql)?;
        self.compile_parsed(&query, &Params::new(), catalog)
    }

    /// The shared compile pipeline over one catalog snapshot. Known
    /// `params` are bound into the logical plan before optimization (empty
    /// for `prepare`, whose placeholders must survive into the cached
    /// template).
    fn compile_parsed(
        &self,
        query: &crate::Query,
        params: &Params,
        catalog: &Catalog,
    ) -> Result<Compiled> {
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        let mut logical = translate_query(query, catalog)?;
        if !params.is_empty() {
            logical = logical.bind_parameters(params.map());
        }
        let started = Instant::now();
        let optimized = self.optimize_plan(&logical, catalog)?;
        self.metrics.add_optimize(started.elapsed());
        self.metrics.record_laws(&optimized.applied);
        let started = Instant::now();
        let physical = plan_query(&optimized.plan, &self.config)?;
        self.metrics.add_plan(started.elapsed());
        Ok(Compiled {
            logical,
            optimized: optimized.plan,
            applied: optimized.applied,
            cost_before: optimized.original_cost,
            cost_after: optimized.cost,
            alternatives_considered: optimized.alternatives_considered,
            physical,
        })
    }

    fn optimize_plan(&self, logical: &LogicalPlan, catalog: &Catalog) -> Result<OptimizedPlan> {
        let ctx = RewriteContext::with_catalog(catalog);
        if !self.optimize {
            let cost = self.optimizer.cost_model().cost(logical, &ctx);
            return Ok(OptimizedPlan {
                plan: logical.clone(),
                cost,
                original_cost: cost,
                alternatives_considered: 0,
                applied: Vec::new(),
            });
        }
        Ok(self.optimizer.optimize(logical, &ctx)?)
    }

    /// Open a streaming cursor over a fully bound physical plan against one
    /// catalog snapshot, rejecting plans that still carry `$name`
    /// placeholders.
    fn cursor_for(&self, physical: &PhysicalPlan, catalog: &Catalog) -> Result<Cursor> {
        self.cursor_with_config(physical, catalog, &self.config)
    }

    /// [`Engine::cursor_for`] with an overridden planner configuration
    /// (used by `explain_analyze` to force span timing on).
    fn cursor_with_config(
        &self,
        physical: &PhysicalPlan,
        catalog: &Catalog,
        config: &PlannerConfig,
    ) -> Result<Cursor> {
        // The config-derived guard arms the engine-default deadline/budget
        // here, at cursor-open time.
        self.cursor_guarded(physical, catalog, config, QueryGuard::from_config(config))
    }

    /// The guard-explicit cursor opener every execution path funnels into.
    fn cursor_guarded(
        &self,
        physical: &PhysicalPlan,
        catalog: &Catalog,
        config: &PlannerConfig,
        guard: QueryGuard,
    ) -> Result<Cursor> {
        if physical.has_parameters() {
            let parameter = physical
                .parameters()
                .into_iter()
                .next()
                .expect("has_parameters implies at least one name");
            return Err(Error::UnboundParameter { parameter });
        }
        Ok(Cursor::over_guarded(physical, catalog, config, guard)?
            .with_metrics(Arc::clone(&self.metrics)))
    }
}

/// Reject bindings for parameters the statement does not declare.
fn check_bindings(params: &Params, declared: &BTreeSet<String>) -> Result<()> {
    for name in params.names() {
        if !declared.contains(name) {
            return Err(Error::UnknownParameter {
                parameter: name.to_string(),
                expected: declared.iter().cloned().collect(),
            });
        }
    }
    Ok(())
}

impl PreparedStatement {
    /// The SQL text the statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The `$name` parameters the statement declares.
    pub fn parameters(&self) -> &BTreeSet<String> {
        &self.parameters
    }

    /// The cached physical plan template (parameters still unbound). The
    /// `Arc` is shared, not copied, across [`PreparedStatement::clone`] —
    /// pointer identity demonstrates that executions reuse one compilation.
    pub fn plan(&self) -> &Arc<PhysicalPlan> {
        &self.template
    }

    /// The rewrite laws the optimizer applied when the statement was
    /// prepared.
    pub fn laws_applied(&self) -> &[AppliedRule] {
        &self.applied
    }

    /// Catalog version the statement was compiled against.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// Bind `params` into a copy of the cached plan and open a streaming
    /// [`Cursor`] over it on `engine` — no parsing, translation,
    /// optimization or planning happens here. Use
    /// [`PreparedStatement::execute_collect`] for the one-call
    /// materializing form.
    ///
    /// # Errors
    ///
    /// * [`Error::StalePlan`] when the engine's catalog has been mutated
    ///   since [`Engine::prepare`];
    /// * [`Error::UnknownParameter`] when `params` binds a name the
    ///   statement does not declare;
    /// * [`Error::UnboundParameter`] when a declared parameter has no
    ///   binding.
    pub fn execute(&self, engine: &Engine, params: &Params) -> Result<Cursor> {
        let guard = QueryGuard::from_config(engine.planner_config());
        self.execute_guarded(engine, params, guard)
    }

    /// [`PreparedStatement::execute`] under an explicit [`QueryGuard`] —
    /// the caller's guard replaces the engine's config-derived default,
    /// exactly as in [`Engine::query_guarded`].
    pub fn execute_guarded(
        &self,
        engine: &Engine,
        params: &Params,
        guard: QueryGuard,
    ) -> Result<Cursor> {
        // One snapshot for the version check *and* the execution: a
        // concurrent `mutate_catalog` between the two cannot slip a changed
        // catalog under a plan that just passed validation.
        let catalog = engine.catalog();
        let catalog_version = catalog.version();
        if catalog_version != self.catalog_version {
            return Err(Error::StalePlan {
                prepared_version: self.catalog_version,
                catalog_version,
            });
        }
        check_bindings(params, &self.parameters)?;
        if params.is_empty() {
            // Nothing to substitute — stream the cached template directly
            // (`cursor_guarded` still rejects unbound placeholders).
            return engine.cursor_guarded(&self.template, &catalog, engine.planner_config(), guard);
        }
        let bound = self.template.bind_parameters(params.map());
        engine.cursor_guarded(&bound, &catalog, engine.planner_config(), guard)
    }

    /// [`PreparedStatement::execute`], fully collected into a
    /// [`QueryOutput`].
    pub fn execute_collect(&self, engine: &Engine, params: &Params) -> Result<QueryOutput> {
        self.execute(engine, params)?.collect()
    }
}

/// The structured report produced by [`Engine::explain`] /
/// [`Engine::explain_analyze`].
///
/// The [`fmt::Display`] rendering is stable: section headers and their order
/// are part of the API contract (tools may parse them).
#[derive(Debug, Clone)]
pub struct Explain {
    /// The SQL text.
    pub sql: String,
    /// Logical plan as translated from the SQL, before any rewrite.
    pub logical: LogicalPlan,
    /// Logical plan after the cost-based rewrite (equal to `logical` when no
    /// law fired or the optimizer is disabled).
    pub optimized: LogicalPlan,
    /// The law applications the optimizer chose, pass by pass.
    pub applied: Vec<AppliedRule>,
    /// Estimated cost of the original plan.
    pub cost_before: CostEstimate,
    /// Estimated cost of the chosen plan.
    pub cost_after: CostEstimate,
    /// Number of alternative plans the greedy search costed.
    pub alternatives_considered: usize,
    /// The physical plan the engine would execute (parameters unbound).
    pub physical: PhysicalPlan,
    /// Cost-model cardinality estimate per physical operator, indexed by
    /// the operator's pre-order (depth-first) position — the same numbering
    /// as [`div_physical::OperatorId`] and the lines of
    /// [`PhysicalPlan::explain`]. `explain_analyze` lines these up against
    /// the measured per-operator row counts.
    pub estimated_rows: Vec<f64>,
    /// The [`ExecutionBackend`] of the engine's [`PlannerConfig`]. The
    /// engine itself always executes through the streaming path; this is
    /// the backend the *materializing compatibility layer*
    /// (`div_physical::execute_with_config`) would use for the same config
    /// — relevant for differential testing.
    pub backend: ExecutionBackend,
    /// Partition parallelism of the engine's [`PlannerConfig`] (consulted
    /// by the streaming executor's per-chunk filter kernels and by the
    /// materializing compatibility layer's partition-parallel kernels).
    pub parallelism: usize,
    /// Chunk size of the streaming execution.
    pub batch_size: usize,
    /// Measured execution statistics — `Some` only for
    /// [`Engine::explain_analyze`].
    pub stats: Option<ExecStats>,
}

impl Explain {
    /// Names of the laws that fired, in application order.
    pub fn laws_fired(&self) -> Vec<&str> {
        self.applied.iter().map(|a| a.rule.as_str()).collect()
    }

    /// `true` when the optimizer changed the plan.
    pub fn rewritten(&self) -> bool {
        !self.applied.is_empty()
    }

    /// The measured per-operator span tree, in [`div_physical::OperatorId`]
    /// pre-order — `Some` only for [`Engine::explain_analyze`] reports.
    pub fn operator_stats(&self) -> Option<&[OperatorStats]> {
        self.stats
            .as_ref()
            .filter(|s| !s.operators.is_empty())
            .map(|s| s.operators.as_slice())
    }

    /// A canonical one-line signature of the physical plan: operator labels
    /// in pre-order with children parenthesized, e.g.
    /// `HashDivide(Scan r1, Scan r2)`. Two compilations of the same query
    /// produce equal signatures iff they chose the same physical shape, so
    /// differential harnesses can compare optimizer-on vs optimizer-off
    /// plans (or assert a rewrite actually changed the shape) without
    /// string-diffing the full multi-line rendering.
    pub fn plan_signature(&self) -> String {
        fn walk(plan: &PhysicalPlan, out: &mut String) {
            out.push_str(&plan.label());
            let children = plan.children();
            if children.is_empty() {
                return;
            }
            out.push('(');
            for (i, child) in children.into_iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                walk(child, out);
            }
            out.push(')');
        }
        let mut out = String::new();
        walk(&self.physical, &mut out);
        out
    }

    /// Per-operator estimation error (the *q-error*: the larger of
    /// estimate and actual divided by the smaller, both clamped to ≥ 1, so
    /// a perfect estimate scores 1.0) — `Some` only when the report carries
    /// measured stats whose span tree matches the physical plan.
    ///
    /// This is the feedback signal an adaptive re-optimizer would consume;
    /// see the roadmap's "learned/adaptive re-optimization" item.
    pub fn estimation_errors(&self) -> Option<Vec<f64>> {
        let operators = self.operator_stats()?;
        if operators.len() != self.estimated_rows.len() {
            return None;
        }
        Some(
            operators
                .iter()
                .zip(&self.estimated_rows)
                .map(|(op, &est)| q_error(est, op.rows_out))
                .collect(),
        )
    }
}

/// The q-error of one cardinality estimate: `max(est, actual) / min(est,
/// actual)` with both sides clamped to at least one tuple. Symmetric, and
/// 1.0 means the estimate was exact.
fn q_error(estimated: f64, actual: usize) -> f64 {
    let est = estimated.max(1.0);
    let act = (actual as f64).max(1.0);
    est.max(act) / est.min(act)
}

/// Pre-order walk of the physical tree collecting `(depth, label)` pairs —
/// the same numbering the executors assign [`div_physical::OperatorId`]s in.
fn physical_preorder(plan: &PhysicalPlan, depth: usize, out: &mut Vec<(usize, String)>) {
    out.push((depth, plan.label()));
    for child in plan.children() {
        physical_preorder(child, depth + 1, out);
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXPLAIN {}", self.sql)?;
        writeln!(f, "logical plan (before rewrite):")?;
        for line in self.logical.explain().lines() {
            writeln!(f, "  {line}")?;
        }
        if self.applied.is_empty() {
            writeln!(f, "rewrite: no laws fired")?;
        } else {
            writeln!(f, "rewrite: {} law(s) fired", self.applied.len())?;
            for a in &self.applied {
                writeln!(f, "  pass {}: {} ({})", a.pass, a.rule, a.reference)?;
            }
            writeln!(f, "logical plan (after rewrite):")?;
            for line in self.optimized.explain().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        writeln!(
            f,
            "estimated cost: {:.0} -> {:.0} tuples ({} alternatives considered)",
            self.cost_before.value(),
            self.cost_after.value(),
            self.alternatives_considered
        )?;
        writeln!(
            f,
            "physical plan (execution=streaming, batch_size={}, parallelism={}, \
             compat backend={}):",
            self.batch_size,
            self.parallelism,
            self.backend.name(),
        )?;
        for line in self.physical.explain().lines() {
            writeln!(f, "  {line}")?;
        }
        if let Some(stats) = &self.stats {
            writeln!(f, "execution stats:")?;
            writeln!(
                f,
                "  executed via:        streaming executor (batch_size={}, parallelism={})",
                self.batch_size, self.parallelism
            )?;
            writeln!(f, "  output rows:         {}", stats.output_rows)?;
            writeln!(f, "  rows scanned:        {}", stats.rows_scanned)?;
            writeln!(f, "  intermediate tuples: {}", stats.intermediate_tuples)?;
            writeln!(f, "  max intermediate:    {}", stats.max_intermediate)?;
            writeln!(f, "  operators executed:  {}", stats.operators_executed)?;
            writeln!(f, "  peak resident rows:  {}", stats.peak_resident_rows)?;
            writeln!(
                f,
                "  peak resident batches: {}",
                stats.peak_resident_batches
            )?;
            if stats.chunks_skipped > 0 {
                writeln!(f, "  chunks skipped:      {}", stats.chunks_skipped)?;
            }
            if stats.spill_partitions > 0 {
                writeln!(f, "  spill partitions:    {}", stats.spill_partitions)?;
                writeln!(f, "  spill rows written:  {}", stats.spill_rows_written)?;
                writeln!(f, "  spill rows read:     {}", stats.spill_rows_read)?;
            }
            self.fmt_operator_tree(f, stats)?;
        }
        Ok(())
    }
}

impl Explain {
    /// Render the annotated per-operator tree of an analyzed report:
    /// actual rows next to the cost-model estimate (with the q-error),
    /// wall-clock time, hash probes and peak resident rows per operator.
    fn fmt_operator_tree(&self, f: &mut fmt::Formatter<'_>, stats: &ExecStats) -> fmt::Result {
        if stats.operators.is_empty() {
            return Ok(());
        }
        let mut shape = Vec::with_capacity(stats.operators.len());
        physical_preorder(&self.physical, 0, &mut shape);
        if shape.len() != stats.operators.len() {
            // A span tree from a different plan shape (should not happen
            // through the engine API); skip the annotation rather than
            // mislabel it.
            return Ok(());
        }
        writeln!(
            f,
            "per-operator stats (est from cost model, err = q-error):"
        )?;
        for (i, (depth, _)) in shape.iter().enumerate() {
            let op = &stats.operators[i];
            let est = self.estimated_rows.get(i).copied();
            write!(
                f,
                "  {}{} rows={}",
                "  ".repeat(*depth),
                op.label,
                op.rows_out
            )?;
            if let Some(est) = est {
                write!(
                    f,
                    " est_rows={} err={:.2}",
                    est.round() as u64,
                    q_error(est, op.rows_out)
                )?;
            }
            writeln!(
                f,
                " time={} probes={} resident={}",
                crate::metrics::fmt_ns(op.total_time_ns()),
                op.probes,
                op.peak_retained_rows
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                      (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
    const Q2_PARAM: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                            (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#";

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    #[test]
    fn query_runs_the_full_pipeline() {
        let engine = Engine::new(catalog());
        let output = engine.query_collect(Q2).unwrap();
        assert_eq!(output.relation, relation! { ["s#"] => [1], [2] });
        assert_eq!(output.stats.output_rows, 2);
        assert_eq!(engine.compile_count(), 1);
    }

    #[test]
    fn query_rejects_unbound_and_unknown_parameters() {
        let engine = Engine::new(catalog());
        let err = engine.query(Q2_PARAM).unwrap_err();
        assert_eq!(
            err,
            Error::UnboundParameter {
                parameter: "color".into()
            }
        );
        let err = engine
            .query_with_params(Q2_PARAM, &Params::new().bind("colour", "blue"))
            .unwrap_err();
        assert!(matches!(err, Error::UnknownParameter { .. }));
        let ok = engine
            .query_collect_with_params(Q2_PARAM, &Params::new().bind("color", "blue"))
            .unwrap();
        assert_eq!(ok.relation, relation! { ["s#"] => [1], [2] });
    }

    #[test]
    fn parse_errors_surface_as_the_parse_variant() {
        let engine = Engine::new(catalog());
        let err = engine.query("SELECT FROM WHERE").unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        let err = engine.query("SELECT x FROM missing").unwrap_err();
        assert!(matches!(
            err,
            Error::Plan(div_expr::ExprError::UnknownTable { .. })
        ));
    }

    #[test]
    fn prepared_statements_skip_recompilation() {
        let engine = Engine::new(catalog());
        let stmt = engine.prepare(Q2_PARAM).unwrap();
        assert_eq!(engine.compile_count(), 1);
        assert_eq!(stmt.parameters().iter().collect::<Vec<_>>(), vec!["color"]);
        let blue = stmt
            .execute_collect(&engine, &Params::new().bind("color", "blue"))
            .unwrap();
        assert_eq!(blue.relation, relation! { ["s#"] => [1], [2] });
        let red = stmt
            .execute_collect(&engine, &Params::new().bind("color", "red"))
            .unwrap();
        assert_eq!(red.relation, relation! { ["s#"] => [2] });
        assert_eq!(engine.compile_count(), 1, "executions must not recompile");
        // Missing binding → error, template unchanged.
        assert!(matches!(
            stmt.execute(&engine, &Params::new()),
            Err(Error::UnboundParameter { .. })
        ));
        assert_eq!(stmt.plan().parameters().len(), 1);
    }

    #[test]
    fn prepared_statements_detect_catalog_mutation() {
        let engine = Engine::new(catalog());
        let stmt = engine.prepare(Q2).unwrap();
        assert_eq!(stmt.catalog_version(), engine.catalog().version());
        engine.mutate_catalog(|c| {
            c.register("new_table", relation! { ["x"] => [1] });
        });
        let err = stmt.execute(&engine, &Params::new()).unwrap_err();
        assert!(matches!(err, Error::StalePlan { .. }));
        // Re-preparing against the mutated catalog works again.
        let stmt = engine.prepare(Q2).unwrap();
        assert!(stmt.execute(&engine, &Params::new()).is_ok());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_catalog_mut_still_invalidates_prepared_statements() {
        let mut engine = Engine::new(catalog());
        let stmt = engine.prepare(Q2).unwrap();
        engine
            .catalog_mut()
            .register("new_table", relation! { ["x"] => [1] });
        assert!(matches!(
            stmt.execute(&engine, &Params::new()),
            Err(Error::StalePlan { .. })
        ));
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_shareable<T: Send + Sync>() {}
        fn assert_sendable<T: Send>() {}
        assert_shareable::<Engine>();
        assert_shareable::<PreparedStatement>();
        // A cursor is a single-consumer handle: it moves across threads
        // (sessions) but is never shared.
        assert_sendable::<Cursor>();
    }

    #[test]
    fn open_cursors_stream_their_snapshot_across_mutations() {
        let engine = Engine::builder(catalog())
            .planner_config(PlannerConfig::default().batch_size(1))
            .build();
        let expected = engine.query_collect(Q2).unwrap().relation;
        let mut cursor = engine.query(Q2).unwrap();
        // Pull one batch, then drop every table the plan scans.
        let first = cursor.next().unwrap().unwrap();
        assert_eq!(first.num_rows(), 1);
        engine.mutate_catalog(|c| {
            c.unregister("supplies").unwrap();
            c.unregister("parts").unwrap();
        });
        assert!(engine.query(Q2).is_err(), "new statements see the drop");
        let mut streamed = Relation::empty(cursor.schema().clone());
        streamed.insert(first.row(0)).unwrap();
        for batch in cursor.by_ref() {
            let batch = batch.unwrap();
            for i in 0..batch.num_rows() {
                streamed.insert(batch.row(i)).unwrap();
            }
        }
        assert_eq!(streamed, expected, "snapshot isolation for open cursors");
    }

    #[test]
    fn concurrent_queries_and_mutations_never_mix_catalog_states() {
        use std::sync::atomic::AtomicBool;
        // Two known catalog states: divisor = {1} (state A, answer {1, 2})
        // vs divisor = {1, 2, 3} (state B, answer {2}). Concurrent readers
        // must always see exactly one of the two answers.
        let engine = Arc::new(Engine::new(catalog()));
        let expected_a = engine
            .query_collect(
                "SELECT s# FROM supplies AS s DIVIDE BY \
                            (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
            )
            .unwrap()
            .relation;
        let expected_b = relation! { ["s#"] => [2] };
        let stop = Arc::new(AtomicBool::new(false));
        let mutator = {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let blue = relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] };
                let all_blue =
                    relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "blue"] };
                let mut flip = false;
                while !stop.load(Ordering::Relaxed) {
                    let next = if flip { all_blue.clone() } else { blue.clone() };
                    engine.mutate_catalog(|c| {
                        c.unregister("parts").unwrap();
                        c.register("parts", next);
                    });
                    flip = !flip;
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                let (a, b) = (expected_a.clone(), expected_b.clone());
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let got = engine
                            .query_collect(
                                "SELECT s# FROM supplies AS s DIVIDE BY \
                                 (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
                            )
                            .unwrap()
                            .relation;
                        assert!(got == a || got == b, "torn catalog state observed: {got:?}");
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        mutator.join().unwrap();
    }

    #[test]
    fn prepared_statements_refuse_to_run_on_a_different_engine() {
        // Catalog version stamps are process-globally unique, so a statement
        // prepared on one engine cannot silently execute against another
        // engine's catalog — even when both catalogs were built with the
        // same number of mutations.
        let engine_a = Engine::new(catalog());
        let engine_b = Engine::new(catalog());
        let stmt = engine_a.prepare(Q2).unwrap();
        assert!(stmt.execute(&engine_a, &Params::new()).is_ok());
        assert!(matches!(
            stmt.execute(&engine_b, &Params::new()),
            Err(Error::StalePlan { .. })
        ));
        // An engine over a clone of the same catalog shares the stamp (the
        // data is identical), so the statement remains valid there.
        let engine_c = Engine::new(engine_a.catalog().as_ref().clone());
        assert!(stmt.execute(&engine_c, &Params::new()).is_ok());
    }

    #[test]
    fn explain_reports_pipeline_and_analyze_adds_stats() {
        let engine = Engine::new(catalog());
        let sql = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
                   WHERE color = 'blue'";
        let explain = engine.explain(sql).unwrap();
        assert!(explain.rewritten(), "the law should fire on this shape");
        assert!(explain
            .laws_fired()
            .iter()
            .any(|l| l.contains("law-15") || l.contains("law-14")));
        assert!(explain.stats.is_none());
        let rendered = explain.to_string();
        assert!(rendered.contains("logical plan (before rewrite):"));
        assert!(rendered.contains("rewrite:"));
        assert!(rendered.contains(
            "physical plan (execution=streaming, batch_size=1024, parallelism=1, \
             compat backend=row):"
        ));
        assert!(!rendered.contains("execution stats:"));

        let analyzed = engine.explain_analyze(sql).unwrap();
        let stats = analyzed.stats.as_ref().expect("analyze measures stats");
        assert!(stats.output_rows > 0);
        assert!(analyzed.to_string().contains("execution stats:"));
    }

    #[test]
    fn builder_without_optimizer_disables_rewrites() {
        let engine = Engine::builder(catalog()).without_optimizer().build();
        assert!(!engine.optimizer_enabled());
        let sql = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
                   WHERE color = 'blue'";
        let explain = engine.explain(sql).unwrap();
        assert!(!explain.rewritten());
        assert_eq!(explain.logical, explain.optimized);
        // Results agree with the optimizing engine.
        let optimizing = Engine::new(catalog());
        assert_eq!(
            engine.query_collect(sql).unwrap().relation,
            optimizing.query_collect(sql).unwrap().relation
        );
    }

    #[test]
    fn execute_logical_runs_plans_without_the_sql_front_end() {
        use div_expr::PlanBuilder;
        let engine = Engine::new(catalog());
        let plan = PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(div_algebra::Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .build();
        let output = engine.execute_logical(&plan).unwrap();
        assert_eq!(output.relation, relation! { ["s#"] => [1], [2] });
    }

    #[test]
    fn cursor_batches_concatenate_to_the_collected_relation() {
        let engine = Engine::builder(catalog())
            .planner_config(PlannerConfig::default().batch_size(2))
            .build();
        let expected = engine.query_collect(Q2).unwrap().relation;
        let mut cursor = engine.query(Q2).unwrap();
        assert_eq!(cursor.schema().names(), vec!["s#"]);
        let mut streamed = Relation::empty(cursor.schema().clone());
        for batch in cursor.by_ref() {
            let batch = batch.unwrap();
            assert!(batch.num_rows() > 0, "cursors never emit empty batches");
            for i in 0..batch.num_rows() {
                streamed.insert(batch.row(i)).unwrap();
            }
        }
        assert_eq!(streamed, expected);
        let stats = cursor.finish_stats();
        assert_eq!(stats.output_rows, expected.len());
    }

    #[test]
    fn early_terminated_cursor_short_circuits_the_scan() {
        let mut catalog = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..5_000).map(|i| vec![i, i % 3]).collect();
        catalog.register(
            "big",
            div_algebra::Relation::from_rows(["a", "b"], rows).unwrap(),
        );
        let engine = Engine::builder(catalog)
            .planner_config(PlannerConfig::default().batch_size(128))
            .build();
        let mut cursor = engine.query("SELECT a FROM big WHERE b = 0").unwrap();
        let first: Vec<_> = cursor.by_ref().take(1).collect();
        assert_eq!(first.len(), 1);
        let stats = cursor.finish_stats();
        assert!(
            stats.rows_scanned < 5_000,
            "take(1) must stop the scan short, scanned {}",
            stats.rows_scanned
        );
    }

    #[test]
    fn explain_analyze_reports_streaming_peaks() {
        let engine = Engine::new(catalog());
        let analyzed = engine.explain_analyze(Q2).unwrap();
        let stats = analyzed.stats.as_ref().expect("analyze measures stats");
        assert!(stats.peak_resident_batches > 0, "streaming path sets peaks");
        assert!(stats.peak_resident_rows > 0);
        let rendered = analyzed.to_string();
        assert!(rendered.contains("peak resident rows:"));
        assert!(rendered.contains("peak resident batches:"));
    }

    /// A catalog whose self-product is far too large to finish under a tight
    /// limit — the governance tests' runaway workload.
    fn runaway_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        let rows: Vec<Vec<i64>> = (0..1_500).map(|i| vec![i]).collect();
        catalog.register(
            "l",
            div_algebra::Relation::from_rows(["a"], rows.clone()).unwrap(),
        );
        catalog.register("r", div_algebra::Relation::from_rows(["b"], rows).unwrap());
        catalog
    }

    const RUNAWAY: &str = "SELECT a, b FROM l, r";

    #[test]
    fn engine_default_deadline_aborts_runaway_queries_and_frees_the_session() {
        let engine = Engine::builder(runaway_catalog())
            .planner_config(PlannerConfig::default().batch_size(64))
            .with_deadline(std::time::Duration::from_millis(50))
            .build();
        let err = engine.query(RUNAWAY).unwrap().collect().unwrap_err();
        assert!(
            matches!(err, Error::DeadlineExceeded { limit_ms: 50, .. }),
            "got {err}"
        );
        // The engine is untouched by the abort: a follow-up query under the
        // same default deadline succeeds.
        let out = engine
            .query("SELECT a FROM l WHERE a < 3")
            .unwrap()
            .collect()
            .unwrap();
        assert_eq!(out.relation.len(), 3);
    }

    #[test]
    fn engine_default_memory_budget_aborts_runaway_queries() {
        let engine = Engine::builder(runaway_catalog())
            .planner_config(PlannerConfig::default().batch_size(64))
            .with_memory_budget(1_000)
            .build();
        let err = engine.query(RUNAWAY).unwrap().collect().unwrap_err();
        assert!(
            matches!(
                err,
                Error::MemoryBudget {
                    budget_rows: 1_000,
                    ..
                }
            ),
            "got {err}"
        );
    }

    #[test]
    fn cancellation_token_aborts_an_open_cursor() {
        let engine = Engine::new(runaway_catalog());
        let token = div_physical::CancelToken::new();
        let guard = QueryGuard::default().with_token(token.clone());
        let mut cursor = engine
            .query_guarded(RUNAWAY, &Params::new(), guard)
            .unwrap();
        assert!(cursor.next().unwrap().is_ok(), "runs until cancelled");
        token.cancel();
        let err = cursor
            .find_map(|batch| batch.err())
            .expect("cancellation must surface");
        assert!(matches!(err, Error::Cancelled { .. }), "got {err}");
    }

    #[test]
    fn aborted_drain_releases_resident_rows_like_a_disconnect() {
        // The satellite-f regression: a deadline/budget abort mid-drain must
        // leave the cursor's resident accounting exactly where a client
        // disconnect would — drained to zero once the cursor closes.
        let engine = Engine::builder(runaway_catalog())
            .planner_config(PlannerConfig::default().batch_size(64))
            .with_memory_budget(1_000)
            .build();
        let mut cursor = engine.query(RUNAWAY).unwrap();
        let err = cursor
            .find_map(|batch| batch.err())
            .expect("budget must trip");
        assert!(matches!(err, Error::MemoryBudget { .. }));
        let stats = cursor.finish_stats();
        assert_eq!(
            stats.resident_rows_on_finish, 0,
            "aborted drain leaked resident accounting"
        );
    }

    #[test]
    fn guarded_prepared_statement_observes_its_token() {
        let engine = Engine::new(runaway_catalog());
        let stmt = engine.prepare(RUNAWAY).unwrap();
        let token = div_physical::CancelToken::new();
        token.cancel();
        let guard = QueryGuard::default().with_token(token);
        let err = stmt
            .execute_guarded(&engine, &Params::new(), guard)
            .unwrap()
            .collect()
            .unwrap_err();
        assert!(matches!(err, Error::Cancelled { .. }), "got {err}");
    }

    #[test]
    fn ungoverned_queries_are_unaffected_by_the_governance_plumbing() {
        let engine = Engine::new(catalog());
        let out = engine.query_collect(Q2).unwrap();
        assert_eq!(out.stats.resident_rows_on_finish, 0);
    }
}
