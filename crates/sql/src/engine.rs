//! The [`Engine`] facade: the paper's whole pipeline behind one session API.
//!
//! The pre-engine free functions (`run_query`, `compile_query`) wired the
//! parser straight into the physical planner, *skipping the contribution of
//! the paper* — the seventeen rewrite laws and the cost model that picks
//! among the plans they generate. [`Engine::query`] runs the full pipeline
//! with the optimizer in the loop by default:
//!
//! ```text
//! SQL text ──parse──► AST ──translate──► LogicalPlan
//!          ──optimize (laws + cost model)──► LogicalPlan
//!          ──plan──► PhysicalPlan ──execute──► (Relation, ExecStats)
//! ```
//!
//! On top of the pipeline the engine adds the two session features a system
//! serving repeated traffic needs:
//!
//! * **Prepared statements** ([`Engine::prepare`]): the optimized physical
//!   plan is compiled once and cached; every execution re-binds the
//!   statement's `$name` parameters and runs the cached plan, skipping
//!   parse, translate, optimization and planning entirely. The statement
//!   records the catalog version it was compiled against and refuses to run
//!   against a mutated catalog ([`Error::StalePlan`]).
//! * **EXPLAIN** ([`Engine::explain`], [`Engine::explain_analyze`]): a
//!   structured [`Explain`] report — logical plan before and after the
//!   rewrite, the laws that fired, cost estimates, the chosen physical
//!   operators, and (for `explain_analyze`) the measured [`ExecStats`].
//!
//! ```
//! use div_algebra::relation;
//! use div_expr::Catalog;
//! use div_sql::{Engine, Params};
//!
//! let mut catalog = Catalog::new();
//! catalog.register("supplies", relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] });
//! catalog.register("parts", relation! { ["p#", "color"] => [1, "blue"], [2, "blue"] });
//! let engine = Engine::new(catalog);
//!
//! // Ad-hoc query, optimizer in the loop.
//! let output = engine.query(
//!     "SELECT s# FROM supplies AS s DIVIDE BY \
//!      (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
//! )?;
//! assert_eq!(output.relation, relation! { ["s#"] => [1] });
//!
//! // Compile once, run many: the color literal becomes a parameter.
//! let stmt = engine.prepare(
//!     "SELECT s# FROM supplies AS s DIVIDE BY \
//!      (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#",
//! )?;
//! let blue = stmt.execute(&engine, &Params::new().bind("color", "blue"))?;
//! assert_eq!(blue.relation, relation! { ["s#"] => [1] });
//! # Ok::<(), div_sql::Error>(())
//! ```

use crate::error::Error;
use crate::{parse_query, translate_query};
use div_algebra::{Relation, Value};
use div_expr::{Catalog, LogicalPlan};
use div_physical::{
    execute_with_config, plan_query, ExecStats, ExecutionBackend, PhysicalPlan, PlannerConfig,
};
use div_rewrite::engine::AppliedRule;
use div_rewrite::optimizer::{CostEstimate, CostModel};
use div_rewrite::{OptimizedPlan, Optimizer, RewriteContext, RuleSet};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Result alias of the engine API.
pub type Result<T> = std::result::Result<T, Error>;

/// Values for the `$name` parameters of a statement.
///
/// ```
/// use div_sql::Params;
/// let params = Params::new().bind("color", "blue").bind("min", 3i64);
/// assert_eq!(params.len(), 2);
/// assert!(params.get("color").is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    values: BTreeMap<String, Value>,
}

impl Params {
    /// No bindings.
    pub fn new() -> Self {
        Params::default()
    }

    /// This set of bindings with `name` bound to `value` (builder style).
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.values.insert(name.into(), value.into());
        self
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no parameter is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over the bound names.
    pub fn names(&self) -> impl Iterator<Item = &str> + '_ {
        self.values.keys().map(String::as_str)
    }

    pub(crate) fn map(&self) -> &BTreeMap<String, Value> {
        &self.values
    }
}

/// The result of executing a statement: the relation plus the executor's
/// statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// The result relation.
    pub relation: Relation,
    /// Per-operator row counts and intermediate-result sizes.
    pub stats: ExecStats,
}

/// Builder for a customized [`Engine`].
///
/// ```
/// use div_expr::Catalog;
/// use div_physical::PlannerConfig;
/// use div_rewrite::optimizer::CostModel;
/// use div_rewrite::RuleSet;
/// use div_sql::Engine;
///
/// let engine = Engine::builder(Catalog::new())
///     .planner_config(PlannerConfig::with_parallelism(4))
///     .rule_set(RuleSet::default_rules())
///     .cost_model(CostModel::default())
///     .build();
/// assert_eq!(engine.planner_config().parallelism, 4);
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    catalog: Catalog,
    config: PlannerConfig,
    rules: RuleSet,
    cost_model: CostModel,
    optimize: bool,
}

impl EngineBuilder {
    /// Replace the planner configuration (execution backend, division
    /// algorithms, parallelism).
    pub fn planner_config(mut self, config: PlannerConfig) -> Self {
        self.config = config;
        self
    }

    /// Replace the rewrite rule set the optimizer searches over.
    pub fn rule_set(mut self, rules: RuleSet) -> Self {
        self.rules = rules;
        self
    }

    /// Replace the cost model the optimizer ranks plans with.
    pub fn cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// Disable the rewrite optimizer: plans go from the translator straight
    /// to the physical planner, like the pre-engine pipeline. Useful for
    /// differential testing and for measuring what the laws buy.
    pub fn without_optimizer(mut self) -> Self {
        self.optimize = false;
        self
    }

    /// Finish the builder.
    pub fn build(self) -> Engine {
        Engine {
            catalog: self.catalog,
            config: self.config,
            optimizer: Optimizer::new()
                .with_rules(self.rules)
                .with_cost_model(self.cost_model),
            optimize: self.optimize,
            compile_count: AtomicU64::new(0),
        }
    }
}

/// A SQL session: a catalog plus the configured optimize-and-execute
/// pipeline. See the [module documentation](self) for an overview.
#[derive(Debug)]
pub struct Engine {
    catalog: Catalog,
    config: PlannerConfig,
    optimizer: Optimizer,
    optimize: bool,
    compile_count: AtomicU64,
}

/// A statement compiled down to its optimized physical plan.
///
/// Produced by [`Engine::prepare`]; executed with
/// [`PreparedStatement::execute`]. The expensive pipeline (parse → translate
/// → optimize → plan) ran exactly once, at prepare time; each execution only
/// substitutes the `$name` parameter bindings into a copy of the cached plan
/// template and runs it.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    sql: String,
    template: Arc<PhysicalPlan>,
    parameters: BTreeSet<String>,
    catalog_version: u64,
    applied: Vec<AppliedRule>,
}

/// What one compilation produced (shared by `query`, `prepare`, `explain`).
struct Compiled {
    logical: LogicalPlan,
    optimized: LogicalPlan,
    applied: Vec<AppliedRule>,
    cost_before: CostEstimate,
    cost_after: CostEstimate,
    alternatives_considered: usize,
    physical: PhysicalPlan,
}

impl Engine {
    /// An engine over `catalog` with the default planner configuration, the
    /// full default rule set and the default cost model — the optimizer is
    /// **in the loop by default**.
    pub fn new(catalog: Catalog) -> Engine {
        Engine::builder(catalog).build()
    }

    /// Start building a customized engine.
    pub fn builder(catalog: Catalog) -> EngineBuilder {
        EngineBuilder {
            catalog,
            config: PlannerConfig::default(),
            rules: RuleSet::default_rules(),
            cost_model: CostModel::default(),
            optimize: true,
        }
    }

    /// The catalog this engine serves.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (registering tables, declaring
    /// constraints). Any mutation bumps the catalog version and thereby
    /// invalidates previously prepared statements.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The planner configuration in use.
    pub fn planner_config(&self) -> &PlannerConfig {
        &self.config
    }

    /// `true` when the rewrite optimizer runs inside [`Engine::query`] /
    /// [`Engine::prepare`] (the default).
    pub fn optimizer_enabled(&self) -> bool {
        self.optimize
    }

    /// How many statements this engine has compiled (parse → translate →
    /// optimize → plan). Executing a [`PreparedStatement`] does *not*
    /// compile, which is the point of preparing:
    ///
    /// ```
    /// use div_algebra::relation;
    /// use div_expr::Catalog;
    /// use div_sql::{Engine, Params};
    ///
    /// let mut catalog = Catalog::new();
    /// catalog.register("parts", relation! { ["p#", "color"] => [1, "blue"], [2, "red"] });
    /// let engine = Engine::new(catalog);
    /// let stmt = engine.prepare("SELECT p# FROM parts WHERE color = $color")?;
    /// assert_eq!(engine.compile_count(), 1);
    /// for color in ["blue", "red", "blue"] {
    ///     stmt.execute(&engine, &Params::new().bind("color", color))?;
    /// }
    /// assert_eq!(engine.compile_count(), 1); // still one compilation
    /// # Ok::<(), div_sql::Error>(())
    /// ```
    pub fn compile_count(&self) -> u64 {
        self.compile_count.load(Ordering::Relaxed)
    }

    /// Parse, translate, optimize, plan and execute `sql`.
    ///
    /// Statements with `$name` parameters cannot run ad hoc — prepare them
    /// and bind values, or use [`Engine::query_with_params`].
    pub fn query(&self, sql: &str) -> Result<QueryOutput> {
        self.query_with_params(sql, &Params::new())
    }

    /// [`Engine::query`] with `$name` parameter bindings applied.
    ///
    /// Unlike the prepare/execute path — which must optimize with the
    /// placeholders still unresolved — the bindings are known here, so they
    /// are substituted into the logical plan *before* the optimizer runs and
    /// the query gets the same rewrite search as its all-literal equivalent.
    pub fn query_with_params(&self, sql: &str, params: &Params) -> Result<QueryOutput> {
        let query = parse_query(sql)?;
        check_bindings(params, &query.parameters())?;
        let compiled = self.compile_parsed(&query, params)?;
        self.execute_physical(&compiled.physical)
    }

    /// Optimize, plan and execute an already-translated logical plan.
    ///
    /// This is the tail of [`Engine::query`] without the SQL front end, for
    /// callers that build [`LogicalPlan`]s programmatically.
    pub fn execute_logical(&self, logical: &LogicalPlan) -> Result<QueryOutput> {
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        let optimized = self.optimize_plan(logical)?;
        let physical = plan_query(&optimized.plan, &self.config)?;
        self.execute_physical(&physical)
    }

    /// Compile `sql` into a [`PreparedStatement`] holding the optimized
    /// physical plan. See [`PreparedStatement`] for the execution contract.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        let query = parse_query(sql)?;
        let declared = query.parameters();
        let compiled = self.compile_parsed(&query, &Params::new())?;
        Ok(PreparedStatement {
            sql: sql.to_string(),
            template: Arc::new(compiled.physical),
            parameters: declared,
            catalog_version: self.catalog.version(),
            applied: compiled.applied,
        })
    }

    /// Compile `sql` and report the whole pipeline without executing it.
    pub fn explain(&self, sql: &str) -> Result<Explain> {
        let compiled = self.compile(sql)?;
        Ok(self.explain_from(sql, compiled, None))
    }

    /// [`Engine::explain`] plus an actual execution: the report additionally
    /// carries the measured [`ExecStats`]. Statements with parameters cannot
    /// be analyzed without bindings — pass them via
    /// [`Engine::explain_analyze_with_params`].
    pub fn explain_analyze(&self, sql: &str) -> Result<Explain> {
        self.explain_analyze_with_params(sql, &Params::new())
    }

    /// [`Engine::explain_analyze`] with `$name` parameter bindings applied.
    pub fn explain_analyze_with_params(&self, sql: &str, params: &Params) -> Result<Explain> {
        let query = parse_query(sql)?;
        check_bindings(params, &query.parameters())?;
        let compiled = self.compile_parsed(&query, params)?;
        let output = self.execute_physical(&compiled.physical)?;
        Ok(self.explain_from(sql, compiled, Some(output.stats)))
    }

    fn explain_from(&self, sql: &str, compiled: Compiled, stats: Option<ExecStats>) -> Explain {
        Explain {
            sql: sql.to_string(),
            logical: compiled.logical,
            optimized: compiled.optimized,
            applied: compiled.applied,
            cost_before: compiled.cost_before,
            cost_after: compiled.cost_after,
            alternatives_considered: compiled.alternatives_considered,
            physical: compiled.physical,
            backend: self.config.backend,
            parallelism: self.config.parallelism,
            stats,
        }
    }

    fn compile(&self, sql: &str) -> Result<Compiled> {
        let query = parse_query(sql)?;
        self.compile_parsed(&query, &Params::new())
    }

    /// The shared compile pipeline. Known `params` are bound into the
    /// logical plan before optimization (empty for `prepare`, whose
    /// placeholders must survive into the cached template).
    fn compile_parsed(&self, query: &crate::Query, params: &Params) -> Result<Compiled> {
        self.compile_count.fetch_add(1, Ordering::Relaxed);
        let mut logical = translate_query(query, &self.catalog)?;
        if !params.is_empty() {
            logical = logical.bind_parameters(params.map());
        }
        let optimized = self.optimize_plan(&logical)?;
        let physical = plan_query(&optimized.plan, &self.config)?;
        Ok(Compiled {
            logical,
            optimized: optimized.plan,
            applied: optimized.applied,
            cost_before: optimized.original_cost,
            cost_after: optimized.cost,
            alternatives_considered: optimized.alternatives_considered,
            physical,
        })
    }

    fn optimize_plan(&self, logical: &LogicalPlan) -> Result<OptimizedPlan> {
        let ctx = RewriteContext::with_catalog(&self.catalog);
        if !self.optimize {
            let cost = self.optimizer.cost_model().cost(logical, &ctx);
            return Ok(OptimizedPlan {
                plan: logical.clone(),
                cost,
                original_cost: cost,
                alternatives_considered: 0,
                applied: Vec::new(),
            });
        }
        Ok(self.optimizer.optimize(logical, &ctx)?)
    }

    fn execute_physical(&self, physical: &PhysicalPlan) -> Result<QueryOutput> {
        if physical.has_parameters() {
            let parameter = physical
                .parameters()
                .into_iter()
                .next()
                .expect("has_parameters implies at least one name");
            return Err(Error::UnboundParameter { parameter });
        }
        let (relation, stats) = execute_with_config(physical, &self.catalog, &self.config)?;
        Ok(QueryOutput { relation, stats })
    }
}

/// Reject bindings for parameters the statement does not declare.
fn check_bindings(params: &Params, declared: &BTreeSet<String>) -> Result<()> {
    for name in params.names() {
        if !declared.contains(name) {
            return Err(Error::UnknownParameter {
                parameter: name.to_string(),
                expected: declared.iter().cloned().collect(),
            });
        }
    }
    Ok(())
}

impl PreparedStatement {
    /// The SQL text the statement was prepared from.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The `$name` parameters the statement declares.
    pub fn parameters(&self) -> &BTreeSet<String> {
        &self.parameters
    }

    /// The cached physical plan template (parameters still unbound). The
    /// `Arc` is shared, not copied, across [`PreparedStatement::clone`] —
    /// pointer identity demonstrates that executions reuse one compilation.
    pub fn plan(&self) -> &Arc<PhysicalPlan> {
        &self.template
    }

    /// The rewrite laws the optimizer applied when the statement was
    /// prepared.
    pub fn laws_applied(&self) -> &[AppliedRule] {
        &self.applied
    }

    /// Catalog version the statement was compiled against.
    pub fn catalog_version(&self) -> u64 {
        self.catalog_version
    }

    /// Bind `params` into a copy of the cached plan and execute it on
    /// `engine` — no parsing, translation, optimization or planning happens
    /// here.
    ///
    /// # Errors
    ///
    /// * [`Error::StalePlan`] when the engine's catalog has been mutated
    ///   since [`Engine::prepare`];
    /// * [`Error::UnknownParameter`] when `params` binds a name the
    ///   statement does not declare;
    /// * [`Error::UnboundParameter`] when a declared parameter has no
    ///   binding.
    pub fn execute(&self, engine: &Engine, params: &Params) -> Result<QueryOutput> {
        let catalog_version = engine.catalog().version();
        if catalog_version != self.catalog_version {
            return Err(Error::StalePlan {
                prepared_version: self.catalog_version,
                catalog_version,
            });
        }
        check_bindings(params, &self.parameters)?;
        if params.is_empty() {
            // Nothing to substitute — run the cached template directly
            // (execute_physical still rejects unbound placeholders).
            return engine.execute_physical(&self.template);
        }
        let bound = self.template.bind_parameters(params.map());
        engine.execute_physical(&bound)
    }
}

/// The structured report produced by [`Engine::explain`] /
/// [`Engine::explain_analyze`].
///
/// The [`fmt::Display`] rendering is stable: section headers and their order
/// are part of the API contract (tools may parse them).
#[derive(Debug, Clone)]
pub struct Explain {
    /// The SQL text.
    pub sql: String,
    /// Logical plan as translated from the SQL, before any rewrite.
    pub logical: LogicalPlan,
    /// Logical plan after the cost-based rewrite (equal to `logical` when no
    /// law fired or the optimizer is disabled).
    pub optimized: LogicalPlan,
    /// The law applications the optimizer chose, pass by pass.
    pub applied: Vec<AppliedRule>,
    /// Estimated cost of the original plan.
    pub cost_before: CostEstimate,
    /// Estimated cost of the chosen plan.
    pub cost_after: CostEstimate,
    /// Number of alternative plans the greedy search costed.
    pub alternatives_considered: usize,
    /// The physical plan the engine would execute (parameters unbound).
    pub physical: PhysicalPlan,
    /// Execution backend the plan targets.
    pub backend: ExecutionBackend,
    /// Partition parallelism the plan targets.
    pub parallelism: usize,
    /// Measured execution statistics — `Some` only for
    /// [`Engine::explain_analyze`].
    pub stats: Option<ExecStats>,
}

impl Explain {
    /// Names of the laws that fired, in application order.
    pub fn laws_fired(&self) -> Vec<&str> {
        self.applied.iter().map(|a| a.rule.as_str()).collect()
    }

    /// `true` when the optimizer changed the plan.
    pub fn rewritten(&self) -> bool {
        !self.applied.is_empty()
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "EXPLAIN {}", self.sql)?;
        writeln!(f, "logical plan (before rewrite):")?;
        for line in self.logical.explain().lines() {
            writeln!(f, "  {line}")?;
        }
        if self.applied.is_empty() {
            writeln!(f, "rewrite: no laws fired")?;
        } else {
            writeln!(f, "rewrite: {} law(s) fired", self.applied.len())?;
            for a in &self.applied {
                writeln!(f, "  pass {}: {} ({})", a.pass, a.rule, a.reference)?;
            }
            writeln!(f, "logical plan (after rewrite):")?;
            for line in self.optimized.explain().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        writeln!(
            f,
            "estimated cost: {:.0} -> {:.0} tuples ({} alternatives considered)",
            self.cost_before.value(),
            self.cost_after.value(),
            self.alternatives_considered
        )?;
        writeln!(
            f,
            "physical plan (backend={}, parallelism={}):",
            self.backend.name(),
            self.parallelism
        )?;
        for line in self.physical.explain().lines() {
            writeln!(f, "  {line}")?;
        }
        if let Some(stats) = &self.stats {
            writeln!(f, "execution stats:")?;
            writeln!(f, "  output rows:         {}", stats.output_rows)?;
            writeln!(f, "  rows scanned:        {}", stats.rows_scanned)?;
            writeln!(f, "  intermediate tuples: {}", stats.intermediate_tuples)?;
            writeln!(f, "  max intermediate:    {}", stats.max_intermediate)?;
            writeln!(f, "  operators:           {}", stats.operators)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                      (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
    const Q2_PARAM: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                            (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#";

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    #[test]
    fn query_runs_the_full_pipeline() {
        let engine = Engine::new(catalog());
        let output = engine.query(Q2).unwrap();
        assert_eq!(output.relation, relation! { ["s#"] => [1], [2] });
        assert_eq!(output.stats.output_rows, 2);
        assert_eq!(engine.compile_count(), 1);
    }

    #[test]
    fn query_rejects_unbound_and_unknown_parameters() {
        let engine = Engine::new(catalog());
        let err = engine.query(Q2_PARAM).unwrap_err();
        assert_eq!(
            err,
            Error::UnboundParameter {
                parameter: "color".into()
            }
        );
        let err = engine
            .query_with_params(Q2_PARAM, &Params::new().bind("colour", "blue"))
            .unwrap_err();
        assert!(matches!(err, Error::UnknownParameter { .. }));
        let ok = engine
            .query_with_params(Q2_PARAM, &Params::new().bind("color", "blue"))
            .unwrap();
        assert_eq!(ok.relation, relation! { ["s#"] => [1], [2] });
    }

    #[test]
    fn parse_errors_surface_as_the_parse_variant() {
        let engine = Engine::new(catalog());
        let err = engine.query("SELECT FROM WHERE").unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        let err = engine.query("SELECT x FROM missing").unwrap_err();
        assert!(matches!(
            err,
            Error::Plan(div_expr::ExprError::UnknownTable { .. })
        ));
    }

    #[test]
    fn prepared_statements_skip_recompilation() {
        let engine = Engine::new(catalog());
        let stmt = engine.prepare(Q2_PARAM).unwrap();
        assert_eq!(engine.compile_count(), 1);
        assert_eq!(stmt.parameters().iter().collect::<Vec<_>>(), vec!["color"]);
        let blue = stmt
            .execute(&engine, &Params::new().bind("color", "blue"))
            .unwrap();
        assert_eq!(blue.relation, relation! { ["s#"] => [1], [2] });
        let red = stmt
            .execute(&engine, &Params::new().bind("color", "red"))
            .unwrap();
        assert_eq!(red.relation, relation! { ["s#"] => [2] });
        assert_eq!(engine.compile_count(), 1, "executions must not recompile");
        // Missing binding → error, template unchanged.
        assert!(matches!(
            stmt.execute(&engine, &Params::new()),
            Err(Error::UnboundParameter { .. })
        ));
        assert_eq!(stmt.plan().parameters().len(), 1);
    }

    #[test]
    fn prepared_statements_detect_catalog_mutation() {
        let mut engine = Engine::new(catalog());
        let stmt = engine.prepare(Q2).unwrap();
        assert_eq!(stmt.catalog_version(), engine.catalog().version());
        engine
            .catalog_mut()
            .register("new_table", relation! { ["x"] => [1] });
        let err = stmt.execute(&engine, &Params::new()).unwrap_err();
        assert!(matches!(err, Error::StalePlan { .. }));
        // Re-preparing against the mutated catalog works again.
        let stmt = engine.prepare(Q2).unwrap();
        assert!(stmt.execute(&engine, &Params::new()).is_ok());
    }

    #[test]
    fn prepared_statements_refuse_to_run_on_a_different_engine() {
        // Catalog version stamps are process-globally unique, so a statement
        // prepared on one engine cannot silently execute against another
        // engine's catalog — even when both catalogs were built with the
        // same number of mutations.
        let engine_a = Engine::new(catalog());
        let engine_b = Engine::new(catalog());
        let stmt = engine_a.prepare(Q2).unwrap();
        assert!(stmt.execute(&engine_a, &Params::new()).is_ok());
        assert!(matches!(
            stmt.execute(&engine_b, &Params::new()),
            Err(Error::StalePlan { .. })
        ));
        // An engine over a clone of the same catalog shares the stamp (the
        // data is identical), so the statement remains valid there.
        let engine_c = Engine::new(engine_a.catalog().clone());
        assert!(stmt.execute(&engine_c, &Params::new()).is_ok());
    }

    #[test]
    fn explain_reports_pipeline_and_analyze_adds_stats() {
        let engine = Engine::new(catalog());
        let sql = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
                   WHERE color = 'blue'";
        let explain = engine.explain(sql).unwrap();
        assert!(explain.rewritten(), "the law should fire on this shape");
        assert!(explain
            .laws_fired()
            .iter()
            .any(|l| l.contains("law-15") || l.contains("law-14")));
        assert!(explain.stats.is_none());
        let rendered = explain.to_string();
        assert!(rendered.contains("logical plan (before rewrite):"));
        assert!(rendered.contains("rewrite:"));
        assert!(rendered.contains("physical plan (backend=row, parallelism=1):"));
        assert!(!rendered.contains("execution stats:"));

        let analyzed = engine.explain_analyze(sql).unwrap();
        let stats = analyzed.stats.as_ref().expect("analyze measures stats");
        assert!(stats.output_rows > 0);
        assert!(analyzed.to_string().contains("execution stats:"));
    }

    #[test]
    fn builder_without_optimizer_disables_rewrites() {
        let engine = Engine::builder(catalog()).without_optimizer().build();
        assert!(!engine.optimizer_enabled());
        let sql = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
                   WHERE color = 'blue'";
        let explain = engine.explain(sql).unwrap();
        assert!(!explain.rewritten());
        assert_eq!(explain.logical, explain.optimized);
        // Results agree with the optimizing engine.
        let optimizing = Engine::new(catalog());
        assert_eq!(
            engine.query(sql).unwrap().relation,
            optimizing.query(sql).unwrap().relation
        );
    }

    #[test]
    fn execute_logical_runs_plans_without_the_sql_front_end() {
        use div_expr::PlanBuilder;
        let engine = Engine::new(catalog());
        let plan = PlanBuilder::scan("supplies")
            .divide(
                PlanBuilder::scan("parts")
                    .select(div_algebra::Predicate::eq_value("color", "blue"))
                    .project(["p#"]),
            )
            .build();
        let output = engine.execute_logical(&plan).unwrap();
        assert_eq!(output.relation, relation! { ["s#"] => [1], [2] });
    }
}
