//! Session-wide engine metrics: cheap atomic counters the
//! [`Engine`](crate::Engine) maintains across every query it serves.
//!
//! Where [`div_physical::trace`] answers *"where did this one query spend
//! its time?"*, this module answers *"what has this engine been doing?"* —
//! the registry aggregates over the whole session:
//!
//! * throughput counters: queries executed, rows returned, statements
//!   prepared, prepared-plan cache hits and misses;
//! * the pipeline time split: cumulative wall time spent parsing,
//!   optimizing (rewrite-law search), physical planning and executing;
//! * a fixed-bucket histogram of per-query execution latency;
//! * per-rewrite-law application counts (how often each of the paper's
//!   laws actually fired on this workload).
//!
//! Everything is lock-free atomics except the law-count map, which takes a
//! short mutex only when the optimizer reports applications at compile
//! time — the per-batch execution hot path never touches this module.
//!
//! Read the registry with [`Engine::metrics`](crate::Engine::metrics),
//! which returns a coherent-enough [`MetricsSnapshot`] (each counter is
//! read atomically; the set is not a transaction). The snapshot renders as
//! text via [`fmt::Display`] and as JSON via [`MetricsSnapshot::to_json`]
//! (hand-rolled — no serialization dependency).
//!
//! ```
//! use div_algebra::relation;
//! use div_expr::Catalog;
//! use div_sql::Engine;
//!
//! let mut catalog = Catalog::new();
//! catalog.register("parts", relation! { ["p#"] => [1], [2] });
//! let engine = Engine::new(catalog);
//! engine.query("SELECT p# FROM parts")?.collect_relation()?;
//! let snapshot = engine.metrics();
//! assert_eq!(snapshot.queries_executed, 1);
//! assert_eq!(snapshot.rows_returned, 2);
//! assert!(snapshot.to_json().contains("\"queries_executed\": 1"));
//! # Ok::<(), div_sql::Error>(())
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Inclusive upper bounds of the execution-latency histogram buckets, in
/// nanoseconds. The last bucket is unbounded (`u64::MAX` catches the rest).
pub const LATENCY_BUCKET_BOUNDS_NS: [u64; 6] = [
    100_000,       // ≤ 100µs
    1_000_000,     // ≤ 1ms
    10_000_000,    // ≤ 10ms
    100_000_000,   // ≤ 100ms
    1_000_000_000, // ≤ 1s
    u64::MAX,      // > 1s
];

/// The engine's metrics registry: atomic counters updated as queries flow
/// through the pipeline. Owned by the [`Engine`](crate::Engine); shared
/// references are handed to in-flight [`Cursor`](crate::Cursor)s so each
/// records its completion exactly once (on collect, finish or drop).
#[derive(Debug, Default)]
pub struct EngineMetrics {
    queries_executed: AtomicU64,
    rows_returned: AtomicU64,
    statements_prepared: AtomicU64,
    prepared_cache_hits: AtomicU64,
    prepared_cache_misses: AtomicU64,
    parse_ns: AtomicU64,
    optimize_ns: AtomicU64,
    plan_ns: AtomicU64,
    execute_ns: AtomicU64,
    latency_buckets: [AtomicU64; LATENCY_BUCKET_BOUNDS_NS.len()],
    law_applications: Mutex<BTreeMap<String, u64>>,
    queries_spilled: AtomicU64,
    spill_partitions: AtomicU64,
    spill_rows_written: AtomicU64,
    spill_rows_read: AtomicU64,
    chunks_skipped: AtomicU64,
}

fn saturating_ns(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

impl EngineMetrics {
    pub(crate) fn add_parse(&self, elapsed: Duration) {
        self.parse_ns
            .fetch_add(saturating_ns(elapsed), Ordering::Relaxed);
    }

    pub(crate) fn add_optimize(&self, elapsed: Duration) {
        self.optimize_ns
            .fetch_add(saturating_ns(elapsed), Ordering::Relaxed);
    }

    pub(crate) fn add_plan(&self, elapsed: Duration) {
        self.plan_ns
            .fetch_add(saturating_ns(elapsed), Ordering::Relaxed);
    }

    /// One query execution finished (successfully or not): bump the query
    /// counter, account the returned rows and place the latency in its
    /// histogram bucket.
    pub(crate) fn record_execution(&self, rows: u64, elapsed: Duration) {
        let ns = saturating_ns(elapsed);
        self.queries_executed.fetch_add(1, Ordering::Relaxed);
        self.rows_returned.fetch_add(rows, Ordering::Relaxed);
        self.execute_ns.fetch_add(ns, Ordering::Relaxed);
        let bucket = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .expect("last bound is u64::MAX");
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one finished execution's out-of-core statistics into the
    /// session counters: spill traffic from the hybrid hash operators and
    /// zone-map chunk skips from attached-table scans.
    pub(crate) fn record_exec_stats(&self, stats: &div_physical::ExecStats) {
        if stats.spill_partitions > 0 {
            self.queries_spilled.fetch_add(1, Ordering::Relaxed);
            self.spill_partitions
                .fetch_add(stats.spill_partitions as u64, Ordering::Relaxed);
            self.spill_rows_written
                .fetch_add(stats.spill_rows_written as u64, Ordering::Relaxed);
            self.spill_rows_read
                .fetch_add(stats.spill_rows_read as u64, Ordering::Relaxed);
        }
        if stats.chunks_skipped > 0 {
            self.chunks_skipped
                .fetch_add(stats.chunks_skipped as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_prepare(&self) {
        self.statements_prepared.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_prepared_cache(&self, hit: bool) {
        if hit {
            self.prepared_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.prepared_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Credit the rewrite laws the optimizer reports for one compilation.
    pub(crate) fn record_laws(&self, applied: &[div_rewrite::engine::AppliedRule]) {
        if applied.is_empty() {
            return;
        }
        let counts = div_rewrite::engine::count_applications(applied);
        let mut laws = self.law_applications.lock().expect("metrics lock");
        for (rule, n) in counts {
            *laws.entry(rule).or_insert(0) += n;
        }
    }

    /// Read every counter into a [`MetricsSnapshot`].
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries_executed: self.queries_executed.load(Ordering::Relaxed),
            rows_returned: self.rows_returned.load(Ordering::Relaxed),
            statements_prepared: self.statements_prepared.load(Ordering::Relaxed),
            prepared_cache_hits: self.prepared_cache_hits.load(Ordering::Relaxed),
            prepared_cache_misses: self.prepared_cache_misses.load(Ordering::Relaxed),
            parse_ns: self.parse_ns.load(Ordering::Relaxed),
            optimize_ns: self.optimize_ns.load(Ordering::Relaxed),
            plan_ns: self.plan_ns.load(Ordering::Relaxed),
            execute_ns: self.execute_ns.load(Ordering::Relaxed),
            latency_buckets: self
                .latency_buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            law_applications: self.law_applications.lock().expect("metrics lock").clone(),
            queries_spilled: self.queries_spilled.load(Ordering::Relaxed),
            spill_partitions: self.spill_partitions.load(Ordering::Relaxed),
            spill_rows_written: self.spill_rows_written.load(Ordering::Relaxed),
            spill_rows_read: self.spill_rows_read.load(Ordering::Relaxed),
            chunks_skipped: self.chunks_skipped.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of an engine's [`EngineMetrics`] counters, produced
/// by [`Engine::metrics`](crate::Engine::metrics).
///
/// All counters are cumulative since the engine was built. Renders as
/// human-readable text via [`fmt::Display`] and as JSON via
/// [`MetricsSnapshot::to_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Number of query executions that completed (collected, finished or
    /// dropped mid-stream) — prepared-statement executions included.
    pub queries_executed: u64,
    /// Total rows delivered to consumers across all executions.
    pub rows_returned: u64,
    /// Number of [`Engine::prepare`](crate::Engine::prepare) calls.
    pub statements_prepared: u64,
    /// Prepare calls answered from the engine's prepared-plan cache.
    pub prepared_cache_hits: u64,
    /// Prepare calls that had to compile (cold or invalidated cache entry).
    pub prepared_cache_misses: u64,
    /// Cumulative wall time spent in the SQL parser, nanoseconds.
    pub parse_ns: u64,
    /// Cumulative wall time spent in the rewrite-law optimizer, nanoseconds.
    pub optimize_ns: u64,
    /// Cumulative wall time spent in the physical planner, nanoseconds.
    pub plan_ns: u64,
    /// Cumulative wall time spent executing queries (cursor open to finish),
    /// nanoseconds.
    pub execute_ns: u64,
    /// Execution-latency histogram: `latency_buckets[i]` executions took at
    /// most [`LATENCY_BUCKET_BOUNDS_NS`]`[i]` nanoseconds (and more than the
    /// previous bound).
    pub latency_buckets: Vec<u64>,
    /// How often each rewrite law fired at compile time, keyed by rule name.
    pub law_applications: BTreeMap<String, u64>,
    /// Executions in which at least one hybrid hash operator spilled to
    /// disk.
    pub queries_spilled: u64,
    /// Total spill partition files created across all executions.
    pub spill_partitions: u64,
    /// Total rows written to spill files (rows rewritten by recursive
    /// re-partitioning count once per level).
    pub spill_rows_written: u64,
    /// Total rows read back from spill files.
    pub spill_rows_read: u64,
    /// Total attached-table chunks skipped via zone maps under pushed-down
    /// filters.
    pub chunks_skipped: u64,
}

/// Render `ns` with a human unit (ns/µs/ms/s).
pub(crate) fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Human label of latency bucket `i` (e.g. `"<=1ms"`, `">1s"`).
fn bucket_label(i: usize) -> String {
    let bound = LATENCY_BUCKET_BOUNDS_NS[i];
    if bound == u64::MAX {
        format!(">{}", fmt_ns(LATENCY_BUCKET_BOUNDS_NS[i - 1]))
    } else {
        format!("<={}", fmt_ns(bound))
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Serialize the snapshot as a JSON object (hand-rolled; the workspace
    /// deliberately carries no serialization dependency).
    pub fn to_json(&self) -> String {
        let buckets = self
            .latency_buckets
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let bounds = LATENCY_BUCKET_BOUNDS_NS
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let laws = self
            .law_applications
            .iter()
            .map(|(rule, n)| format!("\"{}\": {n}", escape_json(rule)))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            concat!(
                "{{\"queries_executed\": {}, \"rows_returned\": {}, ",
                "\"statements_prepared\": {}, \"prepared_cache_hits\": {}, ",
                "\"prepared_cache_misses\": {}, \"parse_ns\": {}, ",
                "\"optimize_ns\": {}, \"plan_ns\": {}, \"execute_ns\": {}, ",
                "\"latency_bucket_bounds_ns\": [{}], \"latency_buckets\": [{}], ",
                "\"queries_spilled\": {}, \"spill_partitions\": {}, ",
                "\"spill_rows_written\": {}, \"spill_rows_read\": {}, ",
                "\"chunks_skipped\": {}, ",
                "\"law_applications\": {{{}}}}}"
            ),
            self.queries_executed,
            self.rows_returned,
            self.statements_prepared,
            self.prepared_cache_hits,
            self.prepared_cache_misses,
            self.parse_ns,
            self.optimize_ns,
            self.plan_ns,
            self.execute_ns,
            bounds,
            buckets,
            self.queries_spilled,
            self.spill_partitions,
            self.spill_rows_written,
            self.spill_rows_read,
            self.chunks_skipped,
            laws,
        )
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "engine metrics:")?;
        writeln!(f, "  queries executed:      {}", self.queries_executed)?;
        writeln!(f, "  rows returned:         {}", self.rows_returned)?;
        writeln!(f, "  statements prepared:   {}", self.statements_prepared)?;
        writeln!(
            f,
            "  prepared cache:        {} hit(s), {} miss(es)",
            self.prepared_cache_hits, self.prepared_cache_misses
        )?;
        writeln!(
            f,
            "  time split:            parse {} | optimize {} | plan {} | execute {}",
            fmt_ns(self.parse_ns),
            fmt_ns(self.optimize_ns),
            fmt_ns(self.plan_ns),
            fmt_ns(self.execute_ns)
        )?;
        writeln!(f, "  execution latency histogram:")?;
        for (i, count) in self.latency_buckets.iter().enumerate() {
            writeln!(f, "    {:>8}: {count}", bucket_label(i))?;
        }
        writeln!(
            f,
            "  out-of-core:           {} spilled quer{}, {} partition(s), \
             {} row(s) written, {} row(s) read, {} chunk(s) skipped",
            self.queries_spilled,
            if self.queries_spilled == 1 {
                "y"
            } else {
                "ies"
            },
            self.spill_partitions,
            self.spill_rows_written,
            self.spill_rows_read,
            self.chunks_skipped
        )?;
        if self.law_applications.is_empty() {
            writeln!(f, "  rewrite laws applied:  none")?;
        } else {
            writeln!(f, "  rewrite laws applied:")?;
            for (rule, n) in &self.law_applications {
                writeln!(f, "    {rule}: {n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_recording_fills_counters_and_histogram() {
        let metrics = EngineMetrics::default();
        metrics.record_execution(10, Duration::from_micros(50)); // ≤100µs bucket
        metrics.record_execution(5, Duration::from_millis(5)); // ≤10ms bucket
        let snap = metrics.snapshot();
        assert_eq!(snap.queries_executed, 2);
        assert_eq!(snap.rows_returned, 15);
        assert_eq!(snap.latency_buckets[0], 1);
        assert_eq!(snap.latency_buckets[2], 1);
        assert_eq!(snap.latency_buckets.iter().sum::<u64>(), 2);
        assert!(snap.execute_ns >= 5_000_000);
    }

    #[test]
    fn law_applications_accumulate_across_compilations() {
        let mk = |rule: &str| div_rewrite::engine::AppliedRule {
            rule: rule.to_string(),
            reference: "Law".to_string(),
            pass: 1,
            nodes_before: 1,
            nodes_after: 1,
        };
        let metrics = EngineMetrics::default();
        metrics.record_laws(&[mk("law-15"), mk("law-15"), mk("law-14")]);
        metrics.record_laws(&[mk("law-15")]);
        let snap = metrics.snapshot();
        assert_eq!(snap.law_applications.get("law-15"), Some(&3));
        assert_eq!(snap.law_applications.get("law-14"), Some(&1));
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let metrics = EngineMetrics::default();
        metrics.record_execution(3, Duration::from_micros(10));
        metrics.record_prepare();
        metrics.record_prepared_cache(false);
        let json = metrics.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries_executed\": 1"));
        assert!(json.contains("\"rows_returned\": 3"));
        assert!(json.contains("\"statements_prepared\": 1"));
        assert!(json.contains("\"prepared_cache_misses\": 1"));
        assert!(json.contains("\"latency_buckets\": [1, 0, 0, 0, 0, 0]"));
        assert!(json.contains("\"law_applications\": {}"));
        // Balanced braces/brackets — a cheap well-formedness check that
        // catches concat!-format slips without a JSON parser dependency.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn display_lists_every_section() {
        let metrics = EngineMetrics::default();
        metrics.record_execution(1, Duration::from_secs(2)); // >1s bucket
        let text = metrics.snapshot().to_string();
        assert!(text.contains("queries executed:      1"));
        assert!(text.contains("execution latency histogram:"));
        assert!(text.contains(">1.00s"));
        assert!(text.contains("rewrite laws applied:  none"));
    }
}
