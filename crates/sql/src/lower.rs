//! Translation of parsed SQL into logical plans.
//!
//! Two paths exist, mirroring Section 4 of the paper:
//!
//! * Queries using the proposed `DIVIDE BY … ON` syntax (Q1, Q2) are lowered
//!   directly: the `<quotient>` becomes a [`LogicalPlan::SmallDivide`] when
//!   every divisor attribute appears in the `ON` clause as a conjunction of
//!   equi-joins, and a [`LogicalPlan::GreatDivide`] otherwise. Join conditions
//!   other than conjunctions of equality comparisons between a dividend and a
//!   divisor column are rejected, following the paper's suggestion to
//!   disallow them.
//! * Queries formulating universal quantification with the classic double
//!   `NOT EXISTS` pattern (Q3) are recognized by
//!   [`detect_double_not_exists`] and rewritten into a great divide — the
//!   rewrite the paper describes as difficult for a general query optimizer.
//!   Other correlated subqueries are rejected with a clear error.

use crate::ast::{
    ColumnRef, Query, SelectItem, SqlCompareOp, SqlCondition, SqlLiteral, SqlOperand, TableFactor,
    TableReference,
};
use div_algebra::{CompareOp, Predicate, Schema, Value};
use div_expr::{infer_schema, Catalog, ExprError, LogicalPlan};

type Result<T> = std::result::Result<T, ExprError>;

/// A lowered table reference: the plan plus the aliases it binds and their
/// visible schemas (used to resolve qualified column references).
struct Lowered {
    plan: LogicalPlan,
    bindings: Vec<(String, Schema)>,
}

impl Lowered {
    fn output_schema(&self, catalog: &Catalog) -> Result<Schema> {
        infer_schema(&self.plan, catalog)
    }
}

/// Translate a parsed query into a logical plan over `catalog`.
pub fn translate_query(query: &Query, catalog: &Catalog) -> Result<LogicalPlan> {
    // The Q3 shape: no DIVIDE BY but a double NOT EXISTS — rewrite it.
    if !query.uses_divide_by() && query.uses_exists() {
        if let Some(plan) = detect_double_not_exists(query, catalog)? {
            return Ok(plan);
        }
        return Err(ExprError::invalid(
            "unsupported correlated subquery: only the double NOT EXISTS universal-quantification \
             pattern (query Q3 of the paper) is recognized",
        ));
    }

    // Lower the FROM clause.
    let mut lowered: Option<Lowered> = None;
    for table_ref in &query.from {
        let next = lower_table_reference(table_ref, catalog)?;
        lowered = Some(match lowered {
            None => next,
            Some(acc) => {
                let mut bindings = acc.bindings;
                bindings.extend(next.bindings);
                Lowered {
                    plan: LogicalPlan::Product {
                        left: Box::new(acc.plan),
                        right: Box::new(next.plan),
                    },
                    bindings,
                }
            }
        });
    }
    let lowered = lowered.ok_or_else(|| ExprError::invalid("FROM clause is empty"))?;

    // WHERE clause.
    let mut plan = lowered.plan.clone();
    if let Some(cond) = &query.where_clause {
        let predicate = translate_condition(cond, &lowered.bindings)?;
        plan = LogicalPlan::Select {
            input: Box::new(plan),
            predicate,
        };
    }

    // SELECT list.
    if query
        .select
        .iter()
        .any(|item| matches!(item, SelectItem::Wildcard))
    {
        return Ok(plan);
    }
    // Resolve the select list against the bindings first (this reports
    // unknown or ambiguous columns precisely), then validate against the
    // actual output schema.
    let mut attributes = Vec::new();
    for item in &query.select {
        let SelectItem::Column(col) = item else {
            continue;
        };
        attributes.push(resolve_column(col, &lowered.bindings)?);
    }
    let schema = infer_schema(&plan, catalog)?;
    for (item, name) in query.select.iter().zip(&attributes) {
        if !schema.contains(name) {
            return Err(ExprError::invalid(format!(
                "selected column `{item:?}` is not produced by the FROM clause (schema {schema})"
            )));
        }
    }
    Ok(LogicalPlan::Project {
        input: Box::new(plan),
        attributes,
    })
}

fn lower_table_reference(table_ref: &TableReference, catalog: &Catalog) -> Result<Lowered> {
    match table_ref {
        TableReference::Factor(factor) => lower_table_factor(factor, catalog),
        TableReference::DivideBy {
            dividend,
            divisor,
            condition,
        } => lower_divide_by(dividend, divisor, condition, catalog),
    }
}

fn lower_table_factor(factor: &TableFactor, catalog: &Catalog) -> Result<Lowered> {
    match factor {
        TableFactor::Table { name, alias } => {
            let plan = LogicalPlan::Scan {
                table: name.clone(),
            };
            let schema = infer_schema(&plan, catalog)?;
            let binding = alias.clone().unwrap_or_else(|| name.clone());
            Ok(Lowered {
                plan,
                bindings: vec![(binding, schema)],
            })
        }
        TableFactor::Derived { query, alias } => {
            let plan = translate_query(query, catalog)?;
            let schema = infer_schema(&plan, catalog)?;
            let binding = alias
                .clone()
                .ok_or_else(|| ExprError::invalid("derived tables require an alias"))?;
            Ok(Lowered {
                plan,
                bindings: vec![(binding, schema)],
            })
        }
    }
}

fn lower_divide_by(
    dividend: &TableReference,
    divisor: &TableReference,
    condition: &SqlCondition,
    catalog: &Catalog,
) -> Result<Lowered> {
    let dividend_lowered = lower_table_reference(dividend, catalog)?;
    let divisor_lowered = lower_table_reference(divisor, catalog)?;
    let dividend_schema = dividend_lowered.output_schema(catalog)?;
    let divisor_schema = divisor_lowered.output_schema(catalog)?;

    // The ON clause must be a conjunction of equi-joins between one dividend
    // and one divisor column.
    let mut join_pairs: Vec<(String, String)> = Vec::new();
    for conjunct in condition.conjuncts() {
        let SqlCondition::Comparison {
            left,
            op: SqlCompareOp::Eq,
            right,
        } = conjunct
        else {
            return Err(ExprError::invalid(
                "the ON clause of DIVIDE BY must be a conjunction of equality comparisons \
                 between a dividend column and a divisor column",
            ));
        };
        let (SqlOperand::Column(l), SqlOperand::Column(r)) = (left, right) else {
            return Err(ExprError::invalid(
                "the ON clause of DIVIDE BY must compare columns, not literals",
            ));
        };
        let l_name = resolve_column(l, &dividend_lowered.bindings)
            .ok()
            .filter(|n| dividend_schema.contains(n));
        let r_name = resolve_column(r, &divisor_lowered.bindings)
            .ok()
            .filter(|n| divisor_schema.contains(n));
        let pair = match (l_name, r_name) {
            (Some(d), Some(v)) => (d, v),
            _ => {
                // Try the swapped orientation: divisor column on the left.
                let l_as_divisor = resolve_column(l, &divisor_lowered.bindings)
                    .ok()
                    .filter(|n| divisor_schema.contains(n));
                let r_as_dividend = resolve_column(r, &dividend_lowered.bindings)
                    .ok()
                    .filter(|n| dividend_schema.contains(n));
                match (r_as_dividend, l_as_divisor) {
                    (Some(d), Some(v)) => (d, v),
                    _ => {
                        return Err(ExprError::invalid(format!(
                            "ON clause comparison `{l} = {r}` must relate a dividend column to a \
                             divisor column"
                        )))
                    }
                }
            }
        };
        join_pairs.push(pair);
    }
    if join_pairs.is_empty() {
        return Err(ExprError::invalid(
            "the ON clause of DIVIDE BY must contain at least one equi-join",
        ));
    }

    // Rename divisor join columns to the dividend's names where they differ,
    // so the algebra operator (which matches shared attributes by name) sees
    // the intended B set.
    let mut divisor_plan = divisor_lowered.plan.clone();
    let mut renames: Vec<(String, String)> = Vec::new();
    for (d_name, v_name) in &join_pairs {
        if d_name != v_name {
            renames.push((v_name.clone(), d_name.clone()));
        }
    }
    // Any non-join divisor attribute that collides with a dividend attribute
    // would silently join as well; qualify it with the divisor binding name.
    let join_divisor_names: Vec<&String> = join_pairs.iter().map(|(_, v)| v).collect();
    let divisor_binding = divisor_lowered
        .bindings
        .first()
        .map(|(b, _)| b.clone())
        .unwrap_or_else(|| "divisor".to_string());
    for attr in divisor_schema.names() {
        if !join_divisor_names.iter().any(|v| v.as_str() == attr) && dividend_schema.contains(attr)
        {
            renames.push((attr.to_string(), format!("{divisor_binding}.{attr}")));
        }
    }
    if !renames.is_empty() {
        divisor_plan = LogicalPlan::Rename {
            input: Box::new(divisor_plan),
            renames,
        };
    }
    let renamed_divisor_schema = infer_schema(&divisor_plan, catalog)?;

    // Small divide if every divisor attribute is a join attribute, great
    // divide otherwise (Section 4).
    let shared: Vec<String> = join_pairs.iter().map(|(d, _)| d.clone()).collect();
    let is_small = renamed_divisor_schema
        .names()
        .iter()
        .all(|n| shared.iter().any(|s| s == n));
    let plan = if is_small {
        LogicalPlan::SmallDivide {
            dividend: Box::new(dividend_lowered.plan.clone()),
            divisor: Box::new(divisor_plan),
        }
    } else {
        LogicalPlan::GreatDivide {
            dividend: Box::new(dividend_lowered.plan.clone()),
            divisor: Box::new(divisor_plan),
        }
    };

    // The quotient exposes the dividend's quotient attributes under the
    // dividend binding and the divisor's group attributes under the divisor
    // binding.
    let quotient_schema = infer_schema(&plan, catalog)?;
    let mut bindings = Vec::new();
    for (binding, schema) in dividend_lowered
        .bindings
        .iter()
        .chain(divisor_lowered.bindings.iter())
    {
        let visible: Vec<&str> = schema
            .names()
            .into_iter()
            .filter(|n| quotient_schema.contains(n))
            .collect();
        if !visible.is_empty() {
            bindings.push((binding.clone(), Schema::new(visible)?));
        }
    }
    Ok(Lowered { plan, bindings })
}

/// Resolve a (possibly qualified) column reference against the visible
/// bindings, returning the plain attribute name.
fn resolve_column(col: &ColumnRef, bindings: &[(String, Schema)]) -> Result<String> {
    match &col.qualifier {
        Some(qualifier) => {
            let (_, schema) = bindings
                .iter()
                .find(|(b, _)| b == qualifier)
                .ok_or_else(|| {
                    ExprError::invalid(format!("unknown table alias `{qualifier}` in `{col}`"))
                })?;
            if !schema.contains(&col.column) {
                return Err(ExprError::invalid(format!(
                    "column `{col}` does not exist in `{qualifier}` (schema {schema})"
                )));
            }
            Ok(col.column.clone())
        }
        None => {
            let matches: Vec<&str> = bindings
                .iter()
                .filter(|(_, schema)| schema.contains(&col.column))
                .map(|(b, _)| b.as_str())
                .collect();
            match matches.len() {
                0 => Err(ExprError::invalid(format!(
                    "column `{}` is not bound by the FROM clause",
                    col.column
                ))),
                1 => Ok(col.column.clone()),
                _ => Err(ExprError::invalid(format!(
                    "column `{}` is ambiguous (bound by {})",
                    col.column,
                    matches.join(", ")
                ))),
            }
        }
    }
}

fn sql_op_to_algebra(op: SqlCompareOp) -> CompareOp {
    match op {
        SqlCompareOp::Eq => CompareOp::Eq,
        SqlCompareOp::NotEq => CompareOp::NotEq,
        SqlCompareOp::Lt => CompareOp::Lt,
        SqlCompareOp::LtEq => CompareOp::LtEq,
        SqlCompareOp::Gt => CompareOp::Gt,
        SqlCompareOp::GtEq => CompareOp::GtEq,
    }
}

fn literal_to_value(literal: &SqlLiteral) -> Value {
    match literal {
        SqlLiteral::Number(n) => Value::Int(*n),
        SqlLiteral::String(s) => Value::str(s.clone()),
    }
}

/// Translate a non-correlated search condition to a predicate over the
/// combined FROM schema.
fn translate_condition(
    condition: &SqlCondition,
    bindings: &[(String, Schema)],
) -> Result<Predicate> {
    match condition {
        SqlCondition::Comparison { left, op, right } => {
            let op = sql_op_to_algebra(*op);
            match (left, right) {
                (SqlOperand::Column(l), SqlOperand::Column(r)) => Ok(Predicate::cmp_attrs(
                    resolve_column(l, bindings)?,
                    op,
                    resolve_column(r, bindings)?,
                )),
                (SqlOperand::Column(l), SqlOperand::Literal(v)) => Ok(Predicate::cmp_value(
                    resolve_column(l, bindings)?,
                    op,
                    literal_to_value(v),
                )),
                (SqlOperand::Literal(v), SqlOperand::Column(r)) => Ok(Predicate::cmp_value(
                    resolve_column(r, bindings)?,
                    op.flip(),
                    literal_to_value(v),
                )),
                (SqlOperand::Column(l), SqlOperand::Parameter(name)) => Ok(Predicate::cmp_param(
                    resolve_column(l, bindings)?,
                    op,
                    name.clone(),
                )),
                (SqlOperand::Parameter(name), SqlOperand::Column(r)) => Ok(Predicate::cmp_param(
                    resolve_column(r, bindings)?,
                    op.flip(),
                    name.clone(),
                )),
                (SqlOperand::Literal(_), SqlOperand::Literal(_)) => Err(ExprError::invalid(
                    "comparisons between two literals are not supported",
                )),
                (SqlOperand::Parameter(_), _) | (_, SqlOperand::Parameter(_)) => {
                    Err(ExprError::invalid(
                        "a `$parameter` placeholder may only be compared with a column",
                    ))
                }
            }
        }
        SqlCondition::And(l, r) => {
            Ok(translate_condition(l, bindings)?.and(translate_condition(r, bindings)?))
        }
        SqlCondition::Or(l, r) => {
            Ok(translate_condition(l, bindings)?.or(translate_condition(r, bindings)?))
        }
        SqlCondition::Not(inner) => Ok(translate_condition(inner, bindings)?.negate()),
        SqlCondition::Exists(_) => Err(ExprError::invalid(
            "EXISTS subqueries are only supported in the double NOT EXISTS pattern",
        )),
    }
}

/// The ingredients of a recognized double-`NOT EXISTS` query.
#[derive(Debug, Clone, PartialEq, Eq)]
struct UniversalPattern {
    outer_table: String,
    outer_alias: String,
    inner_table: String,
    inner_alias: String,
    /// Attribute of the outer (dividend) table correlated with the outermost
    /// query (`i`, e.g. `s#`).
    dividend_key: String,
    /// Attribute joining the two tables (`j`, e.g. `p#`) as named in the
    /// dividend table and in the divisor table.
    join_dividend: String,
    join_divisor: String,
    /// Attribute of the divisor table correlated with the outermost query
    /// (`k`, e.g. `color`).
    group_key: String,
}

/// Try to recognize the double `NOT EXISTS` universal-quantification pattern
/// (query Q3) and rewrite it to a great divide. Returns `Ok(None)` when the
/// query does not match the pattern.
pub fn detect_double_not_exists(query: &Query, catalog: &Catalog) -> Result<Option<LogicalPlan>> {
    let Some(pattern) = match_pattern(query) else {
        return Ok(None);
    };
    // Build: π_select( π_{i,j}(T1) ÷* π_{j,k}(T2) ).
    let dividend = LogicalPlan::Project {
        input: Box::new(LogicalPlan::Scan {
            table: pattern.outer_table.clone(),
        }),
        attributes: vec![pattern.dividend_key.clone(), pattern.join_dividend.clone()],
    };
    let mut divisor: LogicalPlan = LogicalPlan::Project {
        input: Box::new(LogicalPlan::Scan {
            table: pattern.inner_table.clone(),
        }),
        attributes: vec![pattern.join_divisor.clone(), pattern.group_key.clone()],
    };
    if pattern.join_divisor != pattern.join_dividend {
        divisor = LogicalPlan::Rename {
            input: Box::new(divisor),
            renames: vec![(pattern.join_divisor.clone(), pattern.join_dividend.clone())],
        };
    }
    let divide = LogicalPlan::GreatDivide {
        dividend: Box::new(dividend),
        divisor: Box::new(divisor),
    };
    // Validate against the catalog before projecting.
    infer_schema(&divide, catalog)?;

    // Project the requested select list (wildcard keeps the quotient as-is).
    if query
        .select
        .iter()
        .any(|item| matches!(item, SelectItem::Wildcard))
    {
        return Ok(Some(divide));
    }
    let mut attributes = Vec::new();
    for item in &query.select {
        let SelectItem::Column(col) = item else {
            continue;
        };
        let name = match &col.qualifier {
            Some(q) if *q == pattern.outer_alias => pattern.dividend_key.clone(),
            Some(q) if *q == pattern.inner_alias => pattern.group_key.clone(),
            Some(q) => {
                return Err(ExprError::invalid(format!(
                    "unknown alias `{q}` in the select list"
                )))
            }
            None => col.column.clone(),
        };
        attributes.push(name);
    }
    Ok(Some(LogicalPlan::Project {
        input: Box::new(divide),
        attributes,
    }))
}

fn single_table(from: &[TableReference]) -> Option<(String, String)> {
    if from.len() != 1 {
        return None;
    }
    match &from[0] {
        TableReference::Factor(TableFactor::Table { name, alias }) => {
            Some((name.clone(), alias.clone().unwrap_or_else(|| name.clone())))
        }
        _ => None,
    }
}

/// Extract `(qualifier, column)` pairs from an equality between two qualified
/// columns.
fn qualified_equality(cond: &SqlCondition) -> Option<((String, String), (String, String))> {
    let SqlCondition::Comparison {
        left: SqlOperand::Column(l),
        op: SqlCompareOp::Eq,
        right: SqlOperand::Column(r),
    } = cond
    else {
        return None;
    };
    Some((
        (l.qualifier.clone()?, l.column.clone()),
        (r.qualifier.clone()?, r.column.clone()),
    ))
}

/// Find, among two `(qualifier, column)` pairs, the one qualified by `alias`;
/// returns `(matching column, other pair)`.
fn pick_side(
    pair: ((String, String), (String, String)),
    alias: &str,
) -> Option<(String, (String, String))> {
    let (a, b) = pair;
    if a.0 == alias {
        Some((a.1, b))
    } else if b.0 == alias {
        Some((b.1, a))
    } else {
        None
    }
}

fn match_pattern(query: &Query) -> Option<UniversalPattern> {
    // Outer FROM: exactly two base tables.
    if query.from.len() != 2 {
        return None;
    }
    let (outer_table, outer_alias) = match &query.from[0] {
        TableReference::Factor(TableFactor::Table { name, alias }) => {
            (name.clone(), alias.clone().unwrap_or_else(|| name.clone()))
        }
        _ => return None,
    };
    let (inner_table, inner_alias) = match &query.from[1] {
        TableReference::Factor(TableFactor::Table { name, alias }) => {
            (name.clone(), alias.clone().unwrap_or_else(|| name.clone()))
        }
        _ => return None,
    };
    // WHERE: NOT EXISTS (mid).
    let SqlCondition::Not(not_inner) = query.where_clause.as_ref()? else {
        return None;
    };
    let SqlCondition::Exists(mid) = not_inner.as_ref() else {
        return None;
    };
    // Middle query: FROM inner_table AS y2 WHERE y2.k = y1.k AND NOT EXISTS (inner).
    let (mid_table, mid_alias) = single_table(&mid.from)?;
    if mid_table != inner_table {
        return None;
    }
    let mid_conjuncts = mid.where_clause.as_ref()?.conjuncts();
    if mid_conjuncts.len() != 2 {
        return None;
    }
    let mut group_key = None;
    let mut innermost = None;
    for c in mid_conjuncts {
        if let Some(pair) = qualified_equality(c) {
            // y2.k = y1.k (one side mid_alias, other side inner_alias).
            let (mid_col, other) = pick_side(pair, &mid_alias)?;
            if other.0 == inner_alias && other.1 == mid_col {
                group_key = Some(mid_col);
            } else {
                return None;
            }
        } else if let SqlCondition::Not(n) = c {
            if let SqlCondition::Exists(inner) = n.as_ref() {
                innermost = Some(inner);
            } else {
                return None;
            }
        } else {
            return None;
        }
    }
    let (group_key, innermost) = (group_key?, innermost?);
    // Innermost query: FROM outer_table AS x2 WHERE x2.j = y2.j AND x2.i = x1.i.
    let (in_table, in_alias) = single_table(&innermost.from)?;
    if in_table != outer_table {
        return None;
    }
    let in_conjuncts = innermost.where_clause.as_ref()?.conjuncts();
    if in_conjuncts.len() != 2 {
        return None;
    }
    let mut join_dividend = None;
    let mut join_divisor = None;
    let mut dividend_key = None;
    for c in in_conjuncts {
        let pair = qualified_equality(c)?;
        let (x2_col, other) = pick_side(pair, &in_alias)?;
        if other.0 == mid_alias {
            join_dividend = Some(x2_col);
            join_divisor = Some(other.1);
        } else if other.0 == outer_alias {
            if x2_col != other.1 {
                return None;
            }
            dividend_key = Some(x2_col);
        } else {
            return None;
        }
    }
    Some(UniversalPattern {
        outer_table,
        outer_alias,
        inner_table,
        inner_alias,
        dividend_key: dividend_key?,
        join_dividend: join_dividend?,
        join_divisor: join_divisor?,
        group_key,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use div_algebra::relation;
    use div_expr::evaluate;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! {
                ["s#", "p#"] =>
                [1, 1], [1, 2],
                [2, 1], [2, 2], [2, 3],
                [3, 2],
            },
        );
        c.register(
            "parts",
            relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
        );
        c
    }

    #[test]
    fn q1_lowers_to_a_great_divide() {
        let c = catalog();
        let q =
            parse_query("SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#")
                .unwrap();
        let plan = translate_query(&q, &c).unwrap();
        assert!(format!("{plan}").contains("GreatDivide"));
        let expected = relation! {
            ["s#", "color"] =>
            [1, "blue"], [2, "blue"], [2, "red"],
        };
        assert_eq!(evaluate(&plan, &c).unwrap(), expected);
    }

    #[test]
    fn q2_lowers_to_a_small_divide() {
        let c = catalog();
        let q = parse_query(
            "SELECT s# FROM supplies AS s DIVIDE BY \
             (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
        )
        .unwrap();
        let plan = translate_query(&q, &c).unwrap();
        assert!(format!("{plan}").contains("SmallDivide"));
        assert_eq!(
            evaluate(&plan, &c).unwrap(),
            relation! { ["s#"] => [1], [2] }
        );
    }

    #[test]
    fn parameters_lower_to_placeholder_predicates() {
        let c = catalog();
        let q = parse_query("SELECT p# FROM parts WHERE color = $color AND p# >= $min").unwrap();
        let plan = translate_query(&q, &c).unwrap();
        assert_eq!(
            plan.parameters().into_iter().collect::<Vec<_>>(),
            vec!["color".to_string(), "min".to_string()]
        );
        // Flipped orientation binds to the column side.
        let q = parse_query("SELECT p# FROM parts WHERE $min <= p#").unwrap();
        let plan = translate_query(&q, &c).unwrap();
        assert!(format!("{plan}").contains("p# >= $min"));
        // Parameters cannot meet literals or other parameters.
        let q = parse_query("SELECT p# FROM parts WHERE $a = $b").unwrap();
        assert!(translate_query(&q, &c).is_err());
        let q = parse_query("SELECT p# FROM parts WHERE 1 = $b").unwrap();
        assert!(translate_query(&q, &c).is_err());
    }

    #[test]
    fn q3_double_not_exists_is_rewritten_to_a_great_divide() {
        let c = catalog();
        let q = parse_query(
            "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 \
             WHERE NOT EXISTS ( SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND \
             NOT EXISTS ( SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s# ))",
        )
        .unwrap();
        let plan = translate_query(&q, &c).unwrap();
        assert!(plan.contains_division());
        let expected = relation! {
            ["s#", "color"] =>
            [1, "blue"], [2, "blue"], [2, "red"],
        };
        assert_eq!(evaluate(&plan, &c).unwrap(), expected);
    }

    #[test]
    fn q1_and_q3_agree() {
        let c = catalog();
        let q1 =
            parse_query("SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#")
                .unwrap();
        let q3 = parse_query(
            "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 \
             WHERE NOT EXISTS ( SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND \
             NOT EXISTS ( SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s# ))",
        )
        .unwrap();
        let p1 = translate_query(&q1, &c).unwrap();
        let p3 = translate_query(&q3, &c).unwrap();
        assert_eq!(evaluate(&p1, &c).unwrap(), evaluate(&p3, &c).unwrap());
    }

    #[test]
    fn plain_select_where_lowers_to_scan_filter_project() {
        let c = catalog();
        let q = parse_query("SELECT s# FROM supplies WHERE p# >= 2 AND s# <> 3").unwrap();
        let plan = translate_query(&q, &c).unwrap();
        assert_eq!(
            evaluate(&plan, &c).unwrap(),
            relation! { ["s#"] => [1], [2] }
        );
    }

    #[test]
    fn conjunctive_multi_attribute_on_clause_gives_small_divide() {
        let mut c = Catalog::new();
        c.register(
            "r1",
            relation! { ["a", "b", "c"] => [1, 1, 10], [1, 2, 20], [2, 1, 10] },
        );
        c.register("r2", relation! { ["b", "c"] => [1, 10], [2, 20] });
        let q =
            parse_query("SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b AND r1.c = r2.c").unwrap();
        let plan = translate_query(&q, &c).unwrap();
        assert!(format!("{plan}").contains("SmallDivide"));
        assert_eq!(evaluate(&plan, &c).unwrap(), relation! { ["a"] => [1] });
    }

    #[test]
    fn divisor_join_column_with_different_name_is_renamed() {
        let mut c = Catalog::new();
        c.register(
            "supplies",
            relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] },
        );
        c.register("wanted", relation! { ["part_id"] => [1], [2] });
        let q =
            parse_query("SELECT s# FROM supplies AS s DIVIDE BY wanted AS w ON s.p# = w.part_id")
                .unwrap();
        let plan = translate_query(&q, &c).unwrap();
        assert_eq!(evaluate(&plan, &c).unwrap(), relation! { ["s#"] => [1] });
    }

    #[test]
    fn non_equi_on_clauses_are_rejected() {
        let c = catalog();
        let q = parse_query("SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# < p.p#")
            .unwrap();
        assert!(translate_query(&q, &c).is_err());
        let q =
            parse_query("SELECT s# FROM supplies AS s DIVIDE BY parts AS p ON s.p# = 3").unwrap();
        assert!(translate_query(&q, &c).is_err());
    }

    #[test]
    fn unsupported_correlated_subqueries_are_rejected() {
        let c = catalog();
        // A single NOT EXISTS is not the universal-quantification pattern.
        let q = parse_query(
            "SELECT s# FROM supplies AS s1 WHERE NOT EXISTS \
             (SELECT * FROM parts AS p1 WHERE p1.p# = s1.p#)",
        )
        .unwrap();
        let err = translate_query(&q, &c).unwrap_err();
        assert!(err.to_string().contains("NOT EXISTS"));
    }

    #[test]
    fn unknown_columns_and_aliases_are_reported() {
        let c = catalog();
        let q = parse_query("SELECT weight FROM parts").unwrap();
        assert!(translate_query(&q, &c).is_err());
        let q = parse_query("SELECT s# FROM supplies AS s WHERE x.s# = 1").unwrap();
        assert!(translate_query(&q, &c).is_err());
    }

    #[test]
    fn ambiguous_unqualified_columns_are_reported() {
        let mut c = catalog();
        c.register("other", relation! { ["s#"] => [1] });
        let q = parse_query("SELECT s# FROM supplies, other").unwrap();
        let err = translate_query(&q, &c).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }
}
