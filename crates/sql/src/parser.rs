//! Recursive-descent parser for the SQL subset with `DIVIDE BY`.

use crate::ast::{
    ColumnRef, Query, SelectItem, SqlCompareOp, SqlCondition, SqlLiteral, SqlOperand, TableFactor,
    TableReference,
};
use crate::lexer::{tokenize, Token};
use std::fmt;

/// A parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> Self {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one `SELECT` query.
pub fn parse_query(sql: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(sql).map_err(ParseError::new)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.parse_query()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError::new(format!(
            "unexpected trailing input starting at `{}`",
            parser.tokens[parser.pos]
        )));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(keyword))
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.peek_keyword(keyword) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        if self.eat_keyword(keyword) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected keyword `{keyword}`, found `{}`",
                self.peek()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_token(&mut self, token: &Token) -> Result<(), ParseError> {
        match self.advance() {
            Some(t) if &t == token => Ok(()),
            other => Err(ParseError::new(format!(
                "expected `{token}`, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    fn is_reserved(word: &str) -> bool {
        const RESERVED: [&str; 13] = [
            "SELECT", "DISTINCT", "FROM", "WHERE", "AS", "DIVIDE", "BY", "ON", "AND", "OR", "NOT",
            "EXISTS", "GROUP",
        ];
        RESERVED.iter().any(|k| k.eq_ignore_ascii_case(word))
    }

    fn parse_identifier(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(s)) if !Self::is_reserved(&s) => Ok(s),
            Some(other) => Err(ParseError::new(format!(
                "expected identifier, found `{other}`"
            ))),
            None => Err(ParseError::new("expected identifier, found end of input")),
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let select = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_from_list()?;
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_condition()?)
        } else {
            None
        };
        Ok(Query {
            distinct,
            select,
            from,
            where_clause,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>, ParseError> {
        let mut items = Vec::new();
        loop {
            if matches!(self.peek(), Some(Token::Star)) {
                self.advance();
                items.push(SelectItem::Wildcard);
            } else {
                items.push(SelectItem::Column(self.parse_column_ref()?));
            }
            if !matches!(self.peek(), Some(Token::Comma)) {
                break;
            }
            self.advance();
        }
        Ok(items)
    }

    fn parse_column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.parse_identifier()?;
        if matches!(self.peek(), Some(Token::Dot)) {
            self.advance();
            let column = self.parse_identifier()?;
            Ok(ColumnRef::qualified(first, column))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }

    fn parse_from_list(&mut self) -> Result<Vec<TableReference>, ParseError> {
        let mut refs = vec![self.parse_table_reference()?];
        while matches!(self.peek(), Some(Token::Comma)) {
            self.advance();
            refs.push(self.parse_table_reference()?);
        }
        Ok(refs)
    }

    fn parse_table_reference(&mut self) -> Result<TableReference, ParseError> {
        let factor = TableReference::Factor(self.parse_table_factor()?);
        if self.peek_keyword("DIVIDE") {
            self.advance();
            self.expect_keyword("BY")?;
            let divisor = TableReference::Factor(self.parse_table_factor()?);
            self.expect_keyword("ON")?;
            let condition = self.parse_condition()?;
            return Ok(TableReference::DivideBy {
                dividend: Box::new(factor),
                divisor: Box::new(divisor),
                condition,
            });
        }
        Ok(factor)
    }

    fn parse_table_factor(&mut self) -> Result<TableFactor, ParseError> {
        if matches!(self.peek(), Some(Token::LeftParen)) {
            self.advance();
            let query = self.parse_query()?;
            self.expect_token(&Token::RightParen)?;
            let alias = self.parse_optional_alias()?;
            return Ok(TableFactor::Derived {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.parse_identifier()?;
        let alias = self.parse_optional_alias()?;
        Ok(TableFactor::Table { name, alias })
    }

    fn parse_optional_alias(&mut self) -> Result<Option<String>, ParseError> {
        if self.eat_keyword("AS") {
            return Ok(Some(self.parse_identifier()?));
        }
        // Implicit alias: a bare, non-reserved identifier directly after the
        // table factor.
        if let Some(Token::Ident(s)) = self.peek() {
            if !Self::is_reserved(s) {
                let alias = s.clone();
                self.advance();
                return Ok(Some(alias));
            }
        }
        Ok(None)
    }

    fn parse_condition(&mut self) -> Result<SqlCondition, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<SqlCondition, ParseError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = SqlCondition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<SqlCondition, ParseError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = SqlCondition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<SqlCondition, ParseError> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(SqlCondition::Not(Box::new(inner)));
        }
        self.parse_primary_condition()
    }

    fn parse_primary_condition(&mut self) -> Result<SqlCondition, ParseError> {
        if self.eat_keyword("EXISTS") {
            self.expect_token(&Token::LeftParen)?;
            let query = self.parse_query()?;
            self.expect_token(&Token::RightParen)?;
            return Ok(SqlCondition::Exists(Box::new(query)));
        }
        if matches!(self.peek(), Some(Token::LeftParen)) {
            self.advance();
            let cond = self.parse_condition()?;
            self.expect_token(&Token::RightParen)?;
            return Ok(cond);
        }
        let left = self.parse_operand()?;
        let op = self.parse_compare_op()?;
        let right = self.parse_operand()?;
        Ok(SqlCondition::Comparison { left, op, right })
    }

    fn parse_operand(&mut self) -> Result<SqlOperand, ParseError> {
        match self.peek() {
            Some(Token::Number(n)) => {
                let n = *n;
                self.advance();
                Ok(SqlOperand::Literal(SqlLiteral::Number(n)))
            }
            Some(Token::String(s)) => {
                let s = s.clone();
                self.advance();
                Ok(SqlOperand::Literal(SqlLiteral::String(s)))
            }
            Some(Token::Parameter(name)) => {
                let name = name.clone();
                self.advance();
                Ok(SqlOperand::Parameter(name))
            }
            _ => Ok(SqlOperand::Column(self.parse_column_ref()?)),
        }
    }

    fn parse_compare_op(&mut self) -> Result<SqlCompareOp, ParseError> {
        match self.advance() {
            Some(Token::Eq) => Ok(SqlCompareOp::Eq),
            Some(Token::NotEq) => Ok(SqlCompareOp::NotEq),
            Some(Token::Lt) => Ok(SqlCompareOp::Lt),
            Some(Token::LtEq) => Ok(SqlCompareOp::LtEq),
            Some(Token::Gt) => Ok(SqlCompareOp::Gt),
            Some(Token::GtEq) => Ok(SqlCompareOp::GtEq),
            other => Err(ParseError::new(format!(
                "expected comparison operator, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let q =
            parse_query("SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#")
                .unwrap();
        assert!(!q.distinct);
        assert_eq!(q.select.len(), 2);
        assert!(q.uses_divide_by());
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn parses_q2_with_derived_divisor() {
        let q = parse_query(
            "SELECT s# FROM supplies AS s DIVIDE BY (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
        )
        .unwrap();
        match &q.from[0] {
            TableReference::DivideBy { divisor, .. } => match divisor.as_ref() {
                TableReference::Factor(TableFactor::Derived { alias, query }) => {
                    assert_eq!(alias.as_deref(), Some("p"));
                    assert!(query.where_clause.is_some());
                }
                other => panic!("unexpected divisor {other:?}"),
            },
            other => panic!("unexpected table reference {other:?}"),
        }
    }

    #[test]
    fn parses_q3_double_not_exists() {
        let q = parse_query(
            "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 \
             WHERE NOT EXISTS ( SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND \
             NOT EXISTS ( SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s# ))",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.from.len(), 2);
        assert!(q.uses_exists());
        assert!(!q.uses_divide_by());
    }

    #[test]
    fn parses_conjunctive_on_clause() {
        let q =
            parse_query("SELECT a FROM r1 DIVIDE BY r2 ON r1.b = r2.b AND r1.c = r2.c").unwrap();
        match &q.from[0] {
            TableReference::DivideBy { condition, .. } => {
                assert_eq!(condition.conjuncts().len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reports_helpful_errors() {
        assert!(parse_query("SELECT").is_err());
        assert!(parse_query("SELECT a FROM").is_err());
        assert!(parse_query("SELECT a FROM r1 DIVIDE r2").is_err());
        assert!(parse_query("SELECT a FROM r1 WHERE a").is_err());
        assert!(parse_query("SELECT a FROM r1 extra junk ,").is_err());
        let err = parse_query("SELECT a FROM r1 DIVIDE BY r2").unwrap_err();
        assert!(err.to_string().contains("ON"));
    }

    #[test]
    fn parses_parameter_placeholders() {
        let q = parse_query(
            "SELECT s# FROM supplies AS s DIVIDE BY \
             (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#",
        )
        .unwrap();
        assert_eq!(
            q.parameters().into_iter().collect::<Vec<_>>(),
            vec!["color".to_string()]
        );
        let q = parse_query("SELECT * FROM parts WHERE $lo <= p# AND p# < $hi").unwrap();
        assert_eq!(q.parameters().len(), 2);
        assert!(parse_query("SELECT * FROM parts WHERE p# = $").is_err());
    }

    #[test]
    fn implicit_aliases_and_wildcards() {
        let q = parse_query("SELECT * FROM supplies s WHERE s.p# >= 2").unwrap();
        assert_eq!(q.select, vec![SelectItem::Wildcard]);
        match &q.from[0] {
            TableReference::Factor(TableFactor::Table { alias, .. }) => {
                assert_eq!(alias.as_deref(), Some("s"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
