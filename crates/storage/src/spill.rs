//! Spill-file lifecycle for out-of-core operators.
//!
//! A [`SpillManager`] owns one process-unique temporary directory; every
//! spill partition is a table-format file ([`crate::TableWriter`] /
//! [`crate::TableReader`]) inside it, so spilled data gets the same
//! encodings, checksums and chunk-at-a-time access as persistent tables.
//! The directory — and everything in it — is removed when the manager is
//! dropped, which is what makes cleanup automatic on *every* exit path of a
//! spilling operator: success, budget abort, cancellation, or a failpoint
//! error mid-spill all unwind through the operator's owned manager.

use crate::{Result, StorageError, TableReader, TableWriter};
use div_algebra::Schema;
use div_columnar::ColumnarBatch;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter so concurrent queries (and tests) get distinct
/// spill directories.
static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

/// Owns a temporary directory of spill files; removes it on drop.
#[derive(Debug)]
pub struct SpillManager {
    dir: PathBuf,
    next_file: u64,
    files_created: usize,
}

impl SpillManager {
    /// Create a fresh spill directory under the system temp dir.
    pub fn new() -> Result<SpillManager> {
        let dir = std::env::temp_dir().join(format!(
            "div-spill-{}-{}",
            std::process::id(),
            NEXT_DIR.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| StorageError::Io {
            context: format!("create spill dir {}", dir.display()),
            message: e.to_string(),
        })?;
        Ok(SpillManager {
            dir,
            next_file: 0,
            files_created: 0,
        })
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of spill files created through this manager so far.
    pub fn files_created(&self) -> usize {
        self.files_created
    }

    /// Start a new spill partition file with the given schema.
    pub fn create_file(&mut self, schema: Schema) -> Result<SpillWriter> {
        let path = self.dir.join(format!("part-{:06}.divt", self.next_file));
        self.next_file += 1;
        self.files_created += 1;
        Ok(SpillWriter {
            writer: TableWriter::create(&path, schema)?,
            rows: 0,
        })
    }
}

impl Drop for SpillManager {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// An open spill partition being written.
#[derive(Debug)]
pub struct SpillWriter {
    writer: TableWriter,
    rows: usize,
}

impl SpillWriter {
    /// Append one batch to the partition.
    pub fn write(&mut self, batch: &ColumnarBatch) -> Result<()> {
        self.rows += batch.num_rows();
        self.writer.write_batch(batch)
    }

    /// Rows written so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Seal the partition; the handle can then be read back.
    pub fn finish(self) -> Result<SpillHandle> {
        let path = self.writer.path().to_path_buf();
        let rows = self.rows;
        self.writer.finish()?;
        Ok(SpillHandle { path, rows })
    }
}

/// A sealed, readable spill partition.
#[derive(Debug, Clone)]
pub struct SpillHandle {
    path: PathBuf,
    rows: usize,
}

impl SpillHandle {
    /// Rows in the partition (tracked at write time — no IO).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Open the partition for chunk-at-a-time reading.
    pub fn open(&self) -> Result<TableReader> {
        TableReader::open(&self.path)
    }

    /// Delete the partition file eagerly (recursive re-partitioning
    /// replaces files; waiting for the manager drop would double disk
    /// usage per recursion level).
    pub fn delete(self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    #[test]
    fn spill_files_round_trip_and_directory_is_removed_on_drop() {
        let mut manager = SpillManager::new().unwrap();
        let dir = manager.dir().to_path_buf();
        assert!(dir.is_dir());
        let batch = ColumnarBatch::from_relation(&relation! { ["a", "b"] => [1, 2], [3, 4] });
        let mut writer = manager.create_file(batch.schema().clone()).unwrap();
        writer.write(&batch).unwrap();
        writer.write(&batch).unwrap();
        assert_eq!(writer.rows(), 4);
        let handle = writer.finish().unwrap();
        assert_eq!(handle.rows(), 4);
        let reader = handle.open().unwrap();
        assert_eq!(reader.row_count(), 4);
        assert_eq!(reader.chunk_count(), 2);
        assert_eq!(manager.files_created(), 1);
        drop(manager);
        assert!(!dir.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn managers_get_distinct_directories() {
        let a = SpillManager::new().unwrap();
        let b = SpillManager::new().unwrap();
        assert_ne!(a.dir(), b.dir());
    }
}
