//! The on-disk table format: `TableWriter` / `TableReader`.
//!
//! ```text
//! ┌──────────┬─────────┬─────────┬───┬────────┬───────────┬────────────┬──────────┐
//! │ MAGIC(8) │ chunk 0 │ chunk 1 │ … │ footer │ len: u64  │ crc: u32   │ MAGIC(8) │
//! └──────────┴─────────┴─────────┴───┴────────┴───────────┴────────────┴──────────┘
//! ```
//!
//! Each *chunk* is one [`ColumnarBatch`] worth of rows, its columns encoded
//! back to back (dictionary + RLE for strings, RLE-or-plain for integers —
//! see [`crate::codec`]). The *footer* records the schema, total row count
//! and a per-chunk index: byte offset, length, row count, CRC-32 of the
//! payload, and a per-column zone map ([`ColumnZone`]). The trailing
//! `len`/`crc`/magic triplet lets a reader locate and validate the footer
//! from the end of the file without scanning the chunks; the chunk CRCs are
//! verified lazily, as each chunk is read.
//!
//! Any flipped byte anywhere in the file surfaces as a typed
//! [`StorageError`]: chunk bytes via the chunk CRC, footer bytes via the
//! footer CRC, the trailer fields via the trailing magic / footer CRC, and
//! the leading magic via [`StorageError::BadMagic`].

use crate::checksum::crc32;
use crate::codec::{
    self, chunk_may_match, put_str, put_u16, put_u32, put_u64, ByteReader, ColumnZone,
};
use crate::{Result, StorageError};
use div_algebra::{Predicate, Relation, Schema};
use div_columnar::ColumnarBatch;
use div_expr::{ExprError, ExternalScan, ExternalTable};
use std::fs::File;
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Leading and trailing file magic (`DIVCOL` + format version digits).
pub const MAGIC: [u8; 8] = *b"DIVCOL01";
/// Footer payload version.
const FORMAT_VERSION: u16 = 1;
/// Default rows per chunk when writing a whole relation.
pub const DEFAULT_CHUNK_ROWS: usize = 1024;

fn io_err(context: &str, err: std::io::Error) -> StorageError {
    StorageError::Io {
        context: context.to_string(),
        message: err.to_string(),
    }
}

/// Footer entry describing one chunk.
#[derive(Debug, Clone)]
pub(crate) struct ChunkMeta {
    offset: u64,
    len: u64,
    rows: u32,
    crc: u32,
    zones: Vec<ColumnZone>,
}

/// Streaming writer for the columnar table format.
///
/// Each [`write_batch`](TableWriter::write_batch) call becomes one on-disk
/// chunk; [`finish`](TableWriter::finish) writes the footer and flushes.
/// Dropping a writer without finishing leaves a file with no valid trailer
/// — readers reject it, so a crash mid-write cannot be mistaken for a
/// complete table.
#[derive(Debug)]
pub struct TableWriter {
    file: File,
    path: PathBuf,
    schema: Schema,
    offset: u64,
    rows: u64,
    chunks: Vec<ChunkMeta>,
}

impl TableWriter {
    /// Create (truncating) `path` and write the file header.
    pub fn create(path: impl AsRef<Path>, schema: Schema) -> Result<TableWriter> {
        let path = path.as_ref().to_path_buf();
        let mut file =
            File::create(&path).map_err(|e| io_err(&format!("create {}", path.display()), e))?;
        file.write_all(&MAGIC)
            .map_err(|e| io_err("write header", e))?;
        Ok(TableWriter {
            file,
            path,
            schema,
            offset: MAGIC.len() as u64,
            rows: 0,
            chunks: Vec::new(),
        })
    }

    /// The path being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Append one batch as one chunk. Empty batches are ignored; the batch
    /// schema must equal the writer's schema.
    pub fn write_batch(&mut self, batch: &ColumnarBatch) -> Result<()> {
        if batch.schema() != &self.schema {
            return Err(StorageError::Schema {
                reason: format!(
                    "batch schema {:?} does not match table schema {:?}",
                    batch.schema().names(),
                    self.schema.names()
                ),
            });
        }
        if batch.num_rows() == 0 {
            return Ok(());
        }
        let payload = codec::encode_chunk(batch);
        let zones = batch.columns().iter().map(codec::column_zone).collect();
        self.chunks.push(ChunkMeta {
            offset: self.offset,
            len: payload.len() as u64,
            rows: batch.num_rows() as u32,
            crc: crc32(&payload),
            zones,
        });
        self.file
            .write_all(&payload)
            .map_err(|e| io_err("write chunk", e))?;
        self.offset += payload.len() as u64;
        self.rows += batch.num_rows() as u64;
        Ok(())
    }

    /// Write the footer + trailer and flush. The file is complete and
    /// readable after this returns.
    pub fn finish(mut self) -> Result<()> {
        let mut footer = Vec::new();
        put_u16(&mut footer, FORMAT_VERSION);
        put_u32(&mut footer, self.schema.arity() as u32);
        for name in self.schema.names() {
            put_str(&mut footer, name);
        }
        put_u64(&mut footer, self.rows);
        put_u32(&mut footer, self.chunks.len() as u32);
        for chunk in &self.chunks {
            put_u64(&mut footer, chunk.offset);
            put_u64(&mut footer, chunk.len);
            put_u32(&mut footer, chunk.rows);
            put_u32(&mut footer, chunk.crc);
            for zone in &chunk.zones {
                codec::put_zone(&mut footer, zone);
            }
        }
        let crc = crc32(&footer);
        self.file
            .write_all(&footer)
            .map_err(|e| io_err("write footer", e))?;
        let mut trailer = Vec::new();
        put_u64(&mut trailer, footer.len() as u64);
        put_u32(&mut trailer, crc);
        trailer.extend_from_slice(&MAGIC);
        self.file
            .write_all(&trailer)
            .map_err(|e| io_err("write trailer", e))?;
        self.file.flush().map_err(|e| io_err("flush", e))
    }

    /// Convenience: write `relation` to `path` in chunks of `chunk_rows`.
    pub fn write_relation(
        path: impl AsRef<Path>,
        relation: &Relation,
        chunk_rows: usize,
    ) -> Result<()> {
        let chunk_rows = chunk_rows.max(1);
        let batch = ColumnarBatch::from_relation(relation);
        let mut writer = TableWriter::create(path, batch.schema().clone())?;
        let rows = batch.num_rows();
        let mut start = 0;
        while start < rows {
            let end = (start + chunk_rows).min(rows);
            let indices: Vec<usize> = (start..end).collect();
            writer.write_batch(&batch.gather(&indices))?;
            start = end;
        }
        writer.finish()
    }
}

/// Reader handle for a columnar table file.
///
/// `open` validates the magic and footer (schema, chunk index, zone maps)
/// but reads no data pages; chunk payloads are read — and CRC-checked — one
/// at a time. The handle itself holds no open file descriptor: each scan
/// opens its own, so one reader can serve concurrent scans.
#[derive(Debug)]
pub struct TableReader {
    path: PathBuf,
    schema: Schema,
    rows: u64,
    chunks: Vec<ChunkMeta>,
}

impl TableReader {
    /// Open `path`, validating the header magic and the footer.
    pub fn open(path: impl AsRef<Path>) -> Result<TableReader> {
        let path = path.as_ref().to_path_buf();
        let display = path.display().to_string();
        let mut file = File::open(&path).map_err(|e| io_err(&format!("open {display}"), e))?;
        let file_len = file.metadata().map_err(|e| io_err("stat", e))?.len();
        let trailer_len = (8 + 4 + MAGIC.len()) as u64;
        if file_len < MAGIC.len() as u64 + trailer_len {
            return Err(StorageError::Corrupt {
                context: format!("{display}: file too short ({file_len} bytes)"),
            });
        }
        let mut head = [0u8; 8];
        file.read_exact(&mut head)
            .map_err(|e| io_err("read header", e))?;
        if head != MAGIC {
            return Err(StorageError::BadMagic { context: display });
        }
        file.seek(SeekFrom::End(-(trailer_len as i64)))
            .map_err(|e| io_err("seek trailer", e))?;
        let mut trailer = vec![0u8; trailer_len as usize];
        file.read_exact(&mut trailer)
            .map_err(|e| io_err("read trailer", e))?;
        let mut tr = ByteReader::new(&trailer, "trailer");
        let footer_len = tr.u64()?;
        let footer_crc = tr.u32()?;
        if tr.take(MAGIC.len())? != MAGIC {
            return Err(StorageError::BadMagic {
                context: format!("{display} (trailer)"),
            });
        }
        let footer_start = file_len
            .checked_sub(trailer_len)
            .and_then(|p| p.checked_sub(footer_len))
            .filter(|&p| p >= MAGIC.len() as u64)
            .ok_or_else(|| StorageError::Corrupt {
                context: format!("{display}: footer length {footer_len} out of range"),
            })?;
        file.seek(SeekFrom::Start(footer_start))
            .map_err(|e| io_err("seek footer", e))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)
            .map_err(|e| io_err("read footer", e))?;
        let actual = crc32(&footer);
        if actual != footer_crc {
            return Err(StorageError::ChecksumMismatch {
                context: format!("{display}: footer"),
                expected: footer_crc,
                actual,
            });
        }
        let mut fr = ByteReader::new(&footer, "footer");
        let version = fr.u16()?;
        if version != FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion { found: version });
        }
        let arity = fr.u32()? as usize;
        let mut names = Vec::with_capacity(arity);
        for _ in 0..arity {
            names.push(fr.str()?);
        }
        let schema = Schema::new(names).map_err(|e| StorageError::Corrupt {
            context: format!("{display}: invalid schema in footer: {e}"),
        })?;
        let rows = fr.u64()?;
        let chunk_count = fr.u32()? as usize;
        let mut chunks = Vec::with_capacity(chunk_count);
        let mut expected_rows = 0u64;
        for _ in 0..chunk_count {
            let offset = fr.u64()?;
            let len = fr.u64()?;
            let chunk_rows = fr.u32()?;
            let crc = fr.u32()?;
            let mut zones = Vec::with_capacity(arity);
            for _ in 0..arity {
                zones.push(codec::read_zone(&mut fr)?);
            }
            if offset.checked_add(len).is_none_or(|end| end > footer_start) {
                return Err(StorageError::Corrupt {
                    context: format!("{display}: chunk extent out of range"),
                });
            }
            expected_rows += chunk_rows as u64;
            chunks.push(ChunkMeta {
                offset,
                len,
                rows: chunk_rows,
                crc,
                zones,
            });
        }
        if !fr.is_empty() || expected_rows != rows {
            return Err(StorageError::Corrupt {
                context: format!("{display}: footer row accounting mismatch"),
            });
        }
        Ok(TableReader {
            path,
            schema,
            rows,
            chunks,
        })
    }

    /// The file this reader was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The table schema, from the footer.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total rows, from the footer.
    pub fn row_count(&self) -> usize {
        self.rows as usize
    }

    /// Number of on-disk chunks.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Read, CRC-check and decode chunk `index` through the supplied file
    /// handle (scans keep their own handle; see [`TableScanCursor`]).
    fn read_chunk_with(&self, file: &mut File, index: usize) -> Result<ColumnarBatch> {
        let meta = &self.chunks[index];
        file.seek(SeekFrom::Start(meta.offset))
            .map_err(|e| io_err("seek chunk", e))?;
        let mut payload = vec![0u8; meta.len as usize];
        file.read_exact(&mut payload)
            .map_err(|e| io_err("read chunk", e))?;
        let actual = crc32(&payload);
        if actual != meta.crc {
            return Err(StorageError::ChecksumMismatch {
                context: format!("{}: chunk {index}", self.path.display()),
                expected: meta.crc,
                actual,
            });
        }
        codec::decode_chunk(&payload, &self.schema, meta.rows as usize)
    }

    /// Read and decode chunk `index` with a one-shot file handle.
    pub fn read_chunk(&self, index: usize) -> Result<ColumnarBatch> {
        let mut file = File::open(&self.path)
            .map_err(|e| io_err(&format!("open {}", self.path.display()), e))?;
        self.read_chunk_with(&mut file, index)
    }

    /// Open a chunk-at-a-time cursor, optionally skipping chunks whose zone
    /// maps exclude `predicate`.
    pub fn scan(&self, predicate: Option<&Predicate>) -> Result<TableScanCursor> {
        let file = File::open(&self.path)
            .map_err(|e| io_err(&format!("open {}", self.path.display()), e))?;
        Ok(TableScanCursor {
            reader: TableReader {
                path: self.path.clone(),
                schema: self.schema.clone(),
                rows: self.rows,
                chunks: self.chunks.clone(),
            },
            file,
            predicate: predicate.cloned(),
            next: 0,
            skipped: 0,
        })
    }

    /// Load the whole table into memory.
    pub fn to_relation(&self) -> Result<Relation> {
        let mut cursor = self.scan(None)?;
        let mut out = Relation::empty(self.schema.clone());
        while let Some(chunk) = cursor.next_chunk()? {
            for row in 0..chunk.num_rows() {
                out.insert(chunk.row(row))
                    .map_err(|e| StorageError::Corrupt {
                        context: format!("{}: decoded row rejected: {e}", self.path.display()),
                    })?;
            }
        }
        Ok(out)
    }
}

/// A chunk-at-a-time cursor over a [`TableReader`], with zone-map skipping.
#[derive(Debug)]
pub struct TableScanCursor {
    reader: TableReader,
    file: File,
    predicate: Option<Predicate>,
    next: usize,
    skipped: usize,
}

impl TableScanCursor {
    /// The next chunk that may contain matching rows, or `None` at the end.
    pub fn next_chunk(&mut self) -> Result<Option<ColumnarBatch>> {
        while self.next < self.reader.chunks.len() {
            let index = self.next;
            self.next += 1;
            if let Some(predicate) = &self.predicate {
                let meta = &self.reader.chunks[index];
                if !chunk_may_match(predicate, &self.reader.schema, &meta.zones) {
                    self.skipped += 1;
                    continue;
                }
            }
            return Ok(Some(self.reader.read_chunk_with(&mut self.file, index)?));
        }
        Ok(None)
    }

    /// Chunks skipped so far thanks to zone maps.
    pub fn chunks_skipped(&self) -> usize {
        self.skipped
    }
}

impl ExternalTable for TableReader {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn row_count(&self) -> usize {
        self.rows as usize
    }

    fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    fn open_scan(&self, predicate: Option<&Predicate>) -> div_expr::Result<Box<dyn ExternalScan>> {
        Ok(Box::new(self.scan(predicate)?))
    }

    fn materialize(&self) -> div_expr::Result<Relation> {
        Ok(self.to_relation()?)
    }
}

impl ExternalScan for TableScanCursor {
    fn next_chunk(&mut self) -> div_expr::Result<Option<ColumnarBatch>> {
        TableScanCursor::next_chunk(self).map_err(ExprError::from)
    }

    fn chunks_skipped(&self) -> usize {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("div_storage_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn relation_round_trips_through_the_file() {
        let rel = relation! {
            ["s#", "p#", "color"] => [1, 1, "red"], [1, 2, "blue"], [2, 1, "red"], [3, 2, "blue"]
        };
        let path = temp_path("round_trip.divt");
        TableWriter::write_relation(&path, &rel, 2).unwrap();
        let reader = TableReader::open(&path).unwrap();
        assert_eq!(reader.row_count(), 4);
        assert_eq!(reader.chunk_count(), 2);
        assert_eq!(reader.schema().names(), vec!["s#", "p#", "color"]);
        assert_eq!(reader.to_relation().unwrap(), rel);
    }

    #[test]
    fn empty_table_round_trips() {
        let rel = Relation::empty(Schema::of(["a", "b"]));
        let path = temp_path("empty.divt");
        TableWriter::write_relation(&path, &rel, 16).unwrap();
        let reader = TableReader::open(&path).unwrap();
        assert_eq!(reader.row_count(), 0);
        assert_eq!(reader.chunk_count(), 0);
        assert_eq!(reader.to_relation().unwrap(), rel);
    }

    #[test]
    fn zone_maps_skip_non_matching_chunks() {
        // Sorted data → disjoint per-chunk ranges → a selective filter
        // skips all but one chunk.
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i % 7]).collect();
        let rel = Relation::from_rows(["a", "b"], rows).unwrap();
        let path = temp_path("zones.divt");
        TableWriter::write_relation(&path, &rel, 10).unwrap();
        let reader = TableReader::open(&path).unwrap();
        let pred = Predicate::eq_value("a", 55);
        let mut cursor = reader.scan(Some(&pred)).unwrap();
        let mut rows_seen = 0;
        while let Some(chunk) = cursor.next_chunk().unwrap() {
            rows_seen += chunk.num_rows();
        }
        assert_eq!(rows_seen, 10, "only the chunk holding a=55 is read");
        assert_eq!(cursor.chunks_skipped(), 9);
    }

    #[test]
    fn unfinished_file_is_rejected() {
        let path = temp_path("unfinished.divt");
        let mut writer = TableWriter::create(&path, Schema::of(["x"])).unwrap();
        let batch = ColumnarBatch::from_relation(&relation! { ["x"] => [1], [2] });
        writer.write_batch(&batch).unwrap();
        drop(writer); // no finish(): no footer, no trailer
        assert!(TableReader::open(&path).is_err());
    }

    #[test]
    fn schema_mismatch_is_a_typed_error() {
        let path = temp_path("schema_mismatch.divt");
        let mut writer = TableWriter::create(&path, Schema::of(["x"])).unwrap();
        let wrong = ColumnarBatch::from_relation(&relation! { ["y"] => [1] });
        assert!(matches!(
            writer.write_batch(&wrong),
            Err(StorageError::Schema { .. })
        ));
    }

    #[test]
    fn every_flipped_byte_is_detected() {
        let rel = relation! { ["a", "s"] => [1, "x"], [2, "y"], [3, "z"] };
        let path = temp_path("corrupt.divt");
        TableWriter::write_relation(&path, &rel, 2).unwrap();
        let clean = std::fs::read(&path).unwrap();
        for byte in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[byte] ^= 0xFF;
            let bad_path = temp_path("corrupt_flip.divt");
            std::fs::write(&bad_path, &corrupt).unwrap();
            // Either open() rejects the file (footer/trailer damage) or the
            // chunk read reports a checksum mismatch — never a panic, never
            // silently wrong data.
            match TableReader::open(&bad_path) {
                Err(_) => {}
                Ok(reader) => {
                    let err = reader
                        .to_relation()
                        .expect_err(&format!("flip at byte {byte} went undetected"));
                    match err {
                        StorageError::ChecksumMismatch { .. } | StorageError::Corrupt { .. } => {}
                        other => panic!("unexpected error kind for data damage: {other}"),
                    }
                }
            }
        }
    }
}
