//! # div-storage
//!
//! Out-of-core foundations for the division engine: a persistent columnar
//! table format and the spill-file machinery the hybrid hash operators
//! use when a query outgrows its resident-row budget.
//!
//! Graefe's hash-division family (the algorithms this workspace
//! reproduces) is explicitly a *spilling partitioned-hash* design: when the
//! build-side state no longer fits, partition the inputs on the hash of
//! the key, push the partitions to disk, and recurse per partition. This
//! crate supplies the disk half of that story:
//!
//! * [`TableWriter`] / [`TableReader`] — a chunked columnar file format
//!   (dictionary + RLE string encoding, RLE-or-plain integers, per-column
//!   min/max zone maps, CRC-32 on every chunk and on the footer) that
//!   round-trips every [`div_algebra::Relation`] losslessly;
//! * [`TableScanCursor`] — chunk-at-a-time reads with zone-map chunk
//!   skipping under a pushed-down [`div_algebra::Predicate`], implementing
//!   [`div_expr::ExternalTable`] / [`div_expr::ExternalScan`] so a file
//!   can be attached to the catalog and scanned without materializing;
//! * [`SpillManager`] — temp-directory lifecycle for spill partitions,
//!   which reuse the same file format (same checksums, same cursors).
//!
//! Every failure — IO, truncation, a single flipped byte — surfaces as a
//! typed [`StorageError`], which converts into
//! [`div_expr::ExprError::Storage`] at the engine boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod codec;
pub mod spill;
pub mod table;

pub use checksum::crc32;
pub use codec::{chunk_may_match, ColumnZone};
pub use spill::{SpillHandle, SpillManager, SpillWriter};
pub use table::{TableReader, TableScanCursor, TableWriter, DEFAULT_CHUNK_ROWS};

use std::fmt;

/// Error type of the `div-storage` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// An operating-system IO failure.
    Io {
        /// What was being attempted.
        context: String,
        /// The OS error message.
        message: String,
    },
    /// The file does not start (or end) with the format magic — it is not
    /// a div-storage table at all, or its first/last bytes were damaged.
    BadMagic {
        /// The offending file.
        context: String,
    },
    /// The footer declares a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the footer.
        found: u16,
    },
    /// Stored and recomputed CRC-32 disagree: the bytes were altered.
    ChecksumMismatch {
        /// Which region failed (footer, chunk index…).
        context: String,
        /// The CRC recorded at write time.
        expected: u32,
        /// The CRC of the bytes actually read.
        actual: u32,
    },
    /// Structurally invalid bytes (truncation, out-of-range lengths,
    /// invalid tags) — damage the checksums could not attribute.
    Corrupt {
        /// What failed to decode.
        context: String,
    },
    /// A schema-level misuse (e.g. writing a batch with the wrong schema).
    Schema {
        /// Human-readable description.
        reason: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, message } => write!(f, "io error ({context}): {message}"),
            StorageError::BadMagic { context } => {
                write!(f, "not a div-storage table file: {context}")
            }
            StorageError::UnsupportedVersion { found } => {
                write!(f, "unsupported table format version {found}")
            }
            StorageError::ChecksumMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {context}: stored {expected:#010x}, computed {actual:#010x}"
            ),
            StorageError::Corrupt { context } => write!(f, "corrupt table file: {context}"),
            StorageError::Schema { reason } => write!(f, "schema error: {reason}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<StorageError> for div_expr::ExprError {
    fn from(err: StorageError) -> Self {
        div_expr::ExprError::Storage {
            detail: err.to_string(),
        }
    }
}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StorageError>;
