//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every chunk payload and the file footer carry a CRC so that any flipped
//! byte is detected as a typed [`StorageError`](crate::StorageError) instead
//! of being decoded into silently wrong data (or a panic). The vendored
//! dependency set has no checksum crate, so the classic 256-entry
//! table-driven implementation lives here; it is more than fast enough for
//! chunk-sized payloads.

/// The CRC-32 lookup table for the reflected IEEE polynomial `0xEDB88320`.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` (IEEE, reflected, init and final XOR `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn any_single_bit_flip_changes_the_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
