//! Byte-level encoding of columns, chunks and zone maps.
//!
//! The on-disk layout mirrors the in-memory [`Column`] representation: the
//! hot paths are plain `i64` vectors and dictionary-coded strings, both of
//! which additionally get a run-length encoding the writer picks whenever
//! it is smaller (sorted or low-cardinality columns compress well under
//! RLE; random columns fall back to the plain form). The `Mixed` fallback
//! serializes values verbatim — including nested sets — so the format
//! round-trips every relation the algebra can produce, not just the
//! well-typed ones.
//!
//! All integers are little-endian. Decoding is bounds-checked everywhere
//! and returns [`StorageError::Corrupt`] instead of panicking: corrupted
//! input that slips past the CRC (it cannot, but defense in depth is free
//! here) still surfaces as a typed error.

use crate::{Result, StorageError};
use div_algebra::{CompareOp, Predicate, Schema, Value};
use div_columnar::{Column, ColumnarBatch, StrColumn};

// ---------------------------------------------------------------------------
// Byte-level primitives
// ---------------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over a decoded byte slice.
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    context: &'a str,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8], context: &'a str) -> Self {
        ByteReader {
            buf,
            pos: 0,
            context,
        }
    }

    fn corrupt(&self, what: &str) -> StorageError {
        StorageError::Corrupt {
            context: format!("{}: truncated {what} at offset {}", self.context, self.pos),
        }
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| self.corrupt("bytes"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.corrupt("utf-8 string"))
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Column encoding
// ---------------------------------------------------------------------------

const COL_INT: u8 = 0;
const COL_BOOL: u8 = 1;
const COL_STR: u8 = 2;
const COL_MIXED: u8 = 3;

const ENC_PLAIN: u8 = 0;
const ENC_RLE: u8 = 1;

const VAL_NULL: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_STR: u8 = 3;
const VAL_SET: u8 = 4;

fn put_validity(buf: &mut Vec<u8>, validity: &Option<Vec<bool>>) {
    match validity {
        None => put_u8(buf, 0),
        Some(mask) => {
            put_u8(buf, 1);
            buf.extend(mask.iter().map(|&b| b as u8));
        }
    }
}

fn read_validity(r: &mut ByteReader<'_>, rows: usize) -> Result<Option<Vec<bool>>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.take(rows)?.iter().map(|&b| b != 0).collect())),
        _ => Err(StorageError::Corrupt {
            context: "invalid validity flag".into(),
        }),
    }
}

/// Count the runs a run-length encoding would need.
fn run_count<T: PartialEq>(values: &[T]) -> usize {
    let mut runs = 0;
    let mut prev: Option<&T> = None;
    for v in values {
        if prev != Some(v) {
            runs += 1;
            prev = Some(v);
        }
    }
    runs
}

/// RLE-or-plain encode a `i64` slice: `u8` encoding tag, then either the
/// raw values or `(u32 run_len, i64 value)` pairs, whichever is smaller.
fn put_i64s(buf: &mut Vec<u8>, values: &[i64]) {
    let runs = run_count(values);
    if runs * 12 < values.len() * 8 {
        put_u8(buf, ENC_RLE);
        put_u32(buf, runs as u32);
        let mut i = 0;
        while i < values.len() {
            let mut j = i + 1;
            while j < values.len() && values[j] == values[i] {
                j += 1;
            }
            put_u32(buf, (j - i) as u32);
            put_i64(buf, values[i]);
            i = j;
        }
    } else {
        put_u8(buf, ENC_PLAIN);
        for &v in values {
            put_i64(buf, v);
        }
    }
}

fn read_i64s(r: &mut ByteReader<'_>, rows: usize) -> Result<Vec<i64>> {
    match r.u8()? {
        ENC_PLAIN => (0..rows).map(|_| r.i64()).collect(),
        ENC_RLE => {
            let runs = r.u32()? as usize;
            let mut out = Vec::with_capacity(rows);
            for _ in 0..runs {
                let len = r.u32()? as usize;
                let value = r.i64()?;
                if out.len() + len > rows {
                    return Err(StorageError::Corrupt {
                        context: "rle overrun in int column".into(),
                    });
                }
                out.extend(std::iter::repeat_n(value, len));
            }
            if out.len() != rows {
                return Err(StorageError::Corrupt {
                    context: "rle underrun in int column".into(),
                });
            }
            Ok(out)
        }
        _ => Err(StorageError::Corrupt {
            context: "invalid int encoding tag".into(),
        }),
    }
}

/// RLE-or-plain encode a `u32` slice (dictionary codes).
fn put_u32s(buf: &mut Vec<u8>, values: &[u32]) {
    let runs = run_count(values);
    if runs * 8 < values.len() * 4 {
        put_u8(buf, ENC_RLE);
        put_u32(buf, runs as u32);
        let mut i = 0;
        while i < values.len() {
            let mut j = i + 1;
            while j < values.len() && values[j] == values[i] {
                j += 1;
            }
            put_u32(buf, (j - i) as u32);
            put_u32(buf, values[i]);
            i = j;
        }
    } else {
        put_u8(buf, ENC_PLAIN);
        for &v in values {
            put_u32(buf, v);
        }
    }
}

fn read_u32s(r: &mut ByteReader<'_>, rows: usize) -> Result<Vec<u32>> {
    match r.u8()? {
        ENC_PLAIN => (0..rows).map(|_| r.u32()).collect(),
        ENC_RLE => {
            let runs = r.u32()? as usize;
            let mut out = Vec::with_capacity(rows);
            for _ in 0..runs {
                let len = r.u32()? as usize;
                let value = r.u32()?;
                if out.len() + len > rows {
                    return Err(StorageError::Corrupt {
                        context: "rle overrun in code column".into(),
                    });
                }
                out.extend(std::iter::repeat_n(value, len));
            }
            if out.len() != rows {
                return Err(StorageError::Corrupt {
                    context: "rle underrun in code column".into(),
                });
            }
            Ok(out)
        }
        _ => Err(StorageError::Corrupt {
            context: "invalid code encoding tag".into(),
        }),
    }
}

fn put_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => put_u8(buf, VAL_NULL),
        Value::Bool(b) => {
            put_u8(buf, VAL_BOOL);
            put_u8(buf, *b as u8);
        }
        Value::Int(i) => {
            put_u8(buf, VAL_INT);
            put_i64(buf, *i);
        }
        Value::Str(s) => {
            put_u8(buf, VAL_STR);
            put_str(buf, s);
        }
        Value::Set(items) => {
            put_u8(buf, VAL_SET);
            put_u32(buf, items.len() as u32);
            for item in items {
                put_value(buf, item);
            }
        }
    }
}

fn read_value(r: &mut ByteReader<'_>) -> Result<Value> {
    match r.u8()? {
        VAL_NULL => Ok(Value::Null),
        VAL_BOOL => Ok(Value::Bool(r.u8()? != 0)),
        VAL_INT => Ok(Value::Int(r.i64()?)),
        VAL_STR => Ok(Value::Str(r.str()?.into())),
        VAL_SET => {
            let len = r.u32()? as usize;
            let mut items = std::collections::BTreeSet::new();
            for _ in 0..len {
                items.insert(read_value(r)?);
            }
            Ok(Value::Set(items))
        }
        _ => Err(StorageError::Corrupt {
            context: "invalid value tag".into(),
        }),
    }
}

/// Serialize one column (of a chunk with a known row count) into `buf`.
pub(crate) fn put_column(buf: &mut Vec<u8>, column: &Column) {
    match column {
        Column::Int { values, validity } => {
            put_u8(buf, COL_INT);
            put_validity(buf, validity);
            put_i64s(buf, values);
        }
        Column::Bool { values, validity } => {
            put_u8(buf, COL_BOOL);
            put_validity(buf, validity);
            buf.extend(values.iter().map(|&b| b as u8));
        }
        Column::Str(col) => {
            put_u8(buf, COL_STR);
            put_validity(buf, &col.validity);
            put_u32(buf, col.dict.len() as u32);
            for entry in &col.dict {
                put_str(buf, entry);
            }
            put_u32s(buf, &col.codes);
        }
        Column::Mixed(values) => {
            put_u8(buf, COL_MIXED);
            for value in values {
                put_value(buf, value);
            }
        }
    }
}

/// Decode one column of `rows` rows.
pub(crate) fn read_column(r: &mut ByteReader<'_>, rows: usize) -> Result<Column> {
    match r.u8()? {
        COL_INT => {
            let validity = read_validity(r, rows)?;
            let values = read_i64s(r, rows)?;
            Ok(Column::Int { values, validity })
        }
        COL_BOOL => {
            let validity = read_validity(r, rows)?;
            let values = r.take(rows)?.iter().map(|&b| b != 0).collect();
            Ok(Column::Bool { values, validity })
        }
        COL_STR => {
            let validity = read_validity(r, rows)?;
            let dict_len = r.u32()? as usize;
            let mut dict = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(r.str()?.into());
            }
            let codes = read_u32s(r, rows)?;
            if codes.iter().any(|&c| c as usize >= dict_len.max(1)) {
                return Err(StorageError::Corrupt {
                    context: "dictionary code out of range".into(),
                });
            }
            Ok(Column::Str(StrColumn {
                dict,
                codes,
                validity,
            }))
        }
        COL_MIXED => {
            let mut values = Vec::with_capacity(rows);
            for _ in 0..rows {
                values.push(read_value(r)?);
            }
            Ok(Column::Mixed(values))
        }
        _ => Err(StorageError::Corrupt {
            context: "invalid column tag".into(),
        }),
    }
}

/// Encode a whole chunk (all columns, back to back) into a fresh buffer.
pub(crate) fn encode_chunk(batch: &ColumnarBatch) -> Vec<u8> {
    let mut buf = Vec::new();
    for column in batch.columns() {
        put_column(&mut buf, column);
    }
    buf
}

/// Decode a chunk payload into a batch of `rows` rows over `schema`.
pub(crate) fn decode_chunk(bytes: &[u8], schema: &Schema, rows: usize) -> Result<ColumnarBatch> {
    let mut r = ByteReader::new(bytes, "chunk");
    let mut columns = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        columns.push(read_column(&mut r, rows)?);
    }
    if !r.is_empty() {
        return Err(StorageError::Corrupt {
            context: "trailing bytes after chunk columns".into(),
        });
    }
    Ok(ColumnarBatch::from_parts(schema.clone(), columns, rows))
}

// ---------------------------------------------------------------------------
// Zone maps
// ---------------------------------------------------------------------------

/// Per-column min/max statistics for one chunk, used to skip whole chunks
/// under a pushed-down filter.
///
/// `null_count` matters for correctness, not just selectivity: the
/// algebra's comparisons *error* on NULL operands (no three-valued logic),
/// so a chunk containing NULLs in the filtered column is never skipped —
/// skipping it would suppress the type error the in-memory path raises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnZone {
    /// No statistics (mixed/bool/empty/all-null columns): never skip.
    None,
    /// Integer min/max over the valid rows.
    Int {
        /// Smallest valid value in the chunk.
        min: i64,
        /// Largest valid value in the chunk.
        max: i64,
        /// Number of NULL rows in the chunk.
        null_count: u64,
    },
    /// Lexicographic string min/max over the valid rows.
    Str {
        /// Smallest valid value in the chunk.
        min: Box<str>,
        /// Largest valid value in the chunk.
        max: Box<str>,
        /// Number of NULL rows in the chunk.
        null_count: u64,
    },
}

const ZONE_NONE: u8 = 0;
const ZONE_INT: u8 = 1;
const ZONE_STR: u8 = 2;

/// Compute the zone map of one column.
pub(crate) fn column_zone(column: &Column) -> ColumnZone {
    match column {
        Column::Int { values, validity } => {
            let mut min = i64::MAX;
            let mut max = i64::MIN;
            let mut null_count = 0u64;
            let mut seen = false;
            for (i, &v) in values.iter().enumerate() {
                if validity.as_ref().is_some_and(|mask| !mask[i]) {
                    null_count += 1;
                } else {
                    min = min.min(v);
                    max = max.max(v);
                    seen = true;
                }
            }
            if seen {
                ColumnZone::Int {
                    min,
                    max,
                    null_count,
                }
            } else {
                ColumnZone::None
            }
        }
        Column::Str(col) => {
            let mut min: Option<&str> = None;
            let mut max: Option<&str> = None;
            let mut null_count = 0u64;
            for i in 0..col.codes.len() {
                match col.get(i) {
                    None => null_count += 1,
                    Some(s) => {
                        min = Some(min.map_or(s, |m| m.min(s)));
                        max = Some(max.map_or(s, |m| m.max(s)));
                    }
                }
            }
            match (min, max) {
                (Some(min), Some(max)) => ColumnZone::Str {
                    min: min.into(),
                    max: max.into(),
                    null_count,
                },
                _ => ColumnZone::None,
            }
        }
        Column::Bool { .. } | Column::Mixed(_) => ColumnZone::None,
    }
}

pub(crate) fn put_zone(buf: &mut Vec<u8>, zone: &ColumnZone) {
    match zone {
        ColumnZone::None => put_u8(buf, ZONE_NONE),
        ColumnZone::Int {
            min,
            max,
            null_count,
        } => {
            put_u8(buf, ZONE_INT);
            put_i64(buf, *min);
            put_i64(buf, *max);
            put_u64(buf, *null_count);
        }
        ColumnZone::Str {
            min,
            max,
            null_count,
        } => {
            put_u8(buf, ZONE_STR);
            put_str(buf, min);
            put_str(buf, max);
            put_u64(buf, *null_count);
        }
    }
}

pub(crate) fn read_zone(r: &mut ByteReader<'_>) -> Result<ColumnZone> {
    match r.u8()? {
        ZONE_NONE => Ok(ColumnZone::None),
        ZONE_INT => Ok(ColumnZone::Int {
            min: r.i64()?,
            max: r.i64()?,
            null_count: r.u64()?,
        }),
        ZONE_STR => Ok(ColumnZone::Str {
            min: r.str()?.into(),
            max: r.str()?.into(),
            null_count: r.u64()?,
        }),
        _ => Err(StorageError::Corrupt {
            context: "invalid zone tag".into(),
        }),
    }
}

/// Conservative chunk-level predicate test: `false` means *no row of the
/// chunk can satisfy the predicate* (the chunk may be skipped); `true`
/// means the chunk must be read. Unknown shapes, kind mismatches and
/// chunks with NULLs in the compared column all answer `true`.
pub fn chunk_may_match(predicate: &Predicate, schema: &Schema, zones: &[ColumnZone]) -> bool {
    match predicate {
        Predicate::True => true,
        Predicate::False => false,
        Predicate::And(a, b) => {
            chunk_may_match(a, schema, zones) && chunk_may_match(b, schema, zones)
        }
        Predicate::Or(a, b) => {
            chunk_may_match(a, schema, zones) || chunk_may_match(b, schema, zones)
        }
        Predicate::CompareValue {
            attribute,
            op,
            value,
        } => {
            let Some(idx) = schema.index_of(attribute) else {
                return true;
            };
            match (zones.get(idx), value) {
                (
                    Some(ColumnZone::Int {
                        min,
                        max,
                        null_count: 0,
                    }),
                    Value::Int(v),
                ) => range_may_match(*op, min, max, v),
                (
                    Some(ColumnZone::Str {
                        min,
                        max,
                        null_count: 0,
                    }),
                    Value::Str(v),
                ) => range_may_match(*op, &min.as_ref(), &max.as_ref(), &v.as_ref()),
                _ => true,
            }
        }
        // Negations, attribute-attribute and parameter comparisons: no
        // pruning (parameters are bound before compile, but stay safe).
        _ => true,
    }
}

/// Can any value in `[min, max]` satisfy `value-op` against `v`?
fn range_may_match<T: PartialOrd + PartialEq>(op: CompareOp, min: &T, max: &T, v: &T) -> bool {
    match op {
        CompareOp::Eq => min <= v && v <= max,
        CompareOp::NotEq => !(min == max && min == v),
        CompareOp::Lt => min < v,
        CompareOp::LtEq => min <= v,
        CompareOp::Gt => max > v,
        CompareOp::GtEq => max >= v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_algebra::relation;

    fn round_trip(batch: &ColumnarBatch) {
        let bytes = encode_chunk(batch);
        let back = decode_chunk(&bytes, batch.schema(), batch.num_rows()).unwrap();
        assert_eq!(&back, batch);
    }

    #[test]
    fn chunk_round_trips_every_column_kind() {
        round_trip(&ColumnarBatch::from_relation(&relation! {
            ["i", "s", "b"] => [1, "red", true], [2, "blue", false], [2, "red", true]
        }));
        // Mixed column (int + string in one attribute) and sets.
        let rel = div_algebra::Relation::from_rows(
            ["m"],
            vec![
                vec![Value::Int(1)],
                vec![Value::str("x")],
                vec![Value::set([1, 2])],
                vec![Value::Null],
            ],
        )
        .unwrap();
        round_trip(&ColumnarBatch::from_relation(&rel));
        // Empty batch.
        round_trip(&ColumnarBatch::empty(Schema::of(["a", "b"])));
    }

    #[test]
    fn rle_kicks_in_on_constant_columns() {
        let rows: Vec<Vec<i64>> = (0..512).map(|i| vec![7, i]).collect();
        let rel = div_algebra::Relation::from_rows(["c", "u"], rows).unwrap();
        let batch = ColumnarBatch::from_relation(&rel);
        let bytes = encode_chunk(&batch);
        // The constant column must collapse to one run: far below the
        // 512 * 8 bytes the plain form would need for each column.
        assert!(bytes.len() < 512 * 8 + 512 * 2);
        round_trip(&batch);
    }

    #[test]
    fn zones_capture_min_max_and_nulls() {
        let batch = ColumnarBatch::from_relation(&relation! {
            ["a", "s"] => [3, "m"], [9, "z"], [5, "a"]
        });
        assert_eq!(
            column_zone(batch.column(0)),
            ColumnZone::Int {
                min: 3,
                max: 9,
                null_count: 0
            }
        );
        assert_eq!(
            column_zone(batch.column(1)),
            ColumnZone::Str {
                min: "a".into(),
                max: "z".into(),
                null_count: 0
            }
        );
    }

    #[test]
    fn pruning_is_conservative_and_correct() {
        let schema = Schema::of(["a", "s"]);
        let zones = vec![
            ColumnZone::Int {
                min: 10,
                max: 20,
                null_count: 0,
            },
            ColumnZone::Str {
                min: "b".into(),
                max: "f".into(),
                null_count: 0,
            },
        ];
        let p = |pred: Predicate| chunk_may_match(&pred, &schema, &zones);
        assert!(!p(Predicate::eq_value("a", 5)));
        assert!(p(Predicate::eq_value("a", 15)));
        assert!(!p(Predicate::cmp_value("a", CompareOp::Lt, 10)));
        assert!(p(Predicate::cmp_value("a", CompareOp::LtEq, 10)));
        assert!(!p(Predicate::cmp_value("a", CompareOp::Gt, 20)));
        assert!(!p(Predicate::eq_value("s", "z")));
        assert!(p(Predicate::eq_value("s", "c")));
        // And / Or combine conservatively.
        assert!(!p(
            Predicate::eq_value("a", 15).and(Predicate::eq_value("s", "z"))
        ));
        assert!(p(
            Predicate::eq_value("a", 5).or(Predicate::eq_value("s", "c"))
        ));
        // Kind mismatch and unknown attributes never prune.
        assert!(p(Predicate::eq_value("a", "oops")));
        assert!(p(Predicate::eq_value("missing", 1)));
        // NULLs in the column disable pruning (comparisons error on NULL).
        let nullable = vec![
            ColumnZone::Int {
                min: 10,
                max: 20,
                null_count: 1,
            },
            ColumnZone::None,
        ];
        assert!(chunk_may_match(
            &Predicate::eq_value("a", 5),
            &schema,
            &nullable
        ));
    }
}
