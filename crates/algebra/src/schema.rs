//! Relation schemas: ordered lists of named attributes.

use crate::{AlgebraError, Result};
use std::fmt;

/// A single named attribute of a relation schema.
///
/// The paper names attributes `a`, `b1`, `s#`, `color`, …; an attribute here is
/// simply its name. Attribute identity is name equality, which is exactly the
/// convention the paper uses to define the attribute sets `A`, `B` and `C` of
/// the division operators (e.g. the divisor attributes `B` are those attributes
/// of the divisor that also occur in the dividend).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attribute {
    name: Box<str>,
}

impl Attribute {
    /// Create a new attribute with the given name.
    pub fn new(name: impl Into<Box<str>>) -> Self {
        Attribute { name: name.into() }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl From<&str> for Attribute {
    fn from(name: &str) -> Self {
        Attribute::new(name)
    }
}

impl From<String> for Attribute {
    fn from(name: String) -> Self {
        Attribute::new(name)
    }
}

/// An ordered relation schema.
///
/// Order matters for tuple layout (the i-th value of a tuple belongs to the
/// i-th attribute) but *not* for schema compatibility: two schemas are
/// union-compatible when they contain the same attribute names, and operators
/// reorder tuples as needed (see [`Schema::projection_indices`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Create a schema from attribute names.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DuplicateAttribute`] if a name repeats.
    pub fn new<I, A>(names: I) -> Result<Self>
    where
        I: IntoIterator<Item = A>,
        A: Into<Attribute>,
    {
        let attributes: Vec<Attribute> = names.into_iter().map(Into::into).collect();
        for (i, attr) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|a| a.name() == attr.name()) {
                return Err(AlgebraError::DuplicateAttribute {
                    attribute: attr.name().to_string(),
                    operation: "schema construction",
                });
            }
        }
        Ok(Schema { attributes })
    }

    /// Create a schema from attribute names, panicking on duplicates.
    ///
    /// Intended for tests and examples where the schema is a literal.
    pub fn of<I, A>(names: I) -> Self
    where
        I: IntoIterator<Item = A>,
        A: Into<Attribute>,
    {
        Self::new(names).expect("literal schema must not contain duplicate attributes")
    }

    /// An empty schema (zero attributes). Used for the one-tuple relation `(t)`
    /// degenerate cases in proofs; normal relations always have attributes.
    pub fn empty() -> Self {
        Schema {
            attributes: Vec::new(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// `true` if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Iterate over the attributes in declaration order.
    pub fn attributes(&self) -> impl Iterator<Item = &Attribute> + '_ {
        self.attributes.iter()
    }

    /// Attribute names in declaration order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name()).collect()
    }

    /// Position of `name` within the schema.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// Position of `name`, or an [`AlgebraError::UnknownAttribute`] error.
    pub fn require(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| AlgebraError::UnknownAttribute {
                attribute: name.to_string(),
                schema: self.to_string(),
            })
    }

    /// `true` if the schema contains an attribute with this name.
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// `true` when both schemas contain exactly the same attribute names
    /// (in any order) — the paper's union compatibility.
    pub fn is_compatible_with(&self, other: &Schema) -> bool {
        self.arity() == other.arity() && self.attributes.iter().all(|a| other.contains(a.name()))
    }

    /// `true` when no attribute name is shared with `other`.
    pub fn is_disjoint_from(&self, other: &Schema) -> bool {
        self.attributes.iter().all(|a| !other.contains(a.name()))
    }

    /// Attribute names present in both schemas, in `self`'s order.
    pub fn common_attributes(&self, other: &Schema) -> Vec<String> {
        self.attributes
            .iter()
            .filter(|a| other.contains(a.name()))
            .map(|a| a.name().to_string())
            .collect()
    }

    /// Attribute names of `self` that are *not* in `other`, in `self`'s order.
    ///
    /// For a dividend schema `R1(A ∪ B)` and divisor schema `R2(B)` this is the
    /// quotient attribute set `A`.
    pub fn difference_attributes(&self, other: &Schema) -> Vec<String> {
        self.attributes
            .iter()
            .filter(|a| !other.contains(a.name()))
            .map(|a| a.name().to_string())
            .collect()
    }

    /// The indices (into `self`) of the given attribute names, in the order the
    /// names are given. This is the workhorse of projection and reordering.
    pub fn projection_indices(&self, names: &[&str]) -> Result<Vec<usize>> {
        names.iter().map(|n| self.require(n)).collect()
    }

    /// Schema resulting from projecting onto `names` (kept in the given order).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        // Validate existence and preserve requested order.
        let mut attributes = Vec::with_capacity(names.len());
        for n in names {
            self.require(n)?;
            if attributes.iter().any(|a: &Attribute| a.name() == *n) {
                return Err(AlgebraError::DuplicateAttribute {
                    attribute: (*n).to_string(),
                    operation: "projection",
                });
            }
            attributes.push(Attribute::new(*n));
        }
        Ok(Schema { attributes })
    }

    /// Concatenate two schemas (Cartesian product schema).
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DuplicateAttribute`] if the operands share an
    /// attribute name; the caller must rename first, exactly as in the paper
    /// where product operands always have disjoint attribute sets.
    pub fn concat(&self, other: &Schema) -> Result<Schema> {
        let mut attributes = self.attributes.clone();
        for attr in &other.attributes {
            if self.contains(attr.name()) {
                return Err(AlgebraError::DuplicateAttribute {
                    attribute: attr.name().to_string(),
                    operation: "cartesian product",
                });
            }
            attributes.push(attr.clone());
        }
        Ok(Schema { attributes })
    }

    /// Schema with each attribute renamed through `f`.
    pub fn rename_with(&self, mut f: impl FnMut(&str) -> String) -> Result<Schema> {
        Schema::new(self.attributes.iter().map(|a| f(a.name())))
    }

    /// Merge with another schema keeping each attribute once (natural-join
    /// output schema): all of `self`'s attributes followed by `other`'s
    /// attributes that are not already present.
    pub fn natural_union(&self, other: &Schema) -> Schema {
        let mut attributes = self.attributes.clone();
        for attr in &other.attributes {
            if !self.contains(attr.name()) {
                attributes.push(attr.clone());
            }
        }
        Schema { attributes }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, attr) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{attr}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_rejects_duplicates() {
        let err = Schema::new(["a", "b", "a"]).unwrap_err();
        assert!(matches!(err, AlgebraError::DuplicateAttribute { .. }));
    }

    #[test]
    fn index_and_contains() {
        let s = Schema::of(["a", "b", "c"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert!(s.contains("c"));
        assert!(s.require("z").is_err());
    }

    #[test]
    fn compatibility_ignores_order() {
        let s1 = Schema::of(["a", "b"]);
        let s2 = Schema::of(["b", "a"]);
        let s3 = Schema::of(["a", "c"]);
        assert!(s1.is_compatible_with(&s2));
        assert!(!s1.is_compatible_with(&s3));
    }

    #[test]
    fn disjointness_and_common_attributes() {
        let r1 = Schema::of(["a", "b1", "b2"]);
        let r2 = Schema::of(["b1", "b2", "c"]);
        assert!(!r1.is_disjoint_from(&r2));
        assert_eq!(r1.common_attributes(&r2), vec!["b1", "b2"]);
        assert_eq!(r1.difference_attributes(&r2), vec!["a"]);
        assert_eq!(r2.difference_attributes(&r1), vec!["c"]);
        let r3 = Schema::of(["x", "y"]);
        assert!(r1.is_disjoint_from(&r3));
    }

    #[test]
    fn projection_preserves_requested_order() {
        let s = Schema::of(["a", "b", "c"]);
        let p = s.project(&["c", "a"]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert!(s.project(&["c", "c"]).is_err());
        assert!(s.project(&["q"]).is_err());
    }

    #[test]
    fn concat_requires_disjoint_names() {
        let s1 = Schema::of(["a"]);
        let s2 = Schema::of(["b", "c"]);
        assert_eq!(s1.concat(&s2).unwrap().names(), vec!["a", "b", "c"]);
        let s3 = Schema::of(["a", "d"]);
        assert!(matches!(
            s1.concat(&s3).unwrap_err(),
            AlgebraError::DuplicateAttribute { .. }
        ));
    }

    #[test]
    fn natural_union_keeps_shared_attributes_once() {
        let s1 = Schema::of(["a", "b"]);
        let s2 = Schema::of(["b", "c"]);
        assert_eq!(s1.natural_union(&s2).names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn rename_with_prefix() {
        let s = Schema::of(["a", "b"]);
        let renamed = s.rename_with(|n| format!("r1.{n}")).unwrap();
        assert_eq!(renamed.names(), vec!["r1.a", "r1.b"]);
    }

    #[test]
    fn display_is_tuple_style() {
        let s = Schema::of(["s#", "p#"]);
        assert_eq!(s.to_string(), "(s#, p#)");
        assert_eq!(Schema::empty().to_string(), "()");
    }
}
