//! Tuples: ordered sequences of values laid out according to a schema.

use crate::Value;
use std::fmt;

/// A tuple of a relation.
///
/// A tuple is an ordered vector of [`Value`]s; the i-th value belongs to the
/// i-th attribute of the owning relation's [`Schema`](crate::Schema). Tuples
/// are plain data — all schema-aware operations (projection, concatenation for
/// products, image sets for division) live on [`Relation`](crate::Relation).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Create a tuple from values.
    pub fn new<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// The empty tuple (arity 0).
    pub fn empty() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The value at position `idx`, if any.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// All values, in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Project the tuple onto the given positions, in the order given.
    ///
    /// Panics if an index is out of bounds; callers obtain indices from
    /// [`Schema::projection_indices`](crate::Schema::projection_indices),
    /// which validates names first.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices.iter().map(|&i| self.values[i].clone()).collect(),
        }
    }

    /// Concatenate two tuples (used by the Cartesian product).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.values.len() + other.values.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple { values }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        Tuple::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::new([1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(1), Some(&Value::Int(2)));
        assert_eq!(t.get(3), None);
        assert!(Tuple::empty().values().is_empty());
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let t = Tuple::new([10, 20, 30]);
        assert_eq!(t.project(&[2, 0]), Tuple::new([30, 10]));
        assert_eq!(t.project(&[1, 1]), Tuple::new([20, 20]));
        assert_eq!(t.project(&[]), Tuple::empty());
    }

    #[test]
    fn concat_appends_values() {
        let t1 = Tuple::new([1]);
        let t2 = Tuple::new(["x", "y"]);
        let joined = t1.concat(&t2);
        assert_eq!(joined.arity(), 3);
        assert_eq!(joined.get(2), Some(&Value::str("y")));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Tuple::new([1, 2]);
        let b = Tuple::new([1, 3]);
        let c = Tuple::new([2, 0]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display_is_paren_list() {
        assert_eq!(Tuple::new([2, 4]).to_string(), "(2, 4)");
    }

    #[test]
    fn from_iterator_collects_values() {
        let t: Tuple = vec![1, 2].into_iter().collect();
        assert_eq!(t, Tuple::new([1, 2]));
    }
}
