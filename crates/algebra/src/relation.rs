//! Relations: a schema plus a set of tuples (set semantics).

use crate::{AlgebraError, Result, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A relation with set semantics.
///
/// A relation owns a [`Schema`] and an ordered set of [`Tuple`]s. Ordered
/// storage (a `BTreeSet`) gives deterministic iteration, cheap equality and
/// automatic duplicate elimination — the semantics assumed by every definition
/// in the paper ("All of the operators in this paper have set semantics",
/// Appendix A).
///
/// All algebra operators are exposed as methods on `Relation`; they live in the
/// [`ops`](crate::ops) modules grouped the same way as the paper's Appendix A.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    tuples: BTreeSet<Tuple>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            tuples: BTreeSet::new(),
        }
    }

    /// Create a relation from a schema and tuples.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::ArityMismatch`] if a tuple's arity does not
    /// match the schema.
    pub fn new<I>(schema: Schema, tuples: I) -> Result<Self>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut rel = Relation::empty(schema);
        for t in tuples {
            rel.insert(t)?;
        }
        Ok(rel)
    }

    /// Create a relation from attribute names and rows of values.
    ///
    /// This is the programmatic counterpart of the [`relation!`](macro@crate::relation)
    /// macro and is convenient for generators.
    pub fn from_rows<N, R, V>(names: N, rows: impl IntoIterator<Item = R>) -> Result<Self>
    where
        N: IntoIterator,
        N::Item: Into<crate::Attribute>,
        R: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let schema = Schema::new(names)?;
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.insert(Tuple::new(row))?;
        }
        Ok(rel)
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples (the relation's cardinality).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over the tuples in their deterministic (sorted) order.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// Iterate over the tuples strictly after `last` in the deterministic
    /// (sorted) order, or over all tuples when `last` is `None`.
    ///
    /// This is the resumption primitive behind chunked scans: a consumer
    /// that remembers the last tuple of the previous chunk re-enters the
    /// sorted set in O(log n) instead of re-skipping a prefix, and holds no
    /// borrow on the relation between chunks.
    pub fn tuples_after<'a>(
        &'a self,
        last: Option<&Tuple>,
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'a> {
        match last {
            None => Box::new(self.tuples.iter()),
            Some(t) => Box::new(
                self.tuples
                    .range::<Tuple, _>((std::ops::Bound::Excluded(t), std::ops::Bound::Unbounded)),
            ),
        }
    }

    /// `true` if the relation contains exactly this tuple.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Insert a tuple. Duplicate insertions are silently ignored (set
    /// semantics). Returns whether the tuple was newly inserted.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::ArityMismatch`] if the tuple's arity does not
    /// match the schema.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.schema.arity() {
            return Err(AlgebraError::ArityMismatch {
                expected: self.schema.arity(),
                actual: tuple.arity(),
            });
        }
        Ok(self.tuples.insert(tuple))
    }

    /// Insert a row of plain values.
    pub fn insert_row<I, V>(&mut self, row: I) -> Result<bool>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.insert(Tuple::new(row))
    }

    /// The value of attribute `name` in `tuple` (which must belong to this
    /// relation's schema).
    pub fn value_of<'t>(&self, tuple: &'t Tuple, name: &str) -> Result<&'t Value> {
        let idx = self.schema.require(name)?;
        tuple.get(idx).ok_or(AlgebraError::ArityMismatch {
            expected: self.schema.arity(),
            actual: tuple.arity(),
        })
    }

    /// Reorder this relation's attribute layout to match `target` (which must
    /// be union-compatible). Used so that set operations can accept operands
    /// whose attributes are declared in different orders.
    pub fn conform_to(&self, target: &Schema) -> Result<Relation> {
        if !self.schema.is_compatible_with(target) {
            return Err(AlgebraError::SchemaMismatch {
                left: self.schema.to_string(),
                right: target.to_string(),
                operation: "schema conformance",
            });
        }
        let names = target.names();
        let indices = self.schema.projection_indices(&names)?;
        let tuples = self
            .tuples
            .iter()
            .map(|t| t.project(&indices))
            .collect::<BTreeSet<_>>();
        Ok(Relation {
            schema: target.clone(),
            tuples,
        })
    }

    /// Rename every attribute through `f`, keeping tuples unchanged.
    pub fn rename_with(&self, f: impl FnMut(&str) -> String) -> Result<Relation> {
        Ok(Relation {
            schema: self.schema.rename_with(f)?,
            tuples: self.tuples.clone(),
        })
    }

    /// Rename a single attribute.
    pub fn rename_attribute(&self, from: &str, to: &str) -> Result<Relation> {
        self.schema.require(from)?;
        self.rename_with(|n| {
            if n == from {
                to.to_string()
            } else {
                n.to_string()
            }
        })
    }

    /// The *image set* of the paper (Definition 1): the set of `B`-projections
    /// of all tuples whose `A`-projection equals `key`.
    ///
    /// `a_indices`/`b_indices` are positions of the `A` and `B` attributes in
    /// this relation's schema.
    pub fn image_set(
        &self,
        a_indices: &[usize],
        b_indices: &[usize],
        key: &Tuple,
    ) -> BTreeSet<Tuple> {
        self.tuples
            .iter()
            .filter(|t| &t.project(a_indices) == key)
            .map(|t| t.project(b_indices))
            .collect()
    }

    /// Group the relation's tuples by their projection onto `key_indices`.
    ///
    /// Returns a deterministic map from group key to the set of full tuples of
    /// the group. This helper backs division, grouping and the planners.
    pub fn group_by_indices(&self, key_indices: &[usize]) -> BTreeMap<Tuple, BTreeSet<Tuple>> {
        let mut groups: BTreeMap<Tuple, BTreeSet<Tuple>> = BTreeMap::new();
        for t in &self.tuples {
            groups
                .entry(t.project(key_indices))
                .or_default()
                .insert(t.clone());
        }
        groups
    }

    /// Group by attribute names (see [`Relation::group_by_indices`]).
    pub fn group_by(&self, names: &[&str]) -> Result<BTreeMap<Tuple, BTreeSet<Tuple>>> {
        let indices = self.schema.projection_indices(names)?;
        Ok(self.group_by_indices(&indices))
    }

    /// Collect the distinct values of a single attribute.
    pub fn column(&self, name: &str) -> Result<BTreeSet<Value>> {
        let idx = self.schema.require(name)?;
        Ok(self
            .tuples
            .iter()
            .map(|t| t.values()[idx].clone())
            .collect())
    }

    /// Render the relation as a paper-style ASCII table, e.g.
    ///
    /// ```text
    /// a b
    /// ---
    /// 1 1
    /// 1 4
    /// ```
    pub fn to_table_string(&self) -> String {
        let names = self.schema.names();
        let mut widths: Vec<usize> = names.iter().map(|n| n.chars().count()).collect();
        let rendered: Vec<Vec<String>> = self
            .tuples
            .iter()
            .map(|t| t.values().iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        for (i, n) in names.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&format!("{:width$}", n, width = widths[i]));
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total.max(1)));
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                out.push_str(&format!("{:width$}", cell, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table_string())
    }
}

/// Build a [`Relation`] literal.
///
/// ```
/// use div_algebra::relation;
/// let r2 = relation! { ["b"] => [1], [3] };
/// assert_eq!(r2.len(), 2);
/// let empty = relation! { ["a", "b"] => };
/// assert!(empty.is_empty());
/// ```
#[macro_export]
macro_rules! relation {
    { [$($name:expr),+ $(,)?] => $([$($value:expr),+ $(,)?]),* $(,)? } => {{
        let rows: ::std::vec::Vec<::std::vec::Vec<$crate::Value>> =
            ::std::vec![$( ::std::vec![ $( $crate::Value::from($value) ),+ ] ),*];
        $crate::Relation::from_rows([$($name),+], rows)
            .expect("relation! literal must be well formed")
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_dividend() -> Relation {
        relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        }
    }

    #[test]
    fn construction_deduplicates() {
        let r = relation! { ["a"] => [1], [1], [2] };
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn insert_checks_arity() {
        let mut r = Relation::empty(Schema::of(["a", "b"]));
        assert!(r.insert(Tuple::new([1])).is_err());
        assert!(r.insert(Tuple::new([1, 2])).unwrap());
        assert!(!r.insert(Tuple::new([1, 2])).unwrap());
    }

    #[test]
    fn value_of_reads_named_attribute() {
        let r = relation! { ["s#", "color"] => [1, "blue"] };
        let t = r.tuples().next().unwrap().clone();
        assert_eq!(r.value_of(&t, "color").unwrap(), &Value::str("blue"));
        assert!(r.value_of(&t, "p#").is_err());
    }

    #[test]
    fn conform_to_reorders_attributes() {
        let r = relation! { ["a", "b"] => [1, 10], [2, 20] };
        let target = Schema::of(["b", "a"]);
        let conformed = r.conform_to(&target).unwrap();
        assert_eq!(conformed.schema().names(), vec!["b", "a"]);
        assert!(conformed.contains(&Tuple::new([10, 1])));
        let incompatible = Schema::of(["a", "c"]);
        assert!(r.conform_to(&incompatible).is_err());
    }

    #[test]
    fn rename_attribute_keeps_tuples() {
        let r = relation! { ["a", "b"] => [1, 2] };
        let renamed = r.rename_attribute("b", "b2").unwrap();
        assert_eq!(renamed.schema().names(), vec!["a", "b2"]);
        assert_eq!(renamed.len(), 1);
        assert!(r.rename_attribute("z", "w").is_err());
    }

    #[test]
    fn image_set_matches_paper_definition() {
        // i_r1(2) = {1, 2, 3, 4} in Figure 1.
        let r1 = figure1_dividend();
        let a_idx = [0usize];
        let b_idx = [1usize];
        let image = r1.image_set(&a_idx, &b_idx, &Tuple::new([2]));
        let expected: BTreeSet<Tuple> = [1, 2, 3, 4].iter().map(|&b| Tuple::new([b])).collect();
        assert_eq!(image, expected);
        // i_r1(1) = {1, 4}.
        let image1 = r1.image_set(&a_idx, &b_idx, &Tuple::new([1]));
        assert_eq!(image1.len(), 2);
    }

    #[test]
    fn group_by_partitions_tuples() {
        let r1 = figure1_dividend();
        let groups = r1.group_by(&["a"]).unwrap();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&Tuple::new([2])].len(), 4);
    }

    #[test]
    fn column_collects_distinct_values() {
        let r1 = figure1_dividend();
        let col = r1.column("b").unwrap();
        assert_eq!(col.len(), 4);
        assert!(col.contains(&Value::Int(3)));
    }

    #[test]
    fn table_rendering_contains_header_and_rows() {
        let r = relation! { ["a", "b"] => [1, 10] };
        let table = r.to_table_string();
        assert!(table.starts_with("a b"));
        assert!(table.contains("1 10"));
    }

    #[test]
    fn empty_relation_macro_form() {
        let r = relation! { ["a", "b"] => };
        assert!(r.is_empty());
        assert_eq!(r.schema().arity(), 2);
    }
}
