//! # div-algebra
//!
//! Set-semantics relational algebra substrate for the *division-laws* workspace.
//!
//! This crate provides the data model (values, tuples, schemas, relations) and
//! **reference implementations** of every operator listed in Appendix A of
//! Rantzau & Mangold, *Laws for Rewriting Queries Containing Division
//! Operators* (ICDE 2006):
//!
//! * the basic operators — union, intersection, difference, Cartesian product,
//!   projection, selection,
//! * the derived join family — theta-join, natural join, left semi-join,
//!   left anti-semi-join, left outer join,
//! * grouping with aggregation,
//! * **small divide** (`÷`, Codd's relational division) in all three textbook
//!   formulations (Codd, Healy, Maier),
//! * **great divide** (`÷*`, generalized / set-containment division) in all
//!   three independently proposed formulations (set-containment division,
//!   Demolombe's generalized division, Todd's great divide), and
//! * the set containment join over set-valued attributes.
//!
//! Everything in this crate has *set semantics*: a [`Relation`] is a schema plus
//! a set of tuples, duplicates never exist, and operator outputs are fully
//! materialized. The implementations favour clarity and direct correspondence
//! with the paper's definitions; the `div-physical` crate contains the
//! efficient, special-purpose algorithms and uses this crate as its test oracle.
//!
//! ## Quick example
//!
//! ```
//! use div_algebra::{Relation, relation};
//!
//! // Figure 1 of the paper: r1 ÷ r2 = r3.
//! let r1 = relation! {
//!     ["a", "b"] =>
//!     [1, 1], [1, 4],
//!     [2, 1], [2, 2], [2, 3], [2, 4],
//!     [3, 1], [3, 3], [3, 4],
//! };
//! let r2 = relation! { ["b"] => [1], [3] };
//! let r3 = relation! { ["a"] => [2], [3] };
//! assert_eq!(r1.divide(&r2).unwrap(), r3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ops;
pub mod predicate;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use error::AlgebraError;
pub use ops::aggregate::{AggregateCall, AggregateFunction};
pub use predicate::{CompareOp, Predicate};
pub use relation::Relation;
pub use schema::{Attribute, Schema};
pub use tuple::Tuple;
pub use value::Value;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, AlgebraError>;
