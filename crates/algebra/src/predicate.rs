//! Selection predicates over tuples.
//!
//! The laws of the paper talk about predicates `p(X)` that "involve only
//! elements of a set of attributes X" (e.g. `p(A)` for Law 3, `p(B)` for
//! Law 4). [`Predicate::referenced_attributes`] exposes exactly that set so the
//! rewrite rules can check the side condition, and [`Predicate::negate`] gives
//! the `¬p(B)` needed by Example 1.

use crate::{AlgebraError, Result, Schema, Tuple, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Comparison operators usable in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CompareOp {
    /// Evaluate the comparison on two values.
    ///
    /// # Errors
    ///
    /// Returns a [`AlgebraError::TypeError`] when the values are of different
    /// kinds (comparing an int to a string) — the paper's examples never rely
    /// on cross-type ordering, so we treat it as a query error.
    pub fn eval(&self, left: &Value, right: &Value) -> Result<bool> {
        if !left.same_kind(right) {
            return Err(AlgebraError::TypeError {
                reason: format!(
                    "cannot compare {} value `{left}` with {} value `{right}`",
                    left.kind_name(),
                    right.kind_name()
                ),
            });
        }
        Ok(match self {
            CompareOp::Eq => left == right,
            CompareOp::NotEq => left != right,
            CompareOp::Lt => left < right,
            CompareOp::LtEq => left <= right,
            CompareOp::Gt => left > right,
            CompareOp::GtEq => left >= right,
        })
    }

    /// The logical negation of this comparison (`<` becomes `>=`, …).
    pub fn negate(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::NotEq,
            CompareOp::NotEq => CompareOp::Eq,
            CompareOp::Lt => CompareOp::GtEq,
            CompareOp::LtEq => CompareOp::Gt,
            CompareOp::Gt => CompareOp::LtEq,
            CompareOp::GtEq => CompareOp::Lt,
        }
    }

    /// The comparison with its operands swapped (`a < b` ⇔ `b > a`).
    pub fn flip(&self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::NotEq => CompareOp::NotEq,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::LtEq => CompareOp::GtEq,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::GtEq => CompareOp::LtEq,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::NotEq => "<>",
            CompareOp::Lt => "<",
            CompareOp::LtEq => "<=",
            CompareOp::Gt => ">",
            CompareOp::GtEq => ">=",
        };
        write!(f, "{s}")
    }
}

/// A boolean predicate over the tuples of one relation (or, for theta-joins,
/// over the concatenated tuple of two relations).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Predicate {
    /// Always true (`⋈_true ≡ ×`, used by Law 8's discussion).
    True,
    /// Always false.
    False,
    /// Compare an attribute with a constant.
    CompareValue {
        /// Attribute name.
        attribute: String,
        /// Comparison operator.
        op: CompareOp,
        /// Constant to compare against.
        value: Value,
    },
    /// Compare two attributes of the (possibly concatenated) schema.
    CompareAttributes {
        /// Left attribute name.
        left: String,
        /// Comparison operator.
        op: CompareOp,
        /// Right attribute name.
        right: String,
    },
    /// Compare an attribute with a named `$parameter` placeholder.
    ///
    /// Placeholders come from prepared SQL statements: the plan is compiled
    /// and optimized once with the placeholder in place, then
    /// [`Predicate::bind_parameters`] substitutes a concrete value before
    /// every execution. Evaluating an unbound placeholder is an
    /// [`AlgebraError::UnboundParameter`] error.
    CompareParameter {
        /// Attribute name.
        attribute: String,
        /// Comparison operator.
        op: CompareOp,
        /// Parameter name (without the `$` sigil).
        parameter: String,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `attribute op constant`.
    pub fn cmp_value(attribute: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Self {
        Predicate::CompareValue {
            attribute: attribute.into(),
            op,
            value: value.into(),
        }
    }

    /// `attribute = constant`.
    pub fn eq_value(attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        Self::cmp_value(attribute, CompareOp::Eq, value)
    }

    /// `left op right` over two attributes.
    pub fn cmp_attrs(left: impl Into<String>, op: CompareOp, right: impl Into<String>) -> Self {
        Predicate::CompareAttributes {
            left: left.into(),
            op,
            right: right.into(),
        }
    }

    /// `left = right` over two attributes (an equi-join condition).
    pub fn eq_attrs(left: impl Into<String>, right: impl Into<String>) -> Self {
        Self::cmp_attrs(left, CompareOp::Eq, right)
    }

    /// `attribute op $parameter` — a placeholder bound later via
    /// [`Predicate::bind_parameters`].
    pub fn cmp_param(
        attribute: impl Into<String>,
        op: CompareOp,
        parameter: impl Into<String>,
    ) -> Self {
        Predicate::CompareParameter {
            attribute: attribute.into(),
            op,
            parameter: parameter.into(),
        }
    }

    /// Conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction of two predicates.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Logical negation (`¬p`), pushed through comparisons where possible so
    /// `¬(b < 3)` prints as `b >= 3` like the paper's `σ_{b≥3}`.
    pub fn negate(&self) -> Predicate {
        match self {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::CompareValue {
                attribute,
                op,
                value,
            } => Predicate::CompareValue {
                attribute: attribute.clone(),
                op: op.negate(),
                value: value.clone(),
            },
            Predicate::CompareAttributes { left, op, right } => Predicate::CompareAttributes {
                left: left.clone(),
                op: op.negate(),
                right: right.clone(),
            },
            Predicate::CompareParameter {
                attribute,
                op,
                parameter,
            } => Predicate::CompareParameter {
                attribute: attribute.clone(),
                op: op.negate(),
                parameter: parameter.clone(),
            },
            Predicate::Not(inner) => (**inner).clone(),
            // De Morgan, keeping the tree small.
            Predicate::And(l, r) => Predicate::Or(Box::new(l.negate()), Box::new(r.negate())),
            Predicate::Or(l, r) => Predicate::And(Box::new(l.negate()), Box::new(r.negate())),
        }
    }

    /// Conjoin a list of predicates (`True` when the list is empty).
    pub fn all<I: IntoIterator<Item = Predicate>>(preds: I) -> Predicate {
        let mut iter = preds.into_iter();
        match iter.next() {
            None => Predicate::True,
            Some(first) => iter.fold(first, |acc, p| acc.and(p)),
        }
    }

    /// Evaluate the predicate on `tuple` laid out according to `schema`.
    pub fn eval(&self, schema: &Schema, tuple: &Tuple) -> Result<bool> {
        match self {
            Predicate::True => Ok(true),
            Predicate::False => Ok(false),
            Predicate::CompareValue {
                attribute,
                op,
                value,
            } => {
                let idx = schema.require(attribute)?;
                op.eval(&tuple.values()[idx], value)
            }
            Predicate::CompareAttributes { left, op, right } => {
                let li = schema.require(left)?;
                let ri = schema.require(right)?;
                op.eval(&tuple.values()[li], &tuple.values()[ri])
            }
            Predicate::CompareParameter { parameter, .. } => Err(AlgebraError::UnboundParameter {
                parameter: parameter.clone(),
            }),
            Predicate::And(l, r) => Ok(l.eval(schema, tuple)? && r.eval(schema, tuple)?),
            Predicate::Or(l, r) => Ok(l.eval(schema, tuple)? || r.eval(schema, tuple)?),
            Predicate::Not(inner) => Ok(!inner.eval(schema, tuple)?),
        }
    }

    /// The set of attribute names the predicate mentions.
    ///
    /// The rewrite rules use this to decide whether a predicate is a `p(A)`
    /// (only quotient attributes), a `p(B)` (only divisor attributes), or
    /// neither.
    pub fn referenced_attributes(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_attributes(&mut out);
        out
    }

    fn collect_attributes(&self, out: &mut BTreeSet<String>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::CompareValue { attribute, .. }
            | Predicate::CompareParameter { attribute, .. } => {
                out.insert(attribute.clone());
            }
            Predicate::CompareAttributes { left, right, .. } => {
                out.insert(left.clone());
                out.insert(right.clone());
            }
            Predicate::And(l, r) | Predicate::Or(l, r) => {
                l.collect_attributes(out);
                r.collect_attributes(out);
            }
            Predicate::Not(inner) => inner.collect_attributes(out),
        }
    }

    /// `true` when every attribute referenced by this predicate is contained in
    /// `attributes` — i.e. this predicate is a `p(X)` for `X = attributes`.
    pub fn only_references(&self, attributes: &[&str]) -> bool {
        self.referenced_attributes()
            .iter()
            .all(|a| attributes.contains(&a.as_str()))
    }

    /// Rewrite every attribute reference through `f` (used when plans rename
    /// attributes, e.g. to qualify join inputs).
    pub fn map_attributes(&self, f: &impl Fn(&str) -> String) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::CompareValue {
                attribute,
                op,
                value,
            } => Predicate::CompareValue {
                attribute: f(attribute),
                op: *op,
                value: value.clone(),
            },
            Predicate::CompareAttributes { left, op, right } => Predicate::CompareAttributes {
                left: f(left),
                op: *op,
                right: f(right),
            },
            Predicate::CompareParameter {
                attribute,
                op,
                parameter,
            } => Predicate::CompareParameter {
                attribute: f(attribute),
                op: *op,
                parameter: parameter.clone(),
            },
            Predicate::And(l, r) => {
                Predicate::And(Box::new(l.map_attributes(f)), Box::new(r.map_attributes(f)))
            }
            Predicate::Or(l, r) => {
                Predicate::Or(Box::new(l.map_attributes(f)), Box::new(r.map_attributes(f)))
            }
            Predicate::Not(inner) => Predicate::Not(Box::new(inner.map_attributes(f))),
        }
    }

    /// Split a conjunction into its conjuncts (a single non-`And` predicate
    /// yields itself). Useful for detecting "conjunction of equi-joins" as
    /// required by the small-divide detection rule of Section 4.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(l, r) => {
                let mut out = l.conjuncts();
                out.extend(r.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// The set of `$parameter` names this predicate still needs bound.
    pub fn parameters(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_parameters(&mut out);
        out
    }

    fn collect_parameters(&self, out: &mut BTreeSet<String>) {
        match self {
            Predicate::True
            | Predicate::False
            | Predicate::CompareValue { .. }
            | Predicate::CompareAttributes { .. } => {}
            Predicate::CompareParameter { parameter, .. } => {
                out.insert(parameter.clone());
            }
            Predicate::And(l, r) | Predicate::Or(l, r) => {
                l.collect_parameters(out);
                r.collect_parameters(out);
            }
            Predicate::Not(inner) => inner.collect_parameters(out),
        }
    }

    /// `true` when the predicate contains at least one unbound `$parameter`.
    pub fn has_parameters(&self) -> bool {
        match self {
            Predicate::True
            | Predicate::False
            | Predicate::CompareValue { .. }
            | Predicate::CompareAttributes { .. } => false,
            Predicate::CompareParameter { .. } => true,
            Predicate::And(l, r) | Predicate::Or(l, r) => l.has_parameters() || r.has_parameters(),
            Predicate::Not(inner) => inner.has_parameters(),
        }
    }

    /// Substitute every `$parameter` placeholder whose name appears in
    /// `bindings` with the bound constant, turning it into an ordinary
    /// [`Predicate::CompareValue`]. Placeholders without a binding are left
    /// in place (the caller decides whether that is an error).
    pub fn bind_parameters(&self, bindings: &BTreeMap<String, Value>) -> Predicate {
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::CompareValue { .. } | Predicate::CompareAttributes { .. } => self.clone(),
            Predicate::CompareParameter {
                attribute,
                op,
                parameter,
            } => match bindings.get(parameter) {
                Some(value) => Predicate::CompareValue {
                    attribute: attribute.clone(),
                    op: *op,
                    value: value.clone(),
                },
                None => self.clone(),
            },
            Predicate::And(l, r) => Predicate::And(
                Box::new(l.bind_parameters(bindings)),
                Box::new(r.bind_parameters(bindings)),
            ),
            Predicate::Or(l, r) => Predicate::Or(
                Box::new(l.bind_parameters(bindings)),
                Box::new(r.bind_parameters(bindings)),
            ),
            Predicate::Not(inner) => Predicate::Not(Box::new(inner.bind_parameters(bindings))),
        }
    }

    /// If this predicate is a pure conjunction of attribute equalities, return
    /// the list of `(left, right)` pairs; otherwise `None`.
    pub fn as_equi_join_pairs(&self) -> Option<Vec<(String, String)>> {
        let mut pairs = Vec::new();
        for c in self.conjuncts() {
            match c {
                Predicate::CompareAttributes {
                    left,
                    op: CompareOp::Eq,
                    right,
                } => pairs.push((left.clone(), right.clone())),
                Predicate::True => {}
                _ => return None,
            }
        }
        Some(pairs)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::CompareValue {
                attribute,
                op,
                value,
            } => write!(f, "{attribute} {op} {value}"),
            Predicate::CompareAttributes { left, op, right } => {
                write!(f, "{left} {op} {right}")
            }
            Predicate::CompareParameter {
                attribute,
                op,
                parameter,
            } => write!(f, "{attribute} {op} ${parameter}"),
            Predicate::And(l, r) => write!(f, "({l} AND {r})"),
            Predicate::Or(l, r) => write!(f, "({l} OR {r})"),
            Predicate::Not(inner) => write!(f, "NOT ({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn schema() -> Schema {
        Schema::of(["a", "b", "c"])
    }

    #[test]
    fn compare_ops_evaluate() {
        assert!(CompareOp::Lt.eval(&Value::Int(1), &Value::Int(2)).unwrap());
        assert!(!CompareOp::Eq.eval(&Value::Int(1), &Value::Int(2)).unwrap());
        assert!(CompareOp::GtEq
            .eval(&Value::str("b"), &Value::str("a"))
            .unwrap());
        assert!(CompareOp::Eq
            .eval(&Value::Int(1), &Value::str("1"))
            .is_err());
    }

    #[test]
    fn negate_and_flip_are_involutions_on_truth() {
        for op in [
            CompareOp::Eq,
            CompareOp::NotEq,
            CompareOp::Lt,
            CompareOp::LtEq,
            CompareOp::Gt,
            CompareOp::GtEq,
        ] {
            for (l, r) in [(1, 2), (2, 2), (3, 2)] {
                let l = Value::Int(l);
                let r = Value::Int(r);
                let direct = op.eval(&l, &r).unwrap();
                assert_eq!(op.negate().eval(&l, &r).unwrap(), !direct);
                assert_eq!(op.flip().eval(&r, &l).unwrap(), direct);
            }
        }
    }

    #[test]
    fn predicate_eval_on_tuple() {
        let s = schema();
        let t = Tuple::new([1, 5, 3]);
        assert!(Predicate::cmp_value("b", CompareOp::Lt, 10)
            .eval(&s, &t)
            .unwrap());
        assert!(!Predicate::eq_value("a", 2).eval(&s, &t).unwrap());
        assert!(Predicate::cmp_attrs("a", CompareOp::Lt, "c")
            .eval(&s, &t)
            .unwrap());
        let p = Predicate::eq_value("a", 1).and(Predicate::cmp_value("b", CompareOp::Gt, 4));
        assert!(p.eval(&s, &t).unwrap());
        assert!(p.negate().eval(&s, &t).map(|v| !v).unwrap());
        assert!(Predicate::True.eval(&s, &t).unwrap());
        assert!(!Predicate::False.eval(&s, &t).unwrap());
    }

    #[test]
    fn unknown_attribute_is_an_error() {
        let s = schema();
        let t = Tuple::new([1, 2, 3]);
        assert!(Predicate::eq_value("zz", 0).eval(&s, &t).is_err());
    }

    #[test]
    fn referenced_attributes_and_only_references() {
        let p = Predicate::eq_value("a", 1).and(Predicate::cmp_attrs("b", CompareOp::Lt, "c"));
        let attrs = p.referenced_attributes();
        assert_eq!(attrs.len(), 3);
        assert!(p.only_references(&["a", "b", "c", "d"]));
        assert!(!p.only_references(&["a", "b"]));
    }

    #[test]
    fn negation_pushes_through_comparisons() {
        // σ_{b<3} negated is σ_{b>=3}, as used in Example 1 / Figure 6.
        let p = Predicate::cmp_value("b", CompareOp::Lt, 3);
        assert_eq!(p.negate(), Predicate::cmp_value("b", CompareOp::GtEq, 3));
        // Double negation returns the original.
        assert_eq!(p.negate().negate(), p);
    }

    #[test]
    fn de_morgan_on_conjunction() {
        let p = Predicate::eq_value("a", 1).and(Predicate::eq_value("b", 2));
        let n = p.negate();
        let s = schema();
        for row in [[1, 2, 0], [1, 3, 0], [9, 2, 0], [9, 9, 0]] {
            let t = Tuple::new(row);
            assert_eq!(n.eval(&s, &t).unwrap(), !p.eval(&s, &t).unwrap());
        }
    }

    #[test]
    fn equi_join_pair_detection() {
        let p = Predicate::eq_attrs("b", "b2").and(Predicate::eq_attrs("c", "c2"));
        assert_eq!(
            p.as_equi_join_pairs().unwrap(),
            vec![
                ("b".to_string(), "b2".to_string()),
                ("c".to_string(), "c2".to_string())
            ]
        );
        let q = Predicate::eq_attrs("b", "b2").and(Predicate::cmp_value("c", CompareOp::Lt, 3));
        assert!(q.as_equi_join_pairs().is_none());
    }

    #[test]
    fn all_combines_conjuncts() {
        let p = Predicate::all(vec![
            Predicate::eq_value("a", 1),
            Predicate::eq_value("b", 2),
        ]);
        assert_eq!(p.conjuncts().len(), 2);
        assert_eq!(Predicate::all(Vec::new()), Predicate::True);
    }

    #[test]
    fn map_attributes_renames_references() {
        let p = Predicate::eq_attrs("b", "c").and(Predicate::eq_value("a", 1));
        let mapped = p.map_attributes(&|n| format!("r1.{n}"));
        assert!(mapped.referenced_attributes().contains("r1.a"));
        assert!(mapped.referenced_attributes().contains("r1.b"));
    }

    #[test]
    fn display_round_trips_shape() {
        let p = Predicate::cmp_value("b", CompareOp::Lt, 3).and(Predicate::eq_attrs("a", "c"));
        assert_eq!(p.to_string(), "(b < 3 AND a = c)");
    }

    #[test]
    fn unbound_parameters_error_on_eval_and_are_reported() {
        let p =
            Predicate::cmp_param("b", CompareOp::Eq, "threshold").and(Predicate::eq_value("a", 1));
        assert!(p.has_parameters());
        assert_eq!(
            p.parameters().into_iter().collect::<Vec<_>>(),
            vec!["threshold".to_string()]
        );
        assert_eq!(p.to_string(), "(b = $threshold AND a = 1)");
        let err = p.eval(&schema(), &Tuple::new([1, 5, 3])).unwrap_err();
        assert_eq!(
            err,
            AlgebraError::UnboundParameter {
                parameter: "threshold".into()
            }
        );
    }

    #[test]
    fn bind_parameters_substitutes_known_names_only() {
        let p = Predicate::cmp_param("b", CompareOp::Lt, "hi").and(Predicate::cmp_param(
            "c",
            CompareOp::Eq,
            "other",
        ));
        let mut bindings = BTreeMap::new();
        bindings.insert("hi".to_string(), Value::Int(10));
        let bound = p.bind_parameters(&bindings);
        assert_eq!(bound.parameters().len(), 1, "only `other` remains unbound");
        // The bound half evaluates like a plain comparison now.
        let fully = bound.bind_parameters(&BTreeMap::from([("other".to_string(), Value::Int(3))]));
        assert!(!fully.has_parameters());
        assert!(fully.eval(&schema(), &Tuple::new([1, 5, 3])).unwrap());
    }

    #[test]
    fn parameter_placeholders_negate_and_rename_like_comparisons() {
        let p = Predicate::cmp_param("b", CompareOp::Lt, "x");
        assert_eq!(p.negate(), Predicate::cmp_param("b", CompareOp::GtEq, "x"));
        let mapped = p.map_attributes(&|n| format!("r.{n}"));
        assert!(mapped.referenced_attributes().contains("r.b"));
        assert_eq!(mapped.parameters().len(), 1);
    }
}
