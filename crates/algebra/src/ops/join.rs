//! The join family: theta-join, natural join, left semi-join, left
//! anti-semi-join and left outer join (Appendix A of the paper).

use crate::{Predicate, Relation, Result, Tuple, Value};

impl Relation {
    /// Theta-join `r1 ⋈_θ r2 = σ_θ(r1 × r2)`.
    ///
    /// Like the Cartesian product, the operand schemas must be
    /// attribute-disjoint; the predicate refers to attributes of the
    /// concatenated schema.
    pub fn theta_join(&self, other: &Relation, predicate: &Predicate) -> Result<Relation> {
        self.product(other)?.select(predicate)
    }

    /// Natural join `r1 ⋈ r2`: equality on all common attribute names, with the
    /// shared attributes appearing once in the output (the paper's
    /// `π_A(σ_θ(r1 × r2))` formulation).
    pub fn natural_join(&self, other: &Relation) -> Result<Relation> {
        let common = self.schema().common_attributes(other.schema());
        let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
        let left_common = self.schema().projection_indices(&common_refs)?;
        let right_common = other.schema().projection_indices(&common_refs)?;
        // Output layout: all of r1's attributes, then r2's attributes not in r1.
        let out_schema = self.schema().natural_union(other.schema());
        let right_extra: Vec<&str> = other
            .schema()
            .names()
            .into_iter()
            .filter(|n| !self.schema().contains(n))
            .collect();
        let right_extra_idx = other.schema().projection_indices(&right_extra)?;

        let mut out = Relation::empty(out_schema);
        // Hash-free nested loop keeps the reference implementation obviously
        // faithful to the definition; `div-physical` has the fast variants.
        for t1 in self.tuples() {
            let key1 = t1.project(&left_common);
            for t2 in other.tuples() {
                if t2.project(&right_common) == key1 {
                    out.insert(t1.concat(&t2.project(&right_extra_idx)))?;
                }
            }
        }
        Ok(out)
    }

    /// Left semi-join `r1 ⋉ r2 = π_[r1](r1 ⋈ r2)`: the tuples of `r1` that
    /// join with at least one tuple of `r2` on the common attributes.
    pub fn semi_join(&self, other: &Relation) -> Result<Relation> {
        let common = self.schema().common_attributes(other.schema());
        let common_refs: Vec<&str> = common.iter().map(String::as_str).collect();
        let left_common = self.schema().projection_indices(&common_refs)?;
        let right_keys = other.project(&common_refs)?;
        let mut out = Relation::empty(self.schema().clone());
        for t in self.tuples() {
            if right_keys.contains(&t.project(&left_common)) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// Left anti-semi-join `r1 ▷ r2 = r1 − (r1 ⋉ r2)`.
    pub fn anti_semi_join(&self, other: &Relation) -> Result<Relation> {
        self.difference(&self.semi_join(other)?)
    }

    /// Left outer join `r1 ⟕ r2 = (r1 ⋈ r2) ∪ ((r1 ▷ r2) × (NULL, …, NULL))`,
    /// padding dangling `r1` tuples with NULLs for `r2`'s extra attributes.
    pub fn left_outer_join(&self, other: &Relation) -> Result<Relation> {
        let joined = self.natural_join(other)?;
        let dangling = self.anti_semi_join(other)?;
        let extra_count = joined.schema().arity() - self.schema().arity();
        let mut out = joined;
        for t in dangling.tuples() {
            let padded = t.concat(&Tuple::new(vec![Value::Null; extra_count]));
            out.insert(padded)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{relation, CompareOp, Predicate, Relation, Tuple, Value};

    #[test]
    fn theta_join_is_selection_over_product() {
        // Figure 9(d): r*1 ⋈_{b1<b2} r**1.
        let r_star = relation! {
            ["a", "b1"] =>
            [1, 1], [1, 2], [1, 3],
            [2, 2], [2, 3],
            [3, 1], [3, 3], [3, 4],
        };
        let r_star_star = relation! { ["b2"] => [1], [2], [4] };
        let joined = r_star
            .theta_join(
                &r_star_star,
                &Predicate::cmp_attrs("b1", CompareOp::Lt, "b2"),
            )
            .unwrap();
        let expected = relation! {
            ["a", "b1", "b2"] =>
            [1, 1, 2], [1, 1, 4], [1, 2, 4], [1, 3, 4],
            [2, 2, 4], [2, 3, 4],
            [3, 1, 2], [3, 1, 4], [3, 3, 4],
        };
        assert_eq!(joined, expected);
    }

    #[test]
    fn theta_join_with_true_is_product() {
        let r1 = relation! { ["a"] => [1], [2] };
        let r2 = relation! { ["b"] => [10] };
        assert_eq!(
            r1.theta_join(&r2, &Predicate::True).unwrap(),
            r1.product(&r2).unwrap()
        );
    }

    #[test]
    fn natural_join_on_common_attribute() {
        let supplies = relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1] };
        let parts = relation! { ["p#", "color"] => [1, "blue"], [2, "red"] };
        let joined = supplies.natural_join(&parts).unwrap();
        assert_eq!(joined.schema().names(), vec!["s#", "p#", "color"]);
        assert_eq!(joined.len(), 3);
        assert!(joined.contains(&Tuple::new([
            Value::Int(2),
            Value::Int(1),
            Value::str("blue")
        ])));
    }

    #[test]
    fn natural_join_without_common_attributes_is_product() {
        let r1 = relation! { ["a"] => [1], [2] };
        let r2 = relation! { ["b"] => [10] };
        assert_eq!(r1.natural_join(&r2).unwrap(), r1.product(&r2).unwrap());
    }

    #[test]
    fn semi_join_keeps_matching_left_tuples() {
        // Figure 4(f): r1 ⋉ (r1 ÷ r'2).
        let r1 = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
            [4, 1], [4, 3],
        };
        let quotient = relation! { ["a"] => [2], [3], [4] };
        let semi = r1.semi_join(&quotient).unwrap();
        let expected = relation! {
            ["a", "b"] =>
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
            [4, 1], [4, 3],
        };
        assert_eq!(semi, expected);
    }

    #[test]
    fn anti_semi_join_is_complement_of_semi_join() {
        let r1 = relation! { ["a", "b"] => [1, 1], [2, 1], [3, 1] };
        let r2 = relation! { ["a"] => [2] };
        let semi = r1.semi_join(&r2).unwrap();
        let anti = r1.anti_semi_join(&r2).unwrap();
        assert_eq!(semi.union(&anti).unwrap(), r1);
        assert!(semi.intersect(&anti).unwrap().is_empty());
        assert_eq!(anti.len(), 2);
    }

    #[test]
    fn left_outer_join_pads_dangling_tuples_with_null() {
        let suppliers = relation! { ["s#"] => [1], [2], [3] };
        let supplies = relation! { ["s#", "p#"] => [1, 10], [1, 20], [2, 10] };
        let outer = suppliers.left_outer_join(&supplies).unwrap();
        assert_eq!(outer.schema().names(), vec!["s#", "p#"]);
        assert_eq!(outer.len(), 4);
        assert!(outer.contains(&Tuple::new([Value::Int(3), Value::Null])));
    }

    #[test]
    fn semi_join_with_empty_right_is_empty() {
        let r1 = relation! { ["a", "b"] => [1, 1] };
        let empty = Relation::empty(crate::Schema::of(["a"]));
        assert!(r1.semi_join(&empty).unwrap().is_empty());
        assert_eq!(r1.anti_semi_join(&empty).unwrap(), r1);
    }
}
