//! The set containment join `r1 ⋈_{b1 ⊇ b2} r2` over set-valued attributes.
//!
//! Section 2.2 of the paper contrasts the great divide with the set containment
//! join: the join's operands are *not* in first normal form (the joined
//! attributes hold sets), it preserves the join attributes in its output, and
//! it permits empty sets. This module implements that operator so the
//! differences listed in the paper can be demonstrated and tested (see
//! `tests/figures.rs::figure_3_set_containment_join`).

use crate::{AlgebraError, Relation, Result, Value};

impl Relation {
    /// Set containment join: all combinations of `t1 ∈ self` and `t2 ∈ other`
    /// such that the set value `t1.left_attr` contains every element of the
    /// set value `t2.right_attr`. The output schema is the concatenation of
    /// both schemas (which must be attribute-disjoint).
    ///
    /// Both join attributes must hold [`Value::Set`] values in every tuple.
    pub fn set_containment_join(
        &self,
        other: &Relation,
        left_attr: &str,
        right_attr: &str,
    ) -> Result<Relation> {
        let left_idx = self.schema().require(left_attr)?;
        let right_idx = other.schema().require(right_attr)?;
        let schema = self.schema().concat(other.schema())?;
        let mut out = Relation::empty(schema);
        for t1 in self.tuples() {
            let left_set = match &t1.values()[left_idx] {
                Value::Set(s) => s,
                other_value => {
                    return Err(AlgebraError::TypeError {
                        reason: format!(
                            "set containment join requires a set-valued attribute, but `{left_attr}` holds {} value `{other_value}`",
                            other_value.kind_name()
                        ),
                    })
                }
            };
            for t2 in other.tuples() {
                let right_set = match &t2.values()[right_idx] {
                    Value::Set(s) => s,
                    other_value => {
                        return Err(AlgebraError::TypeError {
                            reason: format!(
                                "set containment join requires a set-valued attribute, but `{right_attr}` holds {} value `{other_value}`",
                                other_value.kind_name()
                            ),
                        })
                    }
                };
                if right_set.is_subset(left_set) {
                    out.insert(t1.concat(t2))?;
                }
            }
        }
        Ok(out)
    }

    /// "Nest" a flat relation into a set-valued representation: group on
    /// `group_attrs` and collect the values of `set_attr` of each group into a
    /// single set-valued attribute named `set_attr`.
    ///
    /// This converts the first-normal-form representation used by the division
    /// operators (Figure 2) into the non-first-normal-form representation used
    /// by the set containment join (Figure 3).
    pub fn nest(&self, group_attrs: &[&str], set_attr: &str) -> Result<Relation> {
        let set_idx = self.schema().require(set_attr)?;
        let mut names: Vec<&str> = group_attrs.to_vec();
        names.push(set_attr);
        let out_schema = self.schema().project(&names)?;
        let mut out = Relation::empty(out_schema);
        for (key, members) in self.group_by(group_attrs)? {
            let set_value = Value::Set(
                members
                    .iter()
                    .map(|t| t.values()[set_idx].clone())
                    .collect(),
            );
            let mut values = key.values().to_vec();
            values.push(set_value);
            out.insert(crate::Tuple::new(values))?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{relation, Relation, Tuple, Value};

    /// Figure 3 input r1: nested form of the Figure 1/2 dividend.
    fn nested_r1() -> Relation {
        Relation::from_rows(
            ["a", "b1"],
            vec![
                vec![Value::Int(1), Value::set([1, 4])],
                vec![Value::Int(2), Value::set([1, 2, 3, 4])],
                vec![Value::Int(3), Value::set([1, 3, 4])],
            ],
        )
        .unwrap()
    }

    /// Figure 3 input r2.
    fn nested_r2() -> Relation {
        Relation::from_rows(
            ["b2", "c"],
            vec![
                vec![Value::set([1, 2, 4]), Value::Int(1)],
                vec![Value::set([1, 3]), Value::Int(2)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn figure_3_set_containment_join() {
        let r3 = nested_r1()
            .set_containment_join(&nested_r2(), "b1", "b2")
            .unwrap();
        assert_eq!(r3.schema().names(), vec!["a", "b1", "b2", "c"]);
        assert_eq!(r3.len(), 3);
        assert!(r3.contains(&Tuple::new([
            Value::Int(2),
            Value::set([1, 2, 3, 4]),
            Value::set([1, 2, 4]),
            Value::Int(1),
        ])));
        assert!(r3.contains(&Tuple::new([
            Value::Int(2),
            Value::set([1, 2, 3, 4]),
            Value::set([1, 3]),
            Value::Int(2),
        ])));
        assert!(r3.contains(&Tuple::new([
            Value::Int(3),
            Value::set([1, 3, 4]),
            Value::set([1, 3]),
            Value::Int(2),
        ])));
    }

    #[test]
    fn empty_right_set_joins_with_everything() {
        // Difference 3 in Section 2.2: the join allows empty sets.
        let r1 = nested_r1();
        let r2 = Relation::from_rows(
            ["b2", "c"],
            vec![vec![Value::Set(Default::default()), Value::Int(9)]],
        )
        .unwrap();
        let r3 = r1.set_containment_join(&r2, "b1", "b2").unwrap();
        assert_eq!(r3.len(), 3);
    }

    #[test]
    fn non_set_attribute_is_a_type_error() {
        let r1 = relation! { ["a", "b1"] => [1, 1] };
        let r2 = nested_r2();
        assert!(r1.set_containment_join(&r2, "b1", "b2").is_err());
    }

    #[test]
    fn nest_groups_flat_relation_into_sets() {
        let flat = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        };
        let nested = flat.nest(&["a"], "b").unwrap();
        assert_eq!(nested.len(), 3);
        assert!(nested.contains(&Tuple::new([Value::Int(1), Value::set([1, 4])])));
    }

    #[test]
    fn nested_join_agrees_with_great_divide_on_figure_2() {
        // The paper's point: both operators solve "find pairs of sets with
        // s1 ⊇ s2"; after projecting away the set values and renaming, the
        // set containment join gives exactly the great-divide quotient.
        let flat_r1 = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        };
        let flat_r2 = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
        let divide_result = flat_r1.great_divide(&flat_r2).unwrap();

        let nested_left = flat_r1
            .nest(&["a"], "b")
            .unwrap()
            .rename_attribute("b", "b1")
            .unwrap();
        let nested_right = flat_r2
            .nest(&["c"], "b")
            .unwrap()
            .rename_attribute("b", "b2")
            .unwrap();
        let joined = nested_left
            .set_containment_join(&nested_right, "b1", "b2")
            .unwrap();
        let projected = joined.project(&["a", "c"]).unwrap();
        assert_eq!(projected, divide_result);
    }
}
