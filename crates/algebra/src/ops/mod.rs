//! Reference implementations of the relational algebra operators.
//!
//! The modules mirror the operator table of the paper's Appendix A:
//!
//! * [`set_ops`] — union, intersection, difference,
//! * [`project_select`] — projection and selection,
//! * [`product`] — Cartesian product,
//! * [`join`] — theta-join, natural join, semi-join, anti-semi-join,
//!   left outer join,
//! * [`aggregate`] — the grouping operator `GγF`,
//! * [`division`] — small divide (Definitions 1–3) and great divide
//!   (Definitions 4–6),
//! * [`containment`] — the set containment join over set-valued attributes.
//!
//! All operators are exposed as methods on [`Relation`](crate::Relation).

pub mod aggregate;
pub mod containment;
pub mod division;
pub mod join;
pub mod product;
pub mod project_select;
pub mod set_ops;
