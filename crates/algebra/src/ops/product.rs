//! Cartesian product (`×`).

use crate::{Relation, Result, Tuple};

impl Relation {
    /// Cartesian product `r1 × r2 = {t1 ∘ t2 | t1 ∈ r1 ∧ t2 ∈ r2}` where `∘`
    /// is tuple concatenation.
    ///
    /// # Errors
    ///
    /// The operand schemas must be attribute-disjoint (as they always are in
    /// the paper); otherwise a
    /// [`DuplicateAttribute`](crate::AlgebraError::DuplicateAttribute) error is
    /// returned and the caller should rename one side first.
    pub fn product(&self, other: &Relation) -> Result<Relation> {
        let schema = self.schema().concat(other.schema())?;
        let mut out = Relation::empty(schema);
        for t1 in self.tuples() {
            for t2 in other.tuples() {
                out.insert(t1.concat(t2))?;
            }
        }
        Ok(out)
    }

    /// The one-tuple relation `(t)` used by Definition 4 and several proofs:
    /// a relation over `names` containing exactly `tuple`.
    pub fn singleton(names: &[&str], tuple: Tuple) -> Result<Relation> {
        let schema = crate::Schema::new(names.iter().copied())?;
        Relation::new(schema, [tuple])
    }
}

#[cfg(test)]
mod tests {
    use crate::{relation, Relation, Schema, Tuple};

    #[test]
    fn product_concatenates_tuples() {
        // Figure 7(d): r*1 × r**1.
        let r_star = relation! { ["a1"] => [1], [2] };
        let r_star_star = relation! { ["a2", "b"] => [1, 1], [1, 2] };
        let p = r_star.product(&r_star_star).unwrap();
        assert_eq!(p.schema().names(), vec!["a1", "a2", "b"]);
        assert_eq!(p.len(), 4);
        assert!(p.contains(&Tuple::new([2, 1, 2])));
    }

    #[test]
    fn product_cardinality_is_multiplicative() {
        let r1 = relation! { ["a"] => [1], [2], [3] };
        let r2 = relation! { ["b"] => [10], [20] };
        assert_eq!(r1.product(&r2).unwrap().len(), 6);
    }

    #[test]
    fn product_with_empty_relation_is_empty() {
        let r1 = relation! { ["a"] => [1] };
        let empty = Relation::empty(Schema::of(["b"]));
        assert!(r1.product(&empty).unwrap().is_empty());
        assert!(empty.product(&r1).unwrap().is_empty());
    }

    #[test]
    fn product_rejects_shared_attribute_names() {
        let r1 = relation! { ["a", "b"] => [1, 2] };
        let r2 = relation! { ["b"] => [3] };
        assert!(r1.product(&r2).is_err());
    }

    #[test]
    fn product_is_associative_up_to_layout() {
        let r1 = relation! { ["a"] => [1], [2] };
        let r2 = relation! { ["b"] => [10] };
        let r3 = relation! { ["c"] => [100], [200] };
        let left = r1.product(&r2).unwrap().product(&r3).unwrap();
        let right = r1.product(&r2.product(&r3).unwrap()).unwrap();
        assert_eq!(left, right);
    }

    #[test]
    fn singleton_builds_one_tuple_relation() {
        let s = Relation::singleton(&["c"], Tuple::new([2])).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.schema().names(), vec!["c"]);
    }
}
