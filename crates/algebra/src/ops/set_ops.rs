//! Set union, intersection and difference.
//!
//! Operands must be union-compatible (contain the same attribute names); the
//! right operand is conformed to the left operand's attribute order before the
//! tuple sets are combined, so `R(a, b) ∪ S(b, a)` is accepted.

use crate::{AlgebraError, Relation, Result};

impl Relation {
    fn check_compatible(&self, other: &Relation, operation: &'static str) -> Result<Relation> {
        if !self.schema().is_compatible_with(other.schema()) {
            return Err(AlgebraError::SchemaMismatch {
                left: self.schema().to_string(),
                right: other.schema().to_string(),
                operation,
            });
        }
        other.conform_to(self.schema())
    }

    /// Set union: `r1 ∪ r2 = {t | t ∈ r1 ∨ t ∈ r2}`.
    pub fn union(&self, other: &Relation) -> Result<Relation> {
        let other = self.check_compatible(other, "union")?;
        let mut out = self.clone();
        for t in other.tuples() {
            out.insert(t.clone())?;
        }
        Ok(out)
    }

    /// Set intersection: `r1 ∩ r2 = {t | t ∈ r1 ∧ t ∈ r2}`.
    pub fn intersect(&self, other: &Relation) -> Result<Relation> {
        let other = self.check_compatible(other, "intersection")?;
        let mut out = Relation::empty(self.schema().clone());
        for t in self.tuples() {
            if other.contains(t) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// Set difference: `r1 − r2 = {t | t ∈ r1 ∧ t ∉ r2}`.
    pub fn difference(&self, other: &Relation) -> Result<Relation> {
        let other = self.check_compatible(other, "difference")?;
        let mut out = Relation::empty(self.schema().clone());
        for t in self.tuples() {
            if !other.contains(t) {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// `true` when every tuple of `self` is contained in `other`
    /// (`self ⊆ other`). Both relations must be union-compatible.
    pub fn is_subset_of(&self, other: &Relation) -> Result<bool> {
        let other = self.check_compatible(other, "subset test")?;
        Ok(self.tuples().all(|t| other.contains(t)))
    }
}

#[cfg(test)]
mod tests {
    use crate::{relation, Relation, Schema, Tuple};

    #[test]
    fn union_removes_duplicates() {
        let r1 = relation! { ["b"] => [1], [3] };
        let r2 = relation! { ["b"] => [3], [4] };
        let u = r1.union(&r2).unwrap();
        assert_eq!(u, relation! { ["b"] => [1], [3], [4] });
    }

    #[test]
    fn union_conforms_attribute_order() {
        let r1 = relation! { ["a", "b"] => [1, 10] };
        let r2 = relation! { ["b", "a"] => [20, 2] };
        let u = r1.union(&r2).unwrap();
        assert_eq!(u.schema().names(), vec!["a", "b"]);
        assert!(u.contains(&Tuple::new([2, 20])));
    }

    #[test]
    fn incompatible_schemas_are_rejected() {
        let r1 = relation! { ["a"] => [1] };
        let r2 = relation! { ["b"] => [1] };
        assert!(r1.union(&r2).is_err());
        assert!(r1.intersect(&r2).is_err());
        assert!(r1.difference(&r2).is_err());
        assert!(r1.is_subset_of(&r2).is_err());
    }

    #[test]
    fn intersection_keeps_common_tuples() {
        let r1 = relation! { ["a"] => [1], [2], [3] };
        let r2 = relation! { ["a"] => [2], [3], [4] };
        assert_eq!(r1.intersect(&r2).unwrap(), relation! { ["a"] => [2], [3] });
    }

    #[test]
    fn difference_removes_right_tuples() {
        let r1 = relation! { ["a"] => [1], [2], [3] };
        let r2 = relation! { ["a"] => [2] };
        assert_eq!(r1.difference(&r2).unwrap(), relation! { ["a"] => [1], [3] });
    }

    #[test]
    fn difference_with_empty_right_is_identity() {
        let r1 = relation! { ["a"] => [1], [2] };
        let empty = Relation::empty(Schema::of(["a"]));
        assert_eq!(r1.difference(&empty).unwrap(), r1);
        assert_eq!(empty.difference(&r1).unwrap(), empty);
    }

    #[test]
    fn subset_test() {
        let r1 = relation! { ["b"] => [1], [3] };
        let r2 = relation! { ["b"] => [1], [2], [3] };
        assert!(r1.is_subset_of(&r2).unwrap());
        assert!(!r2.is_subset_of(&r1).unwrap());
        // ∅ ⊆ r for every r.
        let empty = Relation::empty(Schema::of(["b"]));
        assert!(empty.is_subset_of(&r1).unwrap());
    }

    #[test]
    fn set_identities_hold_on_examples() {
        // (r1 − r2) ∪ (r1 ∩ r2) = r1
        let r1 = relation! { ["a"] => [1], [2], [3], [4] };
        let r2 = relation! { ["a"] => [2], [4], [6] };
        let left = r1
            .difference(&r2)
            .unwrap()
            .union(&r1.intersect(&r2).unwrap())
            .unwrap();
        assert_eq!(left, r1);
    }
}
