//! The grouping operator `GγF` (grouping attributes `G`, aggregate list `F`).
//!
//! The paper uses grouping in two places: the counting-based division
//! definition (footnote 1), and the special-case Laws 11 and 12 where the
//! dividend is itself the output of an aggregation (`r1 = AγF(X)→B(r0)`).

use crate::{AlgebraError, Relation, Result, Schema, Tuple, Value};

/// An aggregate function applied to one attribute of each group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunction {
    /// Number of tuples in the group (the attribute still names what is being
    /// counted, e.g. `count(B) → c`).
    Count,
    /// Sum of an integer attribute.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

impl AggregateFunction {
    /// Evaluate the aggregate over the values of the aggregated attribute in
    /// one group.
    pub fn eval(&self, values: &[Value]) -> Result<Value> {
        match self {
            AggregateFunction::Count => Ok(Value::Int(values.len() as i64)),
            AggregateFunction::Sum => {
                let mut total = 0i64;
                for v in values {
                    total += v.as_int().ok_or_else(|| AlgebraError::InvalidAggregate {
                        reason: format!("SUM over non-integer value `{v}`"),
                    })?;
                }
                Ok(Value::Int(total))
            }
            AggregateFunction::Min => {
                values
                    .iter()
                    .min()
                    .cloned()
                    .ok_or_else(|| AlgebraError::InvalidAggregate {
                        reason: "MIN over an empty group".to_string(),
                    })
            }
            AggregateFunction::Max => {
                values
                    .iter()
                    .max()
                    .cloned()
                    .ok_or_else(|| AlgebraError::InvalidAggregate {
                        reason: "MAX over an empty group".to_string(),
                    })
            }
        }
    }

    /// Name used in plan displays (`count`, `sum`, …).
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunction::Count => "count",
            AggregateFunction::Sum => "sum",
            AggregateFunction::Min => "min",
            AggregateFunction::Max => "max",
        }
    }
}

/// One entry of the aggregate list `F`: `function(input) → output`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggregateCall {
    /// The aggregate function.
    pub function: AggregateFunction,
    /// Attribute the function is applied to.
    pub input: String,
    /// Name of the output attribute.
    pub output: String,
}

impl AggregateCall {
    /// Build `function(input) → output`.
    pub fn new(
        function: AggregateFunction,
        input: impl Into<String>,
        output: impl Into<String>,
    ) -> Self {
        AggregateCall {
            function,
            input: input.into(),
            output: output.into(),
        }
    }

    /// Shorthand for `count(input) → output`, the form used by the paper's
    /// Law 11/12 preconditions.
    pub fn count(input: impl Into<String>, output: impl Into<String>) -> Self {
        Self::new(AggregateFunction::Count, input, output)
    }

    /// Shorthand for `sum(input) → output`.
    pub fn sum(input: impl Into<String>, output: impl Into<String>) -> Self {
        Self::new(AggregateFunction::Sum, input, output)
    }
}

impl std::fmt::Display for AggregateCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}({}) -> {}",
            self.function.name(),
            self.input,
            self.output
        )
    }
}

impl Relation {
    /// The grouping operator `GγF(r)`.
    ///
    /// Groups the relation on the attributes `group_by` and evaluates every
    /// aggregate of `aggregates` per group. The output schema is the grouping
    /// attributes (in the given order) followed by the aggregate output names.
    /// Grouping an empty relation yields an empty relation; grouping with an
    /// empty `group_by` list produces a single group covering all tuples
    /// (only when the input is nonempty, matching SQL `GROUP BY ()` on sets).
    pub fn group_aggregate(
        &self,
        group_by: &[&str],
        aggregates: &[AggregateCall],
    ) -> Result<Relation> {
        let mut out_names: Vec<String> = group_by.iter().map(|s| s.to_string()).collect();
        for agg in aggregates {
            // Validate the input attribute exists even for COUNT.
            self.schema().require(&agg.input)?;
            out_names.push(agg.output.clone());
        }
        let out_schema = Schema::new(out_names)?;
        let mut out = Relation::empty(out_schema);

        if self.is_empty() {
            return Ok(out);
        }

        let groups = self.group_by(group_by)?;
        for (key, members) in groups {
            let mut values = key.values().to_vec();
            for agg in aggregates {
                let input_idx = self.schema().require(&agg.input)?;
                let inputs: Vec<Value> = members
                    .iter()
                    .map(|t| t.values()[input_idx].clone())
                    .collect();
                values.push(agg.function.eval(&inputs)?);
            }
            out.insert(Tuple::new(values))?;
        }
        Ok(out)
    }

    /// `γ_{count(attr)→out}(r)` without grouping attributes: a one-tuple
    /// relation holding the cardinality of `r` projected on nothing — i.e. the
    /// global count. Used by Law 11/12's case analysis
    /// (`σ_{c=0}(γ_{count(B)→c}(r2))`).
    pub fn global_count(&self, attr: &str, out: &str) -> Result<Relation> {
        self.schema().require(attr)?;
        let schema = Schema::new([out])?;
        Relation::new(schema, [Tuple::new([self.len() as i64])])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation;

    #[test]
    fn sum_grouping_matches_figure_10() {
        // Figure 10(b): r1 = aγsum(x)→b(r0).
        let r0 = relation! {
            ["a", "x"] =>
            [1, 1], [1, 2], [1, 3],
            [2, 1], [2, 3],
            [3, 1], [3, 3], [3, 4],
        };
        let r1 = r0
            .group_aggregate(&["a"], &[AggregateCall::sum("x", "b")])
            .unwrap();
        let expected = relation! { ["a", "b"] => [1, 6], [2, 4], [3, 8] };
        assert_eq!(r1, expected);
    }

    #[test]
    fn sum_grouping_matches_figure_11() {
        // Figure 11(b): r1 = bγsum(x)→a(r0).
        let r0 = relation! {
            ["x", "b"] =>
            [1, 1], [1, 2], [1, 3],
            [2, 1], [2, 3],
            [3, 1], [3, 3], [3, 4],
        };
        let r1 = r0
            .group_aggregate(&["b"], &[AggregateCall::sum("x", "a")])
            .unwrap();
        let expected = relation! { ["b", "a"] => [1, 6], [2, 1], [3, 6], [4, 3] };
        assert_eq!(r1, expected);
    }

    #[test]
    fn count_and_min_max() {
        let r = relation! {
            ["g", "v"] =>
            [1, 5], [1, 7], [2, 3],
        };
        let agg = r
            .group_aggregate(
                &["g"],
                &[
                    AggregateCall::count("v", "c"),
                    AggregateCall::new(AggregateFunction::Min, "v", "lo"),
                    AggregateCall::new(AggregateFunction::Max, "v", "hi"),
                ],
            )
            .unwrap();
        let expected = relation! {
            ["g", "c", "lo", "hi"] =>
            [1, 2, 5, 7],
            [2, 1, 3, 3],
        };
        assert_eq!(agg, expected);
    }

    #[test]
    fn grouping_empty_relation_is_empty() {
        let r = relation! { ["g", "v"] => };
        let agg = r
            .group_aggregate(&["g"], &[AggregateCall::count("v", "c")])
            .unwrap();
        assert!(agg.is_empty());
    }

    #[test]
    fn empty_group_by_produces_single_group() {
        let r = relation! { ["v"] => [1], [2], [3] };
        let agg = r
            .group_aggregate(&[], &[AggregateCall::count("v", "c")])
            .unwrap();
        assert_eq!(agg, relation! { ["c"] => [3] });
    }

    #[test]
    fn sum_over_strings_is_an_error() {
        let r = relation! { ["g", "v"] => [1, "x"] };
        assert!(r
            .group_aggregate(&["g"], &[AggregateCall::sum("v", "s")])
            .is_err());
    }

    #[test]
    fn unknown_aggregate_input_is_an_error() {
        let r = relation! { ["g"] => [1] };
        assert!(r
            .group_aggregate(&["g"], &[AggregateCall::count("zz", "c")])
            .is_err());
    }

    #[test]
    fn global_count_counts_tuples() {
        let r2 = relation! { ["b"] => [1], [3] };
        assert_eq!(
            r2.global_count("b", "c").unwrap(),
            relation! { ["c"] => [2] }
        );
        let empty = relation! { ["b"] => };
        assert_eq!(
            empty.global_count("b", "c").unwrap(),
            relation! { ["c"] => [0] }
        );
    }
}
