//! The division operators: small divide (`÷`) and great divide (`÷*`).
//!
//! Each operator is provided in two flavours:
//!
//! * a straightforward *reference* implementation used as the default
//!   ([`Relation::divide`], [`Relation::great_divide`]), based on grouping the
//!   dividend and testing set containment per group, and
//! * literal transcriptions of every published definition the paper cites —
//!   Codd (Definition 1), Healy (Definition 2) and Maier (Definition 3) for the
//!   small divide; set-containment division (Definition 4), Demolombe's
//!   generalized division (Definition 5) and Todd's great divide
//!   (Definition 6) for the great divide.
//!
//! Theorem 1 of the paper states that the three great-divide definitions are
//! equivalent; the property tests in `tests/theorems.rs` check exactly that on
//! randomly generated relations, and the unit tests below check it on the
//! paper's figures.
//!
//! ## Attribute-set conventions
//!
//! Following Section 2, the attribute sets are derived from the schemas:
//! for `r1 ÷ r2` the divisor attributes `B` are **all** attributes of `r2`
//! (which must all occur in `r1`), and the quotient attributes are
//! `A = R1 − B`. For `r1 ÷* r2` the shared attributes are
//! `B = R1 ∩ R2`, the quotient keeps `A = R1 − B` from the dividend and
//! `C = R2 − B` from the divisor. `A` and `B` must be nonempty; an empty `C`
//! makes the great divide degenerate to the small divide, exactly as Darwen and
//! Date observe.
//!
//! ## Empty divisors
//!
//! With an empty divisor, `r2 ⊆ i_{r1}(t)` holds vacuously for every dividend
//! tuple, so `r1 ÷ ∅ = π_A(r1)`; all three small-divide definitions agree on
//! this (for Maier's intersection over an empty index set we adopt this as the
//! convention). An empty great-divide divisor has no groups and therefore
//! yields an empty quotient.

use crate::{AlgebraError, Relation, Result, Schema, Tuple};
use std::collections::BTreeSet;

/// The attribute partition of a small division `r1 ÷ r2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DivisionAttributes {
    /// Quotient attributes `A` (dividend-only), in dividend order.
    pub quotient: Vec<String>,
    /// Shared attributes `B` (all divisor attributes), in divisor order.
    pub shared: Vec<String>,
}

/// The attribute partition of a great division `r1 ÷* r2`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GreatDivisionAttributes {
    /// Quotient attributes `A` from the dividend, in dividend order.
    pub quotient: Vec<String>,
    /// Shared attributes `B`, in divisor order.
    pub shared: Vec<String>,
    /// Divisor group attributes `C`, in divisor order.
    pub group: Vec<String>,
}

impl Relation {
    /// Determine the `A`/`B` attribute sets for `self ÷ divisor` and validate
    /// the schema preconditions of Section 2.1.
    pub fn division_attributes(&self, divisor: &Relation) -> Result<DivisionAttributes> {
        let shared: Vec<String> = divisor
            .schema()
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        if shared.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "the divisor must have at least one attribute (B nonempty)".to_string(),
            });
        }
        for b in &shared {
            if !self.schema().contains(b) {
                return Err(AlgebraError::InvalidDivision {
                    reason: format!(
                        "divisor attribute `{b}` does not occur in the dividend schema {}",
                        self.schema()
                    ),
                });
            }
        }
        let quotient = self.schema().difference_attributes(divisor.schema());
        if quotient.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason:
                    "the dividend must have at least one attribute not in the divisor (A nonempty)"
                        .to_string(),
            });
        }
        Ok(DivisionAttributes { quotient, shared })
    }

    /// Determine the `A`/`B`/`C` attribute sets for `self ÷* divisor` and
    /// validate the schema preconditions of Section 2.2.
    pub fn great_division_attributes(&self, divisor: &Relation) -> Result<GreatDivisionAttributes> {
        let shared = self.schema().common_attributes(divisor.schema());
        if shared.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "dividend and divisor must share at least one attribute (B nonempty)"
                    .to_string(),
            });
        }
        let quotient = self.schema().difference_attributes(divisor.schema());
        if quotient.is_empty() {
            return Err(AlgebraError::InvalidDivision {
                reason: "the dividend must have at least one attribute of its own (A nonempty)"
                    .to_string(),
            });
        }
        let group = divisor.schema().difference_attributes(self.schema());
        Ok(GreatDivisionAttributes {
            quotient,
            shared,
            group,
        })
    }

    // ------------------------------------------------------------------
    // Small divide
    // ------------------------------------------------------------------

    /// Small divide `self ÷ divisor` (reference implementation).
    ///
    /// Groups the dividend on `A` and keeps the groups whose `B`-projection is
    /// a superset of the divisor.
    ///
    /// ```
    /// use div_algebra::relation;
    /// let r1 = relation! { ["a", "b"] => [1, 1], [1, 4], [2, 1], [2, 3] };
    /// let r2 = relation! { ["b"] => [1], [3] };
    /// assert_eq!(r1.divide(&r2).unwrap(), relation! { ["a"] => [2] });
    /// ```
    pub fn divide(&self, divisor: &Relation) -> Result<Relation> {
        let attrs = self.division_attributes(divisor)?;
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let b_refs: Vec<&str> = attrs.shared.iter().map(String::as_str).collect();
        let a_idx = self.schema().projection_indices(&a_refs)?;
        let b_idx = self.schema().projection_indices(&b_refs)?;
        // The divisor's B-values in the dividend's B attribute order.
        let divisor_set: BTreeSet<Tuple> = divisor
            .conform_to(&Schema::new(b_refs.iter().copied())?)?
            .tuples()
            .cloned()
            .collect();

        let out_schema = self.schema().project(&a_refs)?;
        let mut out = Relation::empty(out_schema);
        for (key, members) in self.group_by_indices(&a_idx) {
            let b_values: BTreeSet<Tuple> = members.iter().map(|t| t.project(&b_idx)).collect();
            if divisor_set.is_subset(&b_values) {
                out.insert(key)?;
            }
        }
        Ok(out)
    }

    /// Small divide following Codd's tuple-calculus Definition 1:
    /// `{t | t = t1.A ∧ t1 ∈ r1 ∧ r2 ⊆ i_{r1}(t)}`.
    pub fn divide_codd(&self, divisor: &Relation) -> Result<Relation> {
        let attrs = self.division_attributes(divisor)?;
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let b_refs: Vec<&str> = attrs.shared.iter().map(String::as_str).collect();
        let a_idx = self.schema().projection_indices(&a_refs)?;
        let b_idx = self.schema().projection_indices(&b_refs)?;
        let divisor_set: BTreeSet<Tuple> = divisor
            .conform_to(&Schema::new(b_refs.iter().copied())?)?
            .tuples()
            .cloned()
            .collect();

        let out_schema = self.schema().project(&a_refs)?;
        let mut out = Relation::empty(out_schema);
        for t1 in self.tuples() {
            let key = t1.project(&a_idx);
            let image = self.image_set(&a_idx, &b_idx, &key);
            if divisor_set.is_subset(&image) {
                out.insert(key)?;
            }
        }
        Ok(out)
    }

    /// Small divide following Healy's algebraic Definition 2:
    /// `π_A(r1) − π_A((π_A(r1) × r2) − r1)`.
    pub fn divide_healy(&self, divisor: &Relation) -> Result<Relation> {
        let attrs = self.division_attributes(divisor)?;
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let candidates = self.project(&a_refs)?;
        // (π_A(r1) × r2) has schema A ∪ B; conform `self` to that layout for
        // the difference.
        let all_pairs = candidates.product(divisor)?;
        let missing = all_pairs.difference(&self.conform_to(all_pairs.schema())?)?;
        let disqualified = missing.project(&a_refs)?;
        candidates.difference(&disqualified)
    }

    /// Small divide following Maier's Definition 3:
    /// `⋂_{t ∈ r2} π_A(σ_{B=t}(r1))`.
    pub fn divide_maier(&self, divisor: &Relation) -> Result<Relation> {
        let attrs = self.division_attributes(divisor)?;
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let b_refs: Vec<&str> = attrs.shared.iter().map(String::as_str).collect();
        // Intersection over an empty divisor: by convention π_A(r1).
        let mut result: Option<Relation> = None;
        let divisor_conformed = divisor.conform_to(&Schema::new(b_refs.iter().copied())?)?;
        for t in divisor_conformed.tuples() {
            let selected = self.select_key(&b_refs, t)?;
            let projected = selected.project(&a_refs)?;
            result = Some(match result {
                None => projected,
                Some(acc) => acc.intersect(&projected)?,
            });
        }
        match result {
            Some(r) => Ok(r),
            None => self.project(&a_refs),
        }
    }

    // ------------------------------------------------------------------
    // Great divide
    // ------------------------------------------------------------------

    /// Great divide `self ÷* divisor` (reference implementation).
    ///
    /// Groups the divisor on `C` and, for every divisor group, keeps the
    /// dividend `A`-groups whose `B`-set contains the divisor group's `B`-set.
    /// When `C` is empty the operator degenerates to the small divide.
    ///
    /// ```
    /// use div_algebra::relation;
    /// let r1 = relation! { ["a", "b"] => [1, 1], [1, 4], [2, 1], [2, 2], [2, 3], [2, 4], [3, 1], [3, 3], [3, 4] };
    /// let r2 = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
    /// let r3 = relation! { ["a", "c"] => [2, 1], [2, 2], [3, 2] };
    /// assert_eq!(r1.great_divide(&r2).unwrap(), r3);
    /// ```
    pub fn great_divide(&self, divisor: &Relation) -> Result<Relation> {
        let attrs = self.great_division_attributes(divisor)?;
        if attrs.group.is_empty() {
            return self.divide(divisor);
        }
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let b_refs: Vec<&str> = attrs.shared.iter().map(String::as_str).collect();
        let c_refs: Vec<&str> = attrs.group.iter().map(String::as_str).collect();

        let a_idx = self.schema().projection_indices(&a_refs)?;
        let div_b_idx = self.schema().projection_indices(&b_refs)?;
        let dsr_b_idx = divisor.schema().projection_indices(&b_refs)?;
        let dsr_c_idx = divisor.schema().projection_indices(&c_refs)?;

        // Precompute each dividend group's B-set once.
        let dividend_groups: Vec<(Tuple, BTreeSet<Tuple>)> = self
            .group_by_indices(&a_idx)
            .into_iter()
            .map(|(k, members)| {
                let b_set = members.iter().map(|t| t.project(&div_b_idx)).collect();
                (k, b_set)
            })
            .collect();

        let mut out_names: Vec<&str> = a_refs.clone();
        out_names.extend(c_refs.iter().copied());
        let out_schema = Schema::new(out_names)?;
        let mut out = Relation::empty(out_schema);

        for (c_value, members) in divisor.group_by_indices(&dsr_c_idx) {
            let divisor_b: BTreeSet<Tuple> =
                members.iter().map(|t| t.project(&dsr_b_idx)).collect();
            for (a_value, b_set) in &dividend_groups {
                if divisor_b.is_subset(b_set) {
                    out.insert(a_value.concat(&c_value))?;
                }
            }
        }
        Ok(out)
    }

    /// Great divide via Definition 4 (set containment division):
    /// `⋃_{t ∈ π_C(r2)} (r1 ÷ π_B(σ_{C=t}(r2))) × (t)`.
    pub fn great_divide_set_containment(&self, divisor: &Relation) -> Result<Relation> {
        let attrs = self.great_division_attributes(divisor)?;
        if attrs.group.is_empty() {
            return self.divide(divisor);
        }
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let b_refs: Vec<&str> = attrs.shared.iter().map(String::as_str).collect();
        let c_refs: Vec<&str> = attrs.group.iter().map(String::as_str).collect();

        let mut out_names: Vec<&str> = a_refs.clone();
        out_names.extend(c_refs.iter().copied());
        let out_schema = Schema::new(out_names)?;
        let mut out = Relation::empty(out_schema.clone());

        let c_values = divisor.project(&c_refs)?;
        for t in c_values.tuples() {
            let group = divisor.select_key(&c_refs, t)?.project(&b_refs)?;
            let quotient = self.divide(&group)?;
            let tagged = quotient.product(&Relation::singleton(&c_refs, t.clone())?)?;
            out = out.union(&tagged.conform_to(&out_schema)?)?;
        }
        Ok(out)
    }

    /// Great divide via Demolombe's Definition 5 (generalized division):
    /// `(π_A(r1) × π_C(r2)) − π_{A∪C}((π_A(r1) × r2) − (r1 × π_C(r2)))`.
    pub fn great_divide_demolombe(&self, divisor: &Relation) -> Result<Relation> {
        let attrs = self.great_division_attributes(divisor)?;
        if attrs.group.is_empty() {
            return self.divide_healy(divisor);
        }
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let c_refs: Vec<&str> = attrs.group.iter().map(String::as_str).collect();
        let mut ac_refs: Vec<&str> = a_refs.clone();
        ac_refs.extend(c_refs.iter().copied());

        let candidates = self.project(&a_refs)?.product(&divisor.project(&c_refs)?)?;
        let left = self.project(&a_refs)?.product(divisor)?;
        let right = self.product(&divisor.project(&c_refs)?)?;
        let missing = left.difference(&right.conform_to(left.schema())?)?;
        let disqualified = missing.project(&ac_refs)?;
        candidates.difference(&disqualified)
    }

    /// Great divide via Todd's Definition 6:
    /// `(π_A(r1) × π_C(r2)) − π_{A∪C}((π_A(r1) × r2) − (r1 ⋈ r2))`.
    pub fn great_divide_todd(&self, divisor: &Relation) -> Result<Relation> {
        let attrs = self.great_division_attributes(divisor)?;
        if attrs.group.is_empty() {
            return self.divide_healy(divisor);
        }
        let a_refs: Vec<&str> = attrs.quotient.iter().map(String::as_str).collect();
        let c_refs: Vec<&str> = attrs.group.iter().map(String::as_str).collect();
        let mut ac_refs: Vec<&str> = a_refs.clone();
        ac_refs.extend(c_refs.iter().copied());

        let candidates = self.project(&a_refs)?.product(&divisor.project(&c_refs)?)?;
        let left = self.project(&a_refs)?.product(divisor)?;
        let joined = self.natural_join(divisor)?;
        let missing = left.difference(&joined.conform_to(left.schema())?)?;
        let disqualified = missing.project(&ac_refs)?;
        candidates.difference(&disqualified)
    }
}

#[cfg(test)]
mod tests {
    use crate::{relation, Relation, Schema};

    /// Figure 1 / Figure 2 dividend.
    fn figure_dividend() -> Relation {
        relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
        }
    }

    #[test]
    fn figure_1_small_divide() {
        let r1 = figure_dividend();
        let r2 = relation! { ["b"] => [1], [3] };
        let r3 = relation! { ["a"] => [2], [3] };
        assert_eq!(r1.divide(&r2).unwrap(), r3);
    }

    #[test]
    fn all_small_divide_definitions_agree_on_figure_1() {
        let r1 = figure_dividend();
        let r2 = relation! { ["b"] => [1], [3] };
        let expected = r1.divide(&r2).unwrap();
        assert_eq!(r1.divide_codd(&r2).unwrap(), expected);
        assert_eq!(r1.divide_healy(&r2).unwrap(), expected);
        assert_eq!(r1.divide_maier(&r2).unwrap(), expected);
    }

    #[test]
    fn empty_divisor_yields_all_candidates() {
        let r1 = figure_dividend();
        let empty = Relation::empty(Schema::of(["b"]));
        let all_a = relation! { ["a"] => [1], [2], [3] };
        assert_eq!(r1.divide(&empty).unwrap(), all_a);
        assert_eq!(r1.divide_codd(&empty).unwrap(), all_a);
        assert_eq!(r1.divide_healy(&empty).unwrap(), all_a);
        assert_eq!(r1.divide_maier(&empty).unwrap(), all_a);
    }

    #[test]
    fn empty_dividend_yields_empty_quotient() {
        let r1 = relation! { ["a", "b"] => };
        let r2 = relation! { ["b"] => [1] };
        assert!(r1.divide(&r2).unwrap().is_empty());
        assert!(r1.divide_healy(&r2).unwrap().is_empty());
    }

    #[test]
    fn divisor_larger_than_any_group_yields_empty_quotient() {
        let r1 = relation! { ["a", "b"] => [1, 1], [2, 2] };
        let r2 = relation! { ["b"] => [1], [2] };
        assert!(r1.divide(&r2).unwrap().is_empty());
    }

    #[test]
    fn division_schema_preconditions_are_checked() {
        let r1 = relation! { ["a", "b"] => [1, 1] };
        // Divisor attribute not present in dividend.
        let bad = relation! { ["z"] => [1] };
        assert!(r1.divide(&bad).is_err());
        // Quotient attribute set would be empty.
        let same = relation! { ["a", "b"] => [1, 1] };
        assert!(r1.divide(&same).is_err());
    }

    #[test]
    fn divisor_attribute_order_does_not_matter() {
        let r1 = relation! { ["a", "b", "c"] => [1, 1, 10], [1, 2, 20], [2, 1, 10] };
        let r2 = relation! { ["b", "c"] => [1, 10], [2, 20] };
        let r2_swapped = relation! { ["c", "b"] => [10, 1], [20, 2] };
        assert_eq!(r1.divide(&r2).unwrap(), r1.divide(&r2_swapped).unwrap());
        assert_eq!(r1.divide(&r2).unwrap(), relation! { ["a"] => [1] });
    }

    #[test]
    fn figure_2_great_divide() {
        let r1 = figure_dividend();
        let r2 = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
        let r3 = relation! { ["a", "c"] => [2, 1], [2, 2], [3, 2] };
        assert_eq!(r1.great_divide(&r2).unwrap(), r3);
    }

    #[test]
    fn all_great_divide_definitions_agree_on_figure_2() {
        let r1 = figure_dividend();
        let r2 = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
        let expected = r1.great_divide(&r2).unwrap();
        assert_eq!(r1.great_divide_set_containment(&r2).unwrap(), expected);
        assert_eq!(r1.great_divide_demolombe(&r2).unwrap(), expected);
        assert_eq!(r1.great_divide_todd(&r2).unwrap(), expected);
    }

    #[test]
    fn great_divide_degenerates_to_small_divide_without_group_attributes() {
        let r1 = figure_dividend();
        let r2 = relation! { ["b"] => [1], [3] };
        assert_eq!(r1.great_divide(&r2).unwrap(), r1.divide(&r2).unwrap());
        assert_eq!(
            r1.great_divide_set_containment(&r2).unwrap(),
            r1.divide(&r2).unwrap()
        );
    }

    #[test]
    fn great_divide_empty_divisor_is_empty() {
        let r1 = figure_dividend();
        let empty = Relation::empty(Schema::of(["b", "c"]));
        assert!(r1.great_divide(&empty).unwrap().is_empty());
        assert!(r1.great_divide_set_containment(&empty).unwrap().is_empty());
        assert!(r1.great_divide_demolombe(&empty).unwrap().is_empty());
        assert!(r1.great_divide_todd(&empty).unwrap().is_empty());
    }

    #[test]
    fn great_divide_requires_shared_attributes() {
        let r1 = relation! { ["a", "b"] => [1, 1] };
        let r2 = relation! { ["x", "y"] => [1, 1] };
        assert!(r1.great_divide(&r2).is_err());
    }

    #[test]
    fn great_divide_multi_attribute_b_and_c() {
        // Two-attribute B = {b1, b2}, two-attribute C = {c1, c2}.
        let r1 = relation! {
            ["a", "b1", "b2"] =>
            [1, 1, 10], [1, 2, 20],
            [2, 1, 10],
        };
        let r2 = relation! {
            ["b1", "b2", "c1", "c2"] =>
            [1, 10, 7, 70], [2, 20, 7, 70],
            [1, 10, 8, 80],
        };
        let out = r1.great_divide(&r2).unwrap();
        let expected = relation! {
            ["a", "c1", "c2"] =>
            [1, 7, 70],
            [1, 8, 80],
            [2, 8, 80],
        };
        assert_eq!(out, expected);
        assert_eq!(r1.great_divide_demolombe(&r2).unwrap(), expected);
        assert_eq!(r1.great_divide_todd(&r2).unwrap(), expected);
        assert_eq!(r1.great_divide_set_containment(&r2).unwrap(), expected);
    }

    #[test]
    fn frequent_itemset_style_division() {
        // Section 3: transactions ÷* candidates.
        let transactions = relation! {
            ["tid", "item"] =>
            [1, 10], [1, 20], [1, 30],
            [2, 10], [2, 30],
            [3, 20],
        };
        let candidates = relation! {
            ["item", "itemset"] =>
            [10, 100], [30, 100],   // itemset {10, 30}
            [20, 200],              // itemset {20}
        };
        let quotient = transactions.great_divide(&candidates).unwrap();
        let expected = relation! {
            ["tid", "itemset"] =>
            [1, 100], [2, 100],
            [1, 200], [3, 200],
        };
        assert_eq!(quotient, expected);
    }
}
