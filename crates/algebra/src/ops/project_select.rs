//! Projection (`π`) and selection (`σ`).

use crate::{Predicate, Relation, Result, Tuple};
use std::collections::BTreeSet;

impl Relation {
    /// Projection `π_A(r) = {t.A | t ∈ r}` with set semantics (duplicates that
    /// arise from dropping attributes are eliminated).
    pub fn project(&self, names: &[&str]) -> Result<Relation> {
        let schema = self.schema().project(names)?;
        let indices = self.schema().projection_indices(names)?;
        let tuples: BTreeSet<Tuple> = self.tuples().map(|t| t.project(&indices)).collect();
        Relation::new(schema, tuples)
    }

    /// Projection using owned attribute names (convenience for callers that
    /// compute the attribute list, such as the evaluator).
    pub fn project_owned(&self, names: &[String]) -> Result<Relation> {
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        self.project(&refs)
    }

    /// Selection `σ_θ(r) = {t | t ∈ r ∧ θ(t)}`.
    pub fn select(&self, predicate: &Predicate) -> Result<Relation> {
        let mut out = Relation::empty(self.schema().clone());
        for t in self.tuples() {
            if predicate.eval(self.schema(), t)? {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }

    /// Selection on equality with a whole key tuple: `σ_{X = key}(r)` where `X`
    /// is the attribute list `names`. This is the `σ_{B=t}` / `σ_{C=t}` form
    /// used throughout the division definitions (Maier's Definition 3,
    /// set-containment division Definition 4).
    pub fn select_key(&self, names: &[&str], key: &Tuple) -> Result<Relation> {
        let indices = self.schema().projection_indices(names)?;
        let mut out = Relation::empty(self.schema().clone());
        for t in self.tuples() {
            if &t.project(&indices) == key {
                out.insert(t.clone())?;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use crate::{relation, CompareOp, Predicate, Tuple};

    #[test]
    fn projection_eliminates_duplicates() {
        let r1 = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4], [2, 1],
        };
        let p = r1.project(&["a"]).unwrap();
        assert_eq!(p, relation! { ["a"] => [1], [2] });
    }

    #[test]
    fn projection_preserves_requested_order() {
        let r = relation! { ["a", "b", "c"] => [1, 2, 3] };
        let p = r.project(&["c", "a"]).unwrap();
        assert_eq!(p.schema().names(), vec!["c", "a"]);
        assert!(p.contains(&Tuple::new([3, 1])));
    }

    #[test]
    fn projection_unknown_attribute_errors() {
        let r = relation! { ["a"] => [1] };
        assert!(r.project(&["z"]).is_err());
    }

    #[test]
    fn selection_filters_by_predicate() {
        // σ_{b<3}(r1) from Figure 6(b).
        let r1 = relation! {
            ["a", "b"] =>
            [1, 1], [1, 4],
            [2, 1], [2, 2], [2, 3], [2, 4],
            [3, 1], [3, 3], [3, 4],
            [4, 1], [4, 3],
        };
        let selected = r1
            .select(&Predicate::cmp_value("b", CompareOp::Lt, 3))
            .unwrap();
        let expected = relation! {
            ["a", "b"] =>
            [1, 1], [2, 1], [2, 2], [3, 1], [4, 1],
        };
        assert_eq!(selected, expected);
    }

    #[test]
    fn selection_true_and_false() {
        let r = relation! { ["a"] => [1], [2] };
        assert_eq!(r.select(&Predicate::True).unwrap(), r);
        assert!(r.select(&Predicate::False).unwrap().is_empty());
    }

    #[test]
    fn select_key_matches_whole_tuple() {
        let r2 = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
        let group = r2.select_key(&["c"], &Tuple::new([2])).unwrap();
        assert_eq!(group, relation! { ["b", "c"] => [1, 2], [3, 2] });
    }

    #[test]
    fn selection_composition_equals_conjunction() {
        let r = relation! { ["a", "b"] => [1, 1], [1, 2], [2, 1], [2, 2] };
        let p1 = Predicate::eq_value("a", 1);
        let p2 = Predicate::eq_value("b", 2);
        let sequential = r.select(&p1).unwrap().select(&p2).unwrap();
        let conjunct = r.select(&p1.clone().and(p2)).unwrap();
        assert_eq!(sequential, conjunct);
    }
}
