//! Error type shared by all algebra operations.

use std::fmt;

/// Errors raised by relational algebra operations.
///
/// All operators validate their schema preconditions (the paper states them as
/// side conditions on the relation schemas, e.g. "A and B are nonempty disjoint
/// sets of attributes") and report violations through this type rather than
/// panicking, so that the rewrite engine can probe applicability safely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlgebraError {
    /// Two relations that must be union-compatible (same schema) are not.
    SchemaMismatch {
        /// Schema of the left operand, rendered as `(a, b, c)`.
        left: String,
        /// Schema of the right operand.
        right: String,
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// An attribute referenced by an operation does not exist in the schema.
    UnknownAttribute {
        /// The attribute that was requested.
        attribute: String,
        /// The schema it was looked up in.
        schema: String,
    },
    /// An attribute name occurs twice where uniqueness is required
    /// (e.g. the concatenated schema of a Cartesian product).
    DuplicateAttribute {
        /// The offending attribute name.
        attribute: String,
        /// The operation that was attempted.
        operation: &'static str,
    },
    /// A tuple's arity does not match its relation's schema.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values in the offending tuple.
        actual: usize,
    },
    /// The schema precondition of a division operator is violated
    /// (e.g. the divisor attributes are not a proper subset of the dividend
    /// attributes, or the quotient attribute set `A` would be empty).
    InvalidDivision {
        /// Human-readable description of the violated precondition.
        reason: String,
    },
    /// An aggregate function was applied to values it cannot handle
    /// (e.g. `SUM` over strings).
    InvalidAggregate {
        /// Human-readable description.
        reason: String,
    },
    /// A predicate compared incompatible values or referenced a set-valued
    /// attribute where a scalar was required.
    TypeError {
        /// Human-readable description.
        reason: String,
    },
    /// A predicate containing a `$name` parameter placeholder was evaluated
    /// before the parameter was bound to a concrete value.
    UnboundParameter {
        /// Name of the unbound parameter (without the `$` sigil).
        parameter: String,
    },
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgebraError::SchemaMismatch {
                left,
                right,
                operation,
            } => write!(
                f,
                "schema mismatch in {operation}: left schema {left} is not compatible with right schema {right}"
            ),
            AlgebraError::UnknownAttribute { attribute, schema } => {
                write!(f, "unknown attribute `{attribute}` in schema {schema}")
            }
            AlgebraError::DuplicateAttribute {
                attribute,
                operation,
            } => write!(
                f,
                "duplicate attribute `{attribute}` produced by {operation}; rename one operand first"
            ),
            AlgebraError::ArityMismatch { expected, actual } => write!(
                f,
                "tuple arity {actual} does not match schema arity {expected}"
            ),
            AlgebraError::InvalidDivision { reason } => {
                write!(f, "invalid division: {reason}")
            }
            AlgebraError::InvalidAggregate { reason } => {
                write!(f, "invalid aggregate: {reason}")
            }
            AlgebraError::TypeError { reason } => write!(f, "type error: {reason}"),
            AlgebraError::UnboundParameter { parameter } => write!(
                f,
                "unbound parameter `${parameter}`: bind a value before evaluating the predicate"
            ),
        }
    }
}

impl std::error::Error for AlgebraError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_operation_and_schemas() {
        let err = AlgebraError::SchemaMismatch {
            left: "(a, b)".into(),
            right: "(b)".into(),
            operation: "union",
        };
        let msg = err.to_string();
        assert!(msg.contains("union"));
        assert!(msg.contains("(a, b)"));
        assert!(msg.contains("(b)"));
    }

    #[test]
    fn display_unknown_attribute() {
        let err = AlgebraError::UnknownAttribute {
            attribute: "color".into(),
            schema: "(s#, p#)".into(),
        };
        assert!(err.to_string().contains("color"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        let err = AlgebraError::ArityMismatch {
            expected: 3,
            actual: 2,
        };
        assert_error(&err);
    }
}
