//! Scalar and set-valued attribute values.

use std::collections::BTreeSet;
use std::fmt;

/// A single attribute value.
///
/// The paper's examples use small integers (`a = 1`, `b = 3`) and strings
/// (`color = 'blue'`). The set containment join of Section 2.2 additionally
/// requires *set-valued* attributes (`b1 = {1, 4}`), so a nested set variant is
/// provided as well.
///
/// `Value` has a total order across variants (by variant tag first, then by
/// payload) so relations can be kept in ordered sets, giving deterministic
/// iteration order and cheap duplicate elimination — both properties the
/// reference operator implementations rely on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// The SQL-style NULL used only to pad dangling tuples of the left outer
    /// join (Appendix A); no other operator produces or consumes it.
    Null,
    /// Boolean value.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(Box<str>),
    /// A set of values (used only by the set containment join, whose inputs
    /// are not in first normal form).
    Set(BTreeSet<Value>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Build a set value from anything iterable.
    pub fn set<I, V>(items: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Value::Set(items.into_iter().map(Into::into).collect())
    }

    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The set payload, if this is a [`Value::Set`].
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// `true` when both values are of the same variant, which is the weak
    /// notion of type compatibility used by predicate evaluation.
    pub fn same_kind(&self, other: &Value) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
    }

    /// A short name of the variant, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Set(_) => "set",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into_boxed_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_produce_expected_variants() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("blue"), Value::Str("blue".into()));
        assert_eq!(Value::from("blue".to_string()), Value::Str("blue".into()));
    }

    #[test]
    fn accessors_return_payloads() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        let s = Value::set([1, 2, 3]);
        assert_eq!(s.as_set().unwrap().len(), 3);
    }

    #[test]
    fn ordering_is_total_across_variants() {
        let mut values = vec![
            Value::str("z"),
            Value::Int(10),
            Value::Bool(false),
            Value::Int(-5),
            Value::str("a"),
        ];
        values.sort();
        // Bool < Int < Str by variant order, then payload order within.
        assert_eq!(
            values,
            vec![
                Value::Bool(false),
                Value::Int(-5),
                Value::Int(10),
                Value::str("a"),
                Value::str("z"),
            ]
        );
    }

    #[test]
    fn set_values_compare_by_contents() {
        let a = Value::set([1, 2]);
        let b = Value::set([2, 1]);
        assert_eq!(a, b);
        let c = Value::set([1, 2, 3]);
        assert_ne!(a, c);
    }

    #[test]
    fn display_formats_match_paper_style() {
        assert_eq!(Value::Int(4).to_string(), "4");
        assert_eq!(Value::str("blue").to_string(), "blue");
        assert_eq!(Value::set([1, 4]).to_string(), "{1, 4}");
    }

    #[test]
    fn same_kind_distinguishes_variants() {
        assert!(Value::Int(1).same_kind(&Value::Int(2)));
        assert!(!Value::Int(1).same_kind(&Value::str("1")));
        assert_eq!(Value::set([1]).kind_name(), "set");
    }
}
