//! One named logical-plan shape per rewrite law of the paper.
//!
//! The golden corpus pins coverage of all 17 laws (plus the two worked
//! examples that ship as extra rules) by replaying these shapes — the same
//! catalogs the rule unit tests use, so each shape is known to satisfy its
//! law's precondition — through the full differential matrix and asserting
//! that the heuristic rewrite engine actually fires the law. Golden files
//! reference a shape by key through their `plan <key>` directive.

use div_algebra::{relation, AggregateCall, CompareOp, Predicate, Relation};
use div_expr::{Catalog, LogicalPlan, PlanBuilder};
use div_rewrite::{RewriteContext, RuleSet};

/// A named law-trigger shape: catalog plus plan.
pub struct LawCase {
    /// Registry key (`law01` … `law17`, `example2`, `example4`).
    pub key: &'static str,
    /// The rewrite-rule name the shape must trigger.
    pub rule: &'static str,
    /// Paper law number (`None` for the worked examples).
    pub law_number: Option<u8>,
    /// Base tables the plan reads.
    pub tables: Vec<(&'static str, Relation)>,
    /// The plan, built over those tables.
    pub plan: LogicalPlan,
}

impl LawCase {
    /// A catalog holding this case's tables.
    pub fn catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        for (name, relation) in &self.tables {
            catalog.register(*name, relation.clone());
        }
        catalog
    }
}

/// Look a shape up by key.
pub fn find(key: &str) -> Option<LawCase> {
    law_cases().into_iter().find(|c| c.key == key)
}

/// Apply the case's named rule directly to its plan. The shape is built to
/// satisfy the rule's precondition, so this must return a rewritten plan.
/// (The full [`div_rewrite::RewriteEngine`] may fire a *different* rule first
/// on shapes matched by more than one law — Example 2's is also a Law 9
/// match — so law coverage is pinned by direct application, not engine
/// traces.)
pub fn apply_rule(case: &LawCase) -> Result<LogicalPlan, String> {
    let catalog = case.catalog();
    let ctx = RewriteContext::with_catalog(&catalog);
    let rules = RuleSet::default_rules();
    let rule = rules
        .find(case.rule)
        .ok_or_else(|| format!("{}: no rule named `{}`", case.key, case.rule))?;
    rule.apply(&case.plan, &ctx)
        .map_err(|e| format!("{}: `{}` errored: {e}", case.key, case.rule))?
        .ok_or_else(|| {
            format!(
                "{}: `{}` did not match its trigger shape",
                case.key, case.rule
            )
        })
}

/// Figure 2's dividend/divisor pair, shared by the great-divide laws.
fn great_tables() -> Vec<(&'static str, Relation)> {
    vec![
        (
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
            },
        ),
        (
            "r2",
            relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] },
        ),
    ]
}

/// The selection/join catalog (Figure 4's dividend with an extra tuple).
fn select_tables() -> Vec<(&'static str, Relation)> {
    vec![
        (
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 4],
                [2, 1], [2, 2], [2, 3], [2, 4],
                [3, 1], [3, 3], [3, 4],
                [4, 1], [4, 3],
            },
        ),
        ("r2", relation! { ["b"] => [1], [3], [4] }),
    ]
}

/// The set-operation catalog of the Law 5–7 unit tests.
fn set_ops_tables() -> Vec<(&'static str, Relation)> {
    vec![
        (
            "r1",
            relation! {
                ["a", "b"] =>
                [1, 1], [1, 3],
                [2, 1], [2, 2], [2, 3],
                [3, 1], [3, 3],
                [10, 1], [10, 3],
                [11, 1],
            },
        ),
        ("r2", relation! { ["b"] => [1], [3] }),
    ]
}

/// All law-trigger shapes, in law order.
pub fn law_cases() -> Vec<LawCase> {
    let mut cases = Vec::new();

    // Law 1: r1 ÷ (r'2 ∪ r''2) pipelines the divisor union (Figure 4).
    cases.push(LawCase {
        key: "law01",
        rule: "law-01-divisor-union-pipeline",
        law_number: Some(1),
        tables: vec![
            (
                "r1",
                relation! {
                    ["a", "b"] =>
                    [1, 1], [1, 4],
                    [2, 1], [2, 2], [2, 3], [2, 4],
                    [3, 1], [3, 3], [3, 4],
                    [4, 1], [4, 3],
                },
            ),
            ("r2_prime", relation! { ["b"] => [1], [3] }),
            ("r2_double", relation! { ["b"] => [3], [4] }),
        ],
        plan: PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2_prime").union(PlanBuilder::scan("r2_double")))
            .build(),
    });

    // Law 2: (r'1 ∪ r''1) ÷ r2 splits when the dividend partitions on A.
    cases.push(LawCase {
        key: "law02",
        rule: "law-02-dividend-union-split",
        law_number: Some(2),
        tables: vec![
            ("low", relation! { ["a", "b"] => [1, 1], [1, 3], [2, 1] }),
            ("high", relation! { ["a", "b"] => [3, 1], [3, 3] }),
            ("r2", relation! { ["b"] => [1], [3] }),
        ],
        plan: PlanBuilder::scan("low")
            .union(PlanBuilder::scan("high"))
            .divide(PlanBuilder::scan("r2"))
            .build(),
    });

    // Law 3: σ_{p(A)} above the division pushes into the dividend.
    cases.push(LawCase {
        key: "law03",
        rule: "law-03-selection-pushdown",
        law_number: Some(3),
        tables: select_tables(),
        plan: PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .select(Predicate::cmp_value("a", CompareOp::Gt, 2))
            .build(),
    });

    // Law 4: a divisor selection replicates into the dividend (Example 1).
    cases.push(LawCase {
        key: "law04",
        rule: "law-04-divisor-selection-replication",
        law_number: Some(4),
        tables: select_tables(),
        plan: PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2").select(Predicate::cmp_value("b", CompareOp::Lt, 3)))
            .build(),
    });

    // Law 5: an intersection dividend splits into intersected quotients.
    cases.push(LawCase {
        key: "law05",
        rule: "law-05-intersection-split",
        law_number: Some(5),
        tables: set_ops_tables(),
        plan: PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::LtEq, 5))
            .intersect(PlanBuilder::scan("r1").select(Predicate::cmp_value(
                "b",
                CompareOp::LtEq,
                3,
            )))
            .divide(PlanBuilder::scan("r2"))
            .build(),
    });

    // Law 6: a difference of nested selections splits syntactically.
    let p_prime = Predicate::cmp_value("a", CompareOp::Gt, 1);
    let p_double = p_prime
        .clone()
        .and(Predicate::cmp_value("a", CompareOp::Gt, 9));
    cases.push(LawCase {
        key: "law06",
        rule: "law-06-difference-split",
        law_number: Some(6),
        tables: set_ops_tables(),
        plan: PlanBuilder::scan("r1")
            .select(p_prime)
            .difference(PlanBuilder::scan("r1").select(p_double))
            .divide(PlanBuilder::scan("r2"))
            .build(),
    });

    // Law 7: disjoint quotient prefixes make the subtraction a no-op.
    cases.push(LawCase {
        key: "law07",
        rule: "law-07-disjoint-difference-elimination",
        law_number: Some(7),
        tables: set_ops_tables(),
        plan: PlanBuilder::scan("r1")
            .select(Predicate::cmp_value("a", CompareOp::LtEq, 10))
            .divide(PlanBuilder::scan("r2"))
            .difference(
                PlanBuilder::scan("r1")
                    .select(Predicate::cmp_value("a", CompareOp::Gt, 10))
                    .divide(PlanBuilder::scan("r2")),
            )
            .build(),
    });

    // Law 8: the division pushes into the product factor holding B (Fig 7).
    cases.push(LawCase {
        key: "law08",
        rule: "law-08-product-pushthrough",
        law_number: Some(8),
        tables: vec![
            ("r_star", relation! { ["a1"] => [1], [2] }),
            (
                "r_star_star",
                relation! {
                    ["a2", "b"] =>
                    [1, 1], [1, 2], [1, 3],
                    [2, 1], [2, 3],
                    [3, 2], [3, 3],
                },
            ),
            ("r2", relation! { ["b"] => [2], [3] }),
        ],
        plan: PlanBuilder::scan("r_star")
            .product(PlanBuilder::scan("r_star_star"))
            .divide(PlanBuilder::scan("r2"))
            .build(),
    });

    // Law 9: the product is eliminated entirely (Figure 8).
    cases.push(LawCase {
        key: "law09",
        rule: "law-09-product-elimination",
        law_number: Some(9),
        tables: vec![
            (
                "r_star",
                relation! {
                    ["a", "b1"] =>
                    [1, 1], [1, 2], [1, 3],
                    [2, 2], [2, 3],
                    [3, 1], [3, 3], [3, 4],
                },
            ),
            ("r_star_star", relation! { ["b2"] => [1], [2] }),
            ("r2", relation! { ["b1", "b2"] => [1, 2], [3, 1], [3, 2] }),
        ],
        plan: PlanBuilder::scan("r_star")
            .product(PlanBuilder::scan("r_star_star"))
            .divide(PlanBuilder::scan("r2"))
            .build(),
    });

    // Law 10: (r1 ÷ r2) ⋉ r3 commutes to (r1 ⋉ r3) ÷ r2 (Example 3).
    cases.push(LawCase {
        key: "law10",
        rule: "law-10-semijoin-commute",
        law_number: Some(10),
        tables: {
            let mut tables = select_tables();
            tables[1] = ("r2", relation! { ["b"] => [1], [3] });
            tables.push(("r3", relation! { ["a"] => [3], [4], [99] }));
            tables
        },
        plan: PlanBuilder::scan("r1")
            .divide(PlanBuilder::scan("r2"))
            .semi_join(PlanBuilder::scan("r3"))
            .build(),
    });

    // Law 11: single-tuple quotient groups (γ dividend, Figure 10).
    cases.push(LawCase {
        key: "law11",
        rule: "law-11-singleton-quotient-groups",
        law_number: Some(11),
        tables: vec![
            (
                "r0",
                relation! {
                    ["a", "x"] =>
                    [1, 1], [1, 2], [1, 3],
                    [2, 1], [2, 3],
                    [3, 1], [3, 3], [3, 4],
                },
            ),
            ("r2", relation! { ["b"] => [4] }),
        ],
        plan: PlanBuilder::scan("r0")
            .group_aggregate(["a"], [AggregateCall::sum("x", "b")])
            .divide(PlanBuilder::scan("r2"))
            .build(),
    });

    // Law 12: single-tuple divisor groups with the divisor referencing the
    // dividend (γ dividend grouped on B, Figure 11).
    cases.push(LawCase {
        key: "law12",
        rule: "law-12-singleton-divisor-groups",
        law_number: Some(12),
        tables: vec![
            (
                "r0",
                relation! {
                    ["x", "b"] =>
                    [1, 1], [1, 2], [1, 3],
                    [2, 1], [2, 3],
                    [3, 1], [3, 3], [3, 4],
                },
            ),
            ("r2", relation! { ["b"] => [1], [3] }),
        ],
        plan: PlanBuilder::scan("r0")
            .group_aggregate(["b"], [AggregateCall::sum("x", "a")])
            .divide(PlanBuilder::scan("r2"))
            .build(),
    });

    // Law 13: a divisor union with disjoint groups splits the great divide.
    cases.push(LawCase {
        key: "law13",
        rule: "law-13-great-divisor-union-split",
        law_number: Some(13),
        tables: {
            let mut tables = great_tables();
            tables.push(("r2_c1", relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1] }));
            tables.push(("r2_c2", relation! { ["b", "c"] => [1, 2], [3, 2] }));
            tables
        },
        plan: PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2_c1").union(PlanBuilder::scan("r2_c2")))
            .build(),
    });

    // Law 14: σ on quotient attributes pushes into the dividend.
    cases.push(LawCase {
        key: "law14",
        rule: "law-14-great-selection-pushdown-quotient",
        law_number: Some(14),
        tables: great_tables(),
        plan: PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("a", 2))
            .build(),
    });

    // Law 15: σ on group attributes pushes into the divisor.
    cases.push(LawCase {
        key: "law15",
        rule: "law-15-great-selection-pushdown-group",
        law_number: Some(15),
        tables: great_tables(),
        plan: PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2"))
            .select(Predicate::eq_value("c", 2))
            .build(),
    });

    // Law 16: a divisor selection on B replicates into the dividend.
    cases.push(LawCase {
        key: "law16",
        rule: "law-16-great-divisor-selection-replication",
        law_number: Some(16),
        tables: great_tables(),
        plan: PlanBuilder::scan("r1")
            .great_divide(PlanBuilder::scan("r2").select(Predicate::eq_value("b", 1)))
            .build(),
    });

    // Law 17: the great divide pushes into the product factor (Example 4's
    // product form).
    cases.push(LawCase {
        key: "law17",
        rule: "law-17-great-product-pushthrough",
        law_number: Some(17),
        tables: {
            let mut tables = great_tables();
            tables.push(("factor", relation! { ["d"] => [10], [20] }));
            tables
        },
        plan: PlanBuilder::scan("factor")
            .product(PlanBuilder::scan("r1"))
            .great_divide(PlanBuilder::scan("r2"))
            .build(),
    });

    // Example 2: common product factor cancels on both sides.
    cases.push(LawCase {
        key: "example2",
        rule: "example-2-common-factor-elimination",
        law_number: None,
        tables: vec![
            ("r1", relation! { ["a", "b1"] => [1, 1], [1, 2], [2, 1] }),
            ("r2", relation! { ["b1"] => [1], [2] }),
            ("s", relation! { ["b2"] => [7], [8] }),
        ],
        plan: PlanBuilder::scan("r1")
            .product(PlanBuilder::scan("s"))
            .divide(PlanBuilder::scan("r2").product(PlanBuilder::scan("s")))
            .build(),
    });

    // Example 4: a selective join pushes inside the great divide.
    cases.push(LawCase {
        key: "example4",
        rule: "example-4-join-push-in",
        law_number: None,
        tables: {
            let mut tables = great_tables();
            tables.push(("outer", relation! { ["a1"] => [2], [99] }));
            tables
        },
        plan: PlanBuilder::scan("outer")
            .theta_join(
                PlanBuilder::scan("r1").great_divide(PlanBuilder::scan("r2")),
                Predicate::eq_attrs("a1", "a"),
            )
            .build(),
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;
    use div_rewrite::{RewriteContext, RewriteEngine};

    #[test]
    fn every_law_shape_fires_its_law_and_preserves_semantics() {
        for case in law_cases() {
            let catalog = case.catalog();
            let before = div_expr::evaluate(&case.plan, &catalog)
                .unwrap_or_else(|e| panic!("{}: original evaluation failed: {e}", case.key));

            // The named rule itself must match and preserve the result.
            let direct = apply_rule(&case).unwrap_or_else(|e| panic!("{e}"));
            let after_direct = div_expr::evaluate(&direct, &catalog)
                .unwrap_or_else(|e| panic!("{}: direct rewrite evaluation failed: {e}", case.key));
            assert_eq!(
                before, after_direct,
                "{}: `{}` changed the result",
                case.key, case.rule
            );

            // And the full engine (whatever rules it picks) must agree too.
            let ctx = RewriteContext::with_catalog(&catalog);
            let outcome = RewriteEngine::with_default_rules()
                .rewrite(&case.plan, &ctx)
                .unwrap_or_else(|e| panic!("{}: rewrite failed: {e}", case.key));
            assert!(
                !outcome.applied.is_empty(),
                "{}: the engine applied no rule at all",
                case.key
            );
            let after = div_expr::evaluate(&outcome.plan, &catalog)
                .unwrap_or_else(|e| panic!("{}: rewritten evaluation failed: {e}", case.key));
            assert_eq!(before, after, "{}: rewrite changed the result", case.key);
        }
    }

    #[test]
    fn registry_covers_all_seventeen_laws() {
        let cases = law_cases();
        for n in 1..=17u8 {
            assert!(
                cases.iter().any(|c| c.law_number == Some(n)),
                "law {n} has no registry shape"
            );
        }
        assert!(find("law01").is_some());
        assert!(find("example4").is_some());
        assert!(find("nope").is_none());
    }
}
