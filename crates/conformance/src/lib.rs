//! # div-conformance
//!
//! The correctness-tooling subsystem of the *division-laws* workspace: a
//! grammar-based SQL fuzzer, a differential oracle, and a SQLLogicTest-style
//! golden-file runner, all drawing catalogs from the same generators as the
//! integration tests and benches.
//!
//! * [`grammar`] — seed-deterministic generation of division-bearing cases:
//!   catalogs plus every equivalent *formulation* of the same quotient
//!   (`DIVIDE BY`, double `NOT EXISTS`, set-difference, anti-join,
//!   `γ`-count, `$param`ized variants).
//! * [`oracle`] — executes each formulation across {optimizer-on,
//!   optimizer-off} × {row, columnar, streaming} × parallelism {1, 4},
//!   asserting byte-identical relations and `ExecStats` / span-tree
//!   invariants.
//! * [`shrink`] — greedy case minimization once a mismatch is found.
//! * [`fuzzer`] — the seeded fuzz loop behind `tests/conformance.rs`, the
//!   `conformance_fuzz` binary and the CI smoke job; honors
//!   `CONFORMANCE_SEED`, `CONFORMANCE_CASES` and `CONFORMANCE_ARTIFACT`.
//! * [`golden`] — the `.slt`-style golden-file format under `tests/golden/`
//!   and its record/check runner (`CONFORMANCE_BLESS=1` re-records).
//! * [`laws`] — one named logical-plan shape per rewrite law of the paper,
//!   used by the golden corpus to pin coverage of all 17 laws.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzzer;
pub mod golden;
pub mod grammar;
pub mod laws;
pub mod oracle;
pub mod shrink;

pub use fuzzer::{FuzzConfig, FuzzReport};
pub use grammar::{CaseSpec, Formulation, QueryForm};
pub use oracle::{check_case, CaseReport, Mismatch};
