//! Re-record the golden corpus.
//!
//! ```text
//! cargo run -p div-conformance --bin conformance_bless -- [tests/golden]
//! ```
//!
//! Missing files are first materialized from the code-defined skeleton
//! ([`div_conformance::golden::default_corpus`]), then every `.slt` file in
//! the directory is executed with blessing on, rewriting its `expect`
//! blocks in canonical rendering. Check the diff before committing.

use div_conformance::golden::{default_corpus, golden_files, render_file, run_file};
use std::path::PathBuf;

fn main() {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("tests/golden"));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }

    let mut created = 0usize;
    for skeleton in default_corpus() {
        let path = dir.join(&skeleton.name);
        if !path.exists() {
            if let Err(e) = std::fs::write(&path, render_file(&skeleton)) {
                eprintln!("cannot write {}: {e}", path.display());
                std::process::exit(2);
            }
            created += 1;
            println!("created skeleton {}", path.display());
        }
    }

    std::env::set_var("CONFORMANCE_BLESS", "1");
    let mut cases = 0usize;
    let files = golden_files(&dir);
    if files.is_empty() {
        eprintln!("no .slt files under {}", dir.display());
        std::process::exit(2);
    }
    for path in files {
        match run_file(&path) {
            Ok(report) => {
                cases += report.cases;
                println!("blessed {} ({} cases)", path.display(), report.cases);
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    println!("blessed {cases} cases total ({created} skeletons created)");
}
