//! Standalone differential fuzz driver.
//!
//! ```text
//! conformance_fuzz [--cases N] [--seed S] [--artifact PATH]
//! ```
//!
//! Flags override the `CONFORMANCE_CASES` / `CONFORMANCE_SEED` /
//! `CONFORMANCE_ARTIFACT` environment variables, which override the
//! defaults (2,000 cases, seed `0xd171de`). Exits non-zero on the first
//! differential mismatch, after shrinking and printing the replay seed.

use div_conformance::fuzzer::{parse_seed, run, FuzzConfig};

fn main() {
    let mut config = FuzzConfig::from_env(2_000);
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--cases" => {
                let value = argv.next().unwrap_or_default();
                match value.trim().parse::<u64>() {
                    Ok(cases) => config.cases = cases,
                    Err(_) => return usage(&format!("bad --cases value: {value}")),
                }
            }
            "--seed" => {
                let value = argv.next().unwrap_or_default();
                match parse_seed(&value) {
                    Some(seed) => config.seed = seed,
                    None => return usage(&format!("bad --seed value: {value}")),
                }
            }
            "--artifact" => match argv.next() {
                Some(path) => config.artifact = Some(path.into()),
                None => return usage("--artifact needs a path"),
            },
            "--help" | "-h" => {
                println!("usage: conformance_fuzz [--cases N] [--seed S] [--artifact PATH]");
                return;
            }
            other => return usage(&format!("unknown flag: {other}")),
        }
    }

    eprintln!(
        "conformance fuzz: {} cases from seed {:#x}",
        config.cases, config.seed
    );
    match run(&config) {
        Ok(report) => {
            println!(
                "ok: {} cases, {} formulations, {} executions compared \
                 ({} great divides, {} empty divisors, {} parameterized)",
                report.cases,
                report.formulations,
                report.executions,
                report.great_divides,
                report.empty_divisors,
                report.parameterized
            );
        }
        Err(mismatch) => {
            eprintln!("FAIL: {mismatch}");
            std::process::exit(1);
        }
    }
}

fn usage(problem: &str) {
    eprintln!("conformance_fuzz: {problem}");
    eprintln!("usage: conformance_fuzz [--cases N] [--seed S] [--artifact PATH]");
    std::process::exit(2);
}
