//! The SQLLogicTest-style golden-file format and runner.
//!
//! Golden files live under `tests/golden/*.slt`. A file is a sequence of
//! blank-line-separated *case blocks*; a block is a run of line directives:
//!
//! ```text
//! case law04-divisor-selection        # begins a case; names must be unique
//! law 4                               # paper law(s) the case covers
//! table r1 a b                        # declare a base table (column names)
//! row r1 1|2                          # one tuple; values are |-separated
//! scenario rbac seed=7 entities=30 …  # or: catalog from a datagen scenario
//! plan law04                          # or: catalog + plan from the law registry
//! query SELECT * FROM r1 DIVIDE BY …  # SQL to run (rest of the line)
//! param p0 3                          # bind $p0 for parameterized queries
//! expect a b                          # expected result columns …
//! 1|1                                 # … followed by expected rows, in the
//! 2|3                                 # relation's deterministic sort order
//! ```
//!
//! Values render as `NULL`, `true`/`false`, decimal integers, or
//! double-quoted strings. Exactly one of `plan`, `query` or `scenario` (whose
//! `divide=small|great` key implies the query) drives the case.
//!
//! The runner executes each case across the differential matrix — streaming
//! engine with and without the optimizer, parallelism 1 and 4, plus the
//! materializing row and columnar backends — asserts every strategy agrees,
//! and compares the agreed result against the `expect` block. Running with
//! `CONFORMANCE_BLESS=1` re-records the `expect` blocks in place instead.

use crate::grammar::{sql_literal, CaseSpec};
use crate::laws;
use div_algebra::{Relation, Value};
use div_datagen::scenarios::{self, ScenarioConfig, ScenarioFamily};
use div_expr::Catalog;
use div_physical::{execute_with_config, plan_query, ExecutionBackend, PlannerConfig};
use div_rewrite::{RewriteContext, RewriteEngine};
use div_sql::{translate_query, Engine, Params};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Which division query a scenario case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioDivide {
    /// The small divide (`÷`): entities holding *all* items of the divisor.
    Small,
    /// The great divide (`÷*`): per-group containment.
    Great,
}

/// The expected result block of a case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expected {
    /// Result column names, in schema order.
    pub columns: Vec<String>,
    /// Result rows in the relation's deterministic (sorted) order.
    pub rows: Vec<Vec<Value>>,
}

impl Expected {
    /// Capture a relation as an expectation.
    pub fn from_relation(relation: &Relation) -> Expected {
        Expected {
            columns: relation
                .schema()
                .names()
                .iter()
                .map(|n| n.to_string())
                .collect(),
            rows: relation.tuples().map(|t| t.values().to_vec()).collect(),
        }
    }
}

/// A declared base table.
#[derive(Debug, Clone)]
pub struct GoldenTable {
    /// Table name in the catalog.
    pub name: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Tuples.
    pub rows: Vec<Vec<Value>>,
}

/// One golden case.
#[derive(Debug, Clone)]
pub struct GoldenCase {
    /// Unique (per corpus) case name.
    pub name: String,
    /// Paper laws the case covers (coverage bookkeeping only).
    pub laws: Vec<u8>,
    /// Inline base tables.
    pub tables: Vec<GoldenTable>,
    /// Scenario-generated catalog plus which division query to run.
    pub scenario: Option<(ScenarioConfig, ScenarioDivide)>,
    /// Law-registry key supplying both catalog and plan.
    pub plan_key: Option<String>,
    /// SQL to run against the catalog.
    pub query: Option<String>,
    /// `$name` parameter bindings.
    pub params: Vec<(String, Value)>,
    /// Expected result; `None` until recorded.
    pub expected: Option<Expected>,
}

impl GoldenCase {
    fn new(name: &str) -> GoldenCase {
        GoldenCase {
            name: name.to_string(),
            laws: Vec::new(),
            tables: Vec::new(),
            scenario: None,
            plan_key: None,
            query: None,
            params: Vec::new(),
            expected: None,
        }
    }
}

/// A corpus file: name plus its cases.
#[derive(Debug, Clone)]
pub struct GoldenFile {
    /// File name (relative to `tests/golden/`).
    pub name: String,
    /// Leading comment describing the file.
    pub comment: String,
    /// The cases, in file order.
    pub cases: Vec<GoldenCase>,
}

// ---------------------------------------------------------------------------
// Value syntax
// ---------------------------------------------------------------------------

/// Render a value in golden-file syntax.
pub fn fmt_value(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
        other => format!("{other:?}"),
    }
}

/// Parse a value in golden-file syntax.
pub fn parse_value(text: &str) -> Result<Value, String> {
    let text = text.trim();
    if text == "NULL" {
        return Ok(Value::Null);
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: {text}"))?;
        return Ok(Value::from(
            inner.replace("\\\"", "\"").replace("\\\\", "\\").as_str(),
        ));
    }
    text.parse::<i64>()
        .map(Value::from)
        .map_err(|_| format!("unparseable value: {text}"))
}

fn fmt_row(row: &[Value]) -> String {
    row.iter().map(fmt_value).collect::<Vec<_>>().join("|")
}

fn parse_row(line: &str) -> Result<Vec<Value>, String> {
    line.split('|').map(parse_value).collect()
}

// ---------------------------------------------------------------------------
// Parsing and rendering
// ---------------------------------------------------------------------------

/// Parse a golden file.
pub fn parse_file(name: &str, text: &str) -> Result<GoldenFile, String> {
    let mut file = GoldenFile {
        name: name.to_string(),
        comment: String::new(),
        cases: Vec::new(),
    };
    let mut current: Option<GoldenCase> = None;
    let mut in_expect = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let at = |msg: String| format!("{name}:{}: {msg}", idx + 1);
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if current.is_none() && file.cases.is_empty() {
                if !file.comment.is_empty() {
                    file.comment.push('\n');
                }
                file.comment.push_str(comment.trim());
            }
            continue;
        }
        let (keyword, rest) = match line.split_once(' ') {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        if keyword == "case" {
            if let Some(done) = current.take() {
                file.cases.push(done);
            }
            if rest.is_empty() {
                return Err(at("`case` needs a name".to_string()));
            }
            current = Some(GoldenCase::new(rest));
            in_expect = false;
            continue;
        }
        let case = current
            .as_mut()
            .ok_or_else(|| at(format!("directive outside a case: {line}")))?;
        if in_expect {
            // Everything after `expect` (until the next `case`) is a result row.
            let row = parse_row(line).map_err(&at)?;
            let expected = case.expected.as_mut().expect("in expect block");
            if row.len() != expected.columns.len() {
                return Err(at(format!(
                    "row arity {} != {} columns",
                    row.len(),
                    expected.columns.len()
                )));
            }
            expected.rows.push(row);
            continue;
        }
        match keyword {
            "law" => {
                let n: u8 = rest
                    .parse()
                    .map_err(|_| at(format!("bad law number: {rest}")))?;
                case.laws.push(n);
            }
            "table" => {
                let mut parts = rest.split_whitespace();
                let tname = parts
                    .next()
                    .ok_or_else(|| at("`table` needs a name".to_string()))?;
                let columns: Vec<String> = parts.map(|c| c.to_string()).collect();
                if columns.is_empty() {
                    return Err(at(format!("table {tname} has no columns")));
                }
                case.tables.push(GoldenTable {
                    name: tname.to_string(),
                    columns,
                    rows: Vec::new(),
                });
            }
            "row" => {
                let (tname, values) = rest
                    .split_once(' ')
                    .ok_or_else(|| at("`row` needs a table and values".to_string()))?;
                let table = case
                    .tables
                    .iter_mut()
                    .find(|t| t.name == tname)
                    .ok_or_else(|| at(format!("row for undeclared table {tname}")))?;
                let row = parse_row(values.trim()).map_err(&at)?;
                if row.len() != table.columns.len() {
                    return Err(at(format!(
                        "row arity {} != {} columns of {tname}",
                        row.len(),
                        table.columns.len()
                    )));
                }
                table.rows.push(row);
            }
            "scenario" => {
                case.scenario = Some(parse_scenario(rest).map_err(&at)?);
            }
            "plan" => {
                case.plan_key = Some(rest.to_string());
            }
            "query" => {
                case.query = Some(rest.to_string());
            }
            "param" => {
                let (pname, value) = rest
                    .split_once(' ')
                    .ok_or_else(|| at("`param` needs a name and a value".to_string()))?;
                case.params
                    .push((pname.to_string(), parse_value(value).map_err(&at)?));
            }
            "expect" => {
                case.expected = Some(Expected {
                    columns: rest.split_whitespace().map(|c| c.to_string()).collect(),
                    rows: Vec::new(),
                });
                in_expect = true;
            }
            other => return Err(at(format!("unknown directive: {other}"))),
        }
    }
    if let Some(done) = current.take() {
        file.cases.push(done);
    }
    Ok(file)
}

fn parse_scenario(rest: &str) -> Result<(ScenarioConfig, ScenarioDivide), String> {
    let mut parts = rest.split_whitespace();
    let family_name = parts.next().ok_or("`scenario` needs a family")?;
    let family = ScenarioFamily::parse(family_name)
        .ok_or_else(|| format!("unknown scenario family: {family_name}"))?;
    let mut config = ScenarioConfig {
        family,
        ..ScenarioConfig::default()
    };
    let mut divide = ScenarioDivide::Small;
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {part}"))?;
        let int = || {
            value
                .parse::<usize>()
                .map_err(|_| format!("bad {key}: {value}"))
        };
        let float = || {
            value
                .parse::<f64>()
                .map_err(|_| format!("bad {key}: {value}"))
        };
        match key {
            "seed" => config.seed = value.parse().map_err(|_| format!("bad seed: {value}"))?,
            "entities" => config.entities = int()?,
            "items" => config.items = int()?,
            "groups" => config.groups = int()?,
            "membership" => config.membership = float()?,
            "skew" => config.skew = float()?,
            "selectivity" => config.divisor_selectivity = float()?,
            "nulls" => config.null_density = float()?,
            "full" => config.full_entities = float()?,
            "divide" => {
                divide = match value {
                    "small" => ScenarioDivide::Small,
                    "great" => ScenarioDivide::Great,
                    other => return Err(format!("bad divide: {other}")),
                }
            }
            other => return Err(format!("unknown scenario key: {other}")),
        }
    }
    Ok((config, divide))
}

fn render_scenario(config: &ScenarioConfig, divide: ScenarioDivide) -> String {
    format!(
        "scenario {} seed={} entities={} items={} groups={} membership={:.2} \
         skew={:.2} selectivity={:.2} nulls={:.2} full={:.2} divide={}",
        config.family.name(),
        config.seed,
        config.entities,
        config.items,
        config.groups,
        config.membership,
        config.skew,
        config.divisor_selectivity,
        config.null_density,
        config.full_entities,
        match divide {
            ScenarioDivide::Small => "small",
            ScenarioDivide::Great => "great",
        }
    )
}

/// Render a golden file to its on-disk text.
pub fn render_file(file: &GoldenFile) -> String {
    let mut out = String::new();
    for line in file.comment.lines() {
        let _ = writeln!(out, "# {line}");
    }
    for case in &file.cases {
        let _ = writeln!(out);
        let _ = writeln!(out, "case {}", case.name);
        for law in &case.laws {
            let _ = writeln!(out, "law {law}");
        }
        for table in &case.tables {
            let _ = writeln!(out, "table {} {}", table.name, table.columns.join(" "));
            for row in &table.rows {
                let _ = writeln!(out, "row {} {}", table.name, fmt_row(row));
            }
        }
        if let Some((config, divide)) = &case.scenario {
            let _ = writeln!(out, "{}", render_scenario(config, *divide));
        }
        if let Some(key) = &case.plan_key {
            let _ = writeln!(out, "plan {key}");
        }
        if let Some(query) = &case.query {
            let _ = writeln!(out, "query {query}");
        }
        for (name, value) in &case.params {
            let _ = writeln!(out, "param {name} {}", fmt_value(value));
        }
        if let Some(expected) = &case.expected {
            let _ = writeln!(out, "expect {}", expected.columns.join(" "));
            for row in &expected.rows {
                let _ = writeln!(out, "{}", fmt_row(row));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

fn catalog_and_sql(case: &GoldenCase) -> Result<(Catalog, Option<String>), String> {
    if let Some(key) = &case.plan_key {
        let law = laws::find(key).ok_or_else(|| format!("unknown law key: {key}"))?;
        return Ok((law.catalog(), None));
    }
    if let Some((config, divide)) = &case.scenario {
        let data = scenarios::generate(config);
        let sql = match divide {
            ScenarioDivide::Small => data.small_divide_sql(),
            ScenarioDivide::Great => data.great_divide_sql(),
        };
        return Ok((data.catalog(), Some(sql)));
    }
    let mut catalog = Catalog::new();
    for table in &case.tables {
        let relation = Relation::from_rows(
            table.columns.iter().map(|c| c.as_str()),
            table.rows.iter().cloned(),
        )
        .map_err(|e| format!("{}: bad table {}: {e}", case.name, table.name))?;
        catalog.register(table.name.as_str(), relation);
    }
    let sql = case
        .query
        .clone()
        .ok_or_else(|| format!("{}: no plan, scenario or query", case.name))?;
    Ok((catalog, Some(sql)))
}

/// Run one case through the differential matrix; all strategies must agree.
/// Returns the agreed result relation.
pub fn run_case(case: &GoldenCase) -> Result<Relation, String> {
    let (catalog, sql) = catalog_and_sql(case)?;
    match sql {
        Some(sql) => run_sql_matrix(case, &catalog, &sql),
        None => run_plan_matrix(case, &catalog),
    }
}

fn run_plan_matrix(case: &GoldenCase, catalog: &Catalog) -> Result<Relation, String> {
    let key = case.plan_key.as_deref().expect("plan case");
    let law = laws::find(key).expect("checked in catalog_and_sql");
    let reference = div_expr::evaluate(&law.plan, catalog)
        .map_err(|e| format!("{}: evaluation failed: {e}", case.name))?;

    // The case's law must match its trigger shape and preserve the result.
    let direct = laws::apply_rule(&law)?;
    let after_direct = div_expr::evaluate(&direct, catalog)
        .map_err(|e| format!("{}: direct rewrite evaluation failed: {e}", case.name))?;
    if after_direct != reference {
        return Err(format!("{}: `{}` changed the result", case.name, law.rule));
    }

    // The full heuristic engine must also preserve the result, whichever
    // rules it picks on this shape.
    let ctx = RewriteContext::with_catalog(catalog);
    let outcome = RewriteEngine::with_default_rules()
        .rewrite(&law.plan, &ctx)
        .map_err(|e| format!("{}: rewrite failed: {e}", case.name))?;
    let rewritten = div_expr::evaluate(&outcome.plan, catalog)
        .map_err(|e| format!("{}: rewritten evaluation failed: {e}", case.name))?;
    if rewritten != reference {
        return Err(format!("{}: rewrite changed the result", case.name));
    }

    // Engine paths, optimizer on and off.
    for optimize in [true, false] {
        let mut builder = Engine::builder(catalog.clone());
        if !optimize {
            builder = builder.without_optimizer();
        }
        let engine = builder.build();
        let output = engine
            .execute_logical(&law.plan)
            .map_err(|e| format!("{}: engine (optimize={optimize}) failed: {e}", case.name))?;
        if output.relation != reference {
            return Err(format!(
                "{}: engine (optimize={optimize}) result diverged",
                case.name
            ));
        }
    }
    Ok(reference)
}

fn run_sql_matrix(case: &GoldenCase, catalog: &Catalog, sql: &str) -> Result<Relation, String> {
    let mut params = Params::new();
    for (name, value) in &case.params {
        params = params.bind(name.clone(), value.clone());
    }
    // For the materializing compatibility paths, substitute parameters as
    // literals (the compat entry points have no parameter surface).
    let mut literal_sql = sql.to_string();
    for (name, value) in &case.params {
        literal_sql = literal_sql.replace(&format!("${name}"), &sql_literal(value));
    }

    let mut reference: Option<Relation> = None;
    let mut check = |label: &str, relation: Relation| -> Result<(), String> {
        match &reference {
            None => {
                reference = Some(relation);
                Ok(())
            }
            Some(r) if *r == relation => Ok(()),
            Some(r) => Err(format!(
                "{}: strategy {label} diverged ({} vs {} rows)",
                case.name,
                relation.len(),
                r.len()
            )),
        }
    };

    // Streaming engine: optimizer {on, off} × parallelism {1, 4}.
    for (optimize, parallelism, batch) in [
        (true, 1, 1024),
        (true, 4, 3),
        (false, 1, 3),
        (false, 4, 1024),
    ] {
        let mut builder = Engine::builder(catalog.clone()).planner_config(
            PlannerConfig::default()
                .parallelism(parallelism)
                .batch_size(batch),
        );
        if !optimize {
            builder = builder.without_optimizer();
        }
        let engine = builder.build();
        let output = engine
            .query_collect_with_params(sql, &params)
            .map_err(|e| {
                format!(
                    "{}: stream opt={optimize} p={parallelism} failed: {e}",
                    case.name
                )
            })?;
        check(
            &format!("stream/opt={optimize}/p={parallelism}"),
            output.relation,
        )?;
    }

    // Materializing compatibility backends over the translated plan.
    let query = div_sql::parse_query(&literal_sql)
        .map_err(|e| format!("{}: parse failed: {e}", case.name))?;
    let logical = translate_query(&query, catalog)
        .map_err(|e| format!("{}: translation failed: {e}", case.name))?;
    for backend in ExecutionBackend::ALL {
        for parallelism in [1usize, 4] {
            let config = PlannerConfig::with_backend(backend).parallelism(parallelism);
            let physical = plan_query(&logical, &config)
                .map_err(|e| format!("{}: planning ({}) failed: {e}", case.name, backend.name()))?;
            let (relation, _stats) = execute_with_config(&physical, catalog, &config)
                .map_err(|e| format!("{}: {} failed: {e}", case.name, backend.name()))?;
            check(&format!("{}/p={parallelism}", backend.name()), relation)?;
        }
    }

    Ok(reference.expect("at least one strategy ran"))
}

// ---------------------------------------------------------------------------
// The file runner
// ---------------------------------------------------------------------------

/// Outcome of checking one golden file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Cases checked.
    pub cases: usize,
    /// Laws covered by the file's `law` annotations.
    pub laws: BTreeSet<u8>,
}

/// `true` when `CONFORMANCE_BLESS` requests re-recording.
pub fn blessing() -> bool {
    std::env::var("CONFORMANCE_BLESS").is_ok_and(|v| !v.trim().is_empty() && v != "0")
}

/// Check (or, under `CONFORMANCE_BLESS=1`, re-record) one golden file.
pub fn run_file(path: &Path) -> Result<FileReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("golden")
        .to_string();
    let mut file = parse_file(&name, &text)?;
    let bless = blessing();
    let mut report = FileReport::default();
    let mut seen = BTreeSet::new();
    for case in &mut file.cases {
        if !seen.insert(case.name.clone()) {
            return Err(format!("{name}: duplicate case name {}", case.name));
        }
        let actual = run_case(case)?;
        let actual = Expected::from_relation(&actual);
        if bless {
            case.expected = Some(actual);
        } else {
            match &case.expected {
                None => return Err(format!("{name}: case {} has no expect block", case.name)),
                Some(expected) if *expected != actual => {
                    return Err(format!(
                        "{name}: case {} mismatch\n  expected cols {:?} rows {:?}\n  \
                         actual   cols {:?} rows {:?}",
                        case.name,
                        expected.columns,
                        expected.rows.iter().map(|r| fmt_row(r)).collect::<Vec<_>>(),
                        actual.columns,
                        actual.rows.iter().map(|r| fmt_row(r)).collect::<Vec<_>>(),
                    ));
                }
                Some(_) => {}
            }
        }
        report.cases += 1;
        report.laws.extend(case.laws.iter().copied());
    }
    if bless {
        std::fs::write(path, render_file(&file)).map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(report)
}

/// All `.slt` files under a golden directory, sorted.
pub fn golden_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "slt"))
        .collect();
    files.sort();
    files
}

// ---------------------------------------------------------------------------
// The default corpus
// ---------------------------------------------------------------------------

/// The code-defined corpus skeleton (no `expect` blocks — those are recorded
/// by a bless run). `tests/golden/` holds the blessed rendering.
pub fn default_corpus() -> Vec<GoldenFile> {
    let mut corpus = Vec::new();
    corpus.push(laws_file());
    corpus.push(edge_cases_file());
    corpus.push(params_file());
    for family in ScenarioFamily::ALL {
        corpus.push(scenario_file(family));
    }
    corpus.push(fuzz_seeds_file());
    corpus
}

fn laws_file() -> GoldenFile {
    let mut cases = Vec::new();
    for law in laws::law_cases() {
        let mut case = GoldenCase::new(law.key);
        case.laws = law.law_number.into_iter().collect();
        case.plan_key = Some(law.key.to_string());
        cases.push(case);
    }
    GoldenFile {
        name: "laws.slt".to_string(),
        comment: "One case per rewrite law (plus the worked examples): the \
                  registry shape must fire its law under the heuristic engine \
                  and evaluate identically before and after."
            .to_string(),
        cases,
    }
}

fn table(name: &str, columns: &[&str], rows: &[&[i64]]) -> GoldenTable {
    GoldenTable {
        name: name.to_string(),
        columns: columns.iter().map(|c| c.to_string()).collect(),
        rows: rows
            .iter()
            .map(|r| r.iter().map(|&v| Value::from(v)).collect())
            .collect(),
    }
}

fn sql_case(name: &str, tables: Vec<GoldenTable>, query: &str) -> GoldenCase {
    let mut case = GoldenCase::new(name);
    case.tables = tables;
    case.query = Some(query.to_string());
    case
}

fn edge_cases_file() -> GoldenFile {
    let mut cases = Vec::new();
    let r = |rows: &[&[i64]]| table("r", &["a", "b"], rows);
    let s = |rows: &[&[i64]]| table("s", &["b"], rows);
    let small = "SELECT * FROM r DIVIDE BY s ON r.b = s.b";

    // Small divide with an empty divisor: every entity qualifies (π_A(r)).
    cases.push(sql_case(
        "empty-divisor-small",
        vec![r(&[&[1, 1], &[2, 1], &[2, 2]]), s(&[])],
        small,
    ));
    // Great divide with an empty divisor: empty quotient.
    {
        let mut case = sql_case(
            "empty-divisor-great",
            vec![
                table("r", &["a", "b"], &[&[1, 1], &[2, 2]]),
                table("s", &["b", "c"], &[]),
            ],
            "SELECT * FROM r DIVIDE BY s ON r.b = s.b",
        );
        case.laws.push(13);
        cases.push(case);
    }
    cases.push(sql_case(
        "empty-dividend",
        vec![r(&[]), s(&[&[1], &[2]])],
        small,
    ));
    cases.push(sql_case("empty-both", vec![r(&[]), s(&[])], small));
    cases.push(sql_case(
        "single-row-match",
        vec![r(&[&[7, 3]]), s(&[&[3]])],
        small,
    ));
    cases.push(sql_case(
        "single-row-miss",
        vec![r(&[&[7, 3]]), s(&[&[4]])],
        small,
    ));
    // All join keys NULL on the dividend side: no entity can cover a
    // non-NULL divisor.
    {
        let mut t = table("r", &["a", "b"], &[]);
        t.rows = vec![
            vec![Value::from(1), Value::Null],
            vec![Value::from(2), Value::Null],
        ];
        cases.push(sql_case("all-null-keys", vec![t, s(&[&[1]])], small));
    }
    // NULL keys on both sides: tuple equality treats NULL = NULL as a match.
    {
        let mut dividend = table("r", &["a", "b"], &[]);
        dividend.rows = vec![
            vec![Value::from(1), Value::Null],
            vec![Value::from(1), Value::from(3)],
            vec![Value::from(2), Value::from(3)],
        ];
        let mut divisor = table("s", &["b"], &[&[3]]);
        divisor.rows.push(vec![Value::Null]);
        cases.push(sql_case(
            "null-matches-null",
            vec![dividend, divisor],
            small,
        ));
    }
    // Duplicates collapse under set semantics; DISTINCT is a no-op on top.
    cases.push(sql_case(
        "distinct-idempotent",
        vec![r(&[&[1, 1], &[1, 2], &[2, 1], &[2, 2]]), s(&[&[1], &[2]])],
        "SELECT DISTINCT r.a FROM r DIVIDE BY s ON r.b = s.b",
    ));
    // Divisor strictly larger than any entity's item set.
    cases.push(sql_case(
        "divisor-superset",
        vec![r(&[&[1, 1], &[2, 2]]), s(&[&[1], &[2], &[3]])],
        small,
    ));
    // Every entity covers the divisor.
    cases.push(sql_case(
        "all-qualify",
        vec![r(&[&[1, 1], &[1, 2], &[2, 1], &[2, 2]]), s(&[&[1], &[2]])],
        small,
    ));
    // Quotient-side selection above the division (Law 3's SQL shape).
    {
        let mut case = sql_case(
            "selection-above",
            vec![
                r(&[&[1, 1], &[1, 2], &[2, 1], &[2, 2], &[3, 1]]),
                s(&[&[1], &[2]]),
            ],
            "SELECT * FROM r DIVIDE BY s ON r.b = s.b WHERE r.a >= 2",
        );
        case.laws.push(3);
        cases.push(case);
    }
    // Divisor-side selection (Law 4's SQL shape), via a derived table.
    {
        let mut case = sql_case(
            "selection-divisor",
            vec![r(&[&[1, 1], &[1, 2], &[2, 1]]), s(&[&[1], &[2], &[9]])],
            "SELECT * FROM r DIVIDE BY (SELECT * FROM s WHERE s.b <= 2) AS d ON r.b = d.b",
        );
        case.laws.push(4);
        cases.push(case);
    }
    // Great divide, single group, matching the small divide on that group.
    {
        let mut case = sql_case(
            "great-single-group",
            vec![
                table("r", &["a", "b"], &[&[1, 1], &[1, 2], &[2, 1]]),
                table("s", &["b", "c"], &[&[1, 5], &[2, 5]]),
            ],
            "SELECT * FROM r DIVIDE BY s ON r.b = s.b",
        );
        case.laws.push(14);
        cases.push(case);
    }
    // Double NOT EXISTS — the classic Query 3 formulation.
    {
        let case = sql_case(
            "not-exists-q3",
            vec![
                table(
                    "enrolled",
                    &["student", "course"],
                    &[&[1, 10], &[1, 11], &[2, 10], &[3, 10], &[3, 11]],
                ),
                table(
                    "required",
                    &["course", "program"],
                    &[&[10, 1], &[11, 1], &[10, 2]],
                ),
            ],
            "SELECT DISTINCT x1.student, y1.program FROM enrolled AS x1, required AS y1 \
             WHERE NOT EXISTS (SELECT * FROM required AS y2 WHERE y2.program = y1.program \
             AND NOT EXISTS (SELECT * FROM enrolled AS x2 WHERE x2.course = y2.course \
             AND x2.student = x1.student))",
        );
        cases.push(case);
    }
    GoldenFile {
        name: "edge_cases.slt".to_string(),
        comment: "Hand-written boundary cases: empty divisor/dividend, NULL \
                  join keys, single rows, duplicate collapsing, selections on \
                  either side, and the double-NOT-EXISTS formulation."
            .to_string(),
        cases,
    }
}

fn params_file() -> GoldenFile {
    let mut cases = Vec::new();
    let catalog = || {
        vec![
            table(
                "r",
                &["a", "b"],
                &[&[1, 1], &[1, 2], &[1, 3], &[2, 1], &[2, 2], &[3, 1]],
            ),
            table("s", &["b"], &[&[1], &[2], &[3]]),
        ]
    };
    let query = "SELECT * FROM r DIVIDE BY (SELECT * FROM s WHERE s.b <= $p0) AS d ON r.b = d.b";
    for (idx, bound) in [0i64, 1, 2, 3].into_iter().enumerate() {
        let mut case = sql_case(&format!("rebind-int-{idx}"), catalog(), query);
        case.params.push(("p0".to_string(), Value::from(bound)));
        cases.push(case);
    }
    // String-typed parameter against a string item column.
    let flags = || {
        let mut service = table("service_flag", &["service", "flag"], &[]);
        for (s, f) in [("api", 1), ("api", 2), ("web", 1), ("web", 3), ("cron", 2)] {
            service.rows.push(vec![Value::from(s), Value::from(f)]);
        }
        let mut wanted = table("wanted", &["service"], &[]);
        for s in ["api", "web"] {
            wanted.rows.push(vec![Value::from(s)]);
        }
        vec![service, wanted]
    };
    for (idx, flag) in [1i64, 3].into_iter().enumerate() {
        let mut case = sql_case(
            &format!("rebind-divisor-{idx}"),
            flags(),
            "SELECT * FROM service_flag DIVIDE BY \
             (SELECT * FROM wanted WHERE wanted.service != $svc) AS d \
             ON service_flag.service = d.service",
        );
        case.params.push((
            "svc".to_string(),
            Value::from(if flag == 1 { "cron" } else { "api" }),
        ));
        cases.push(case);
    }
    GoldenFile {
        name: "params.slt".to_string(),
        comment: "Parameterized divisor filters: the same prepared shape \
                  re-blessed under different bindings (rebinding within one \
                  prepared statement is covered by the fuzz oracle)."
            .to_string(),
        cases,
    }
}

fn scenario_file(family: ScenarioFamily) -> GoldenFile {
    let mut cases = Vec::new();
    let configs = [
        (7u64, 24usize, 6usize, 0.5f64, 0.0f64),
        (8, 30, 8, 0.7, 0.0),
        (9, 18, 5, 0.4, 0.2),
        (10, 36, 7, 0.6, 0.1),
    ];
    for (idx, (seed, entities, items, membership, nulls)) in configs.into_iter().enumerate() {
        for divide in [ScenarioDivide::Small, ScenarioDivide::Great] {
            let config = ScenarioConfig {
                family,
                entities,
                items,
                groups: 3,
                membership,
                skew: 0.8,
                divisor_selectivity: 0.5,
                null_density: nulls,
                full_entities: 0.15,
                seed,
            };
            let suffix = match divide {
                ScenarioDivide::Small => "small",
                ScenarioDivide::Great => "great",
            };
            let mut case = GoldenCase::new(&format!("{}-{idx}-{suffix}", family.name()));
            case.scenario = Some((config, divide));
            cases.push(case);
        }
    }
    GoldenFile {
        name: format!("scenarios_{}.slt", family.name()),
        comment: format!(
            "The `{}` workload family from div-datagen, small and great \
             divides over varying cardinality, membership and null density.",
            family.name()
        ),
        cases,
    }
}

fn fuzz_seeds_file() -> GoldenFile {
    let mut cases = Vec::new();
    let mut seed = 9000u64;
    while cases.len() < 45 {
        let spec = CaseSpec::generate(seed);
        seed += 1;
        let mut case = GoldenCase::new(&format!("seed-{:#x}", spec.seed));
        for t in [&spec.dividend, &spec.divisor] {
            case.tables.push(GoldenTable {
                name: t.name.clone(),
                columns: t.columns.iter().map(|c| c.name.clone()).collect(),
                rows: t.rows.clone(),
            });
        }
        case.query = Some(spec.divide_by_sql(false));
        cases.push(case);
    }
    GoldenFile {
        name: "fuzz_seeds.slt".to_string(),
        comment: "Pinned grammar-generated cases (seeds 0x2328…): the fuzzer's \
                  DIVIDE BY rendering frozen against regressions. Re-record \
                  with CONFORMANCE_BLESS=1."
            .to_string(),
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip() {
        for v in [
            Value::Null,
            Value::from(true),
            Value::from(-42i64),
            Value::from("x y \"q\""),
        ] {
            assert_eq!(parse_value(&fmt_value(&v)).unwrap(), v);
        }
    }

    #[test]
    fn files_round_trip_through_render_and_parse() {
        for file in default_corpus() {
            let text = render_file(&file);
            let parsed = parse_file(&file.name, &text).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(parsed.cases.len(), file.cases.len(), "{}", file.name);
            // Render → parse → render is a fixpoint.
            assert_eq!(render_file(&parsed), text, "{}", file.name);
        }
    }

    #[test]
    fn corpus_is_large_and_covers_every_law() {
        let corpus = default_corpus();
        let total: usize = corpus.iter().map(|f| f.cases.len()).sum();
        assert!(total >= 100, "corpus has only {total} cases");
        let laws: BTreeSet<u8> = corpus
            .iter()
            .flat_map(|f| f.cases.iter())
            .flat_map(|c| c.laws.iter().copied())
            .collect();
        for n in 1..=17u8 {
            assert!(laws.contains(&n), "law {n} uncovered by corpus annotations");
        }
    }

    #[test]
    fn a_recorded_case_checks_clean_and_detects_tampering() {
        let mut case = sql_case(
            "t",
            vec![
                table("r", &["a", "b"], &[&[1, 1], &[1, 2], &[2, 1]]),
                table("s", &["b"], &[&[1], &[2]]),
            ],
            "SELECT * FROM r DIVIDE BY s ON r.b = s.b",
        );
        let relation = run_case(&case).unwrap_or_else(|e| panic!("{e}"));
        let expected = Expected::from_relation(&relation);
        assert_eq!(expected.columns, vec!["a".to_string()]);
        assert_eq!(expected.rows, vec![vec![Value::from(1i64)]]);
        case.expected = Some(expected);
        // And a tampered expectation must not be equal.
        let mut tampered = case.expected.clone().unwrap();
        tampered.rows.push(vec![Value::from(9i64)]);
        assert_ne!(Some(tampered), case.expected);
    }
}
