//! The grammar-based case generator.
//!
//! A [`CaseSpec`] is one self-contained differential test case: a generated
//! catalog (dividend and divisor tables with controlled types, null density
//! and cardinality) plus a division task over it (quotient attributes `A`,
//! shared attributes `B`, optional group attributes `C`, optional dividend /
//! divisor filters, optional `$param`). From one spec the generator renders
//! every *formulation* of the same quotient the engine understands:
//!
//! | production            | surface | shape                                       |
//! |-----------------------|---------|---------------------------------------------|
//! | `divide-by`           | SQL     | `… DIVIDE BY … ON …` (filters as derived tables or outer `WHERE`) |
//! | `divide-by-params`    | SQL     | same, with the divisor filter as `$p0`      |
//! | `not-exists`          | SQL     | Q3's correlated double `NOT EXISTS`         |
//! | `native`              | plan    | `SmallDivide` / `GreatDivide` over `σ`      |
//! | `difference`          | plan    | `π_A(r) − π_A((π_A(r) × s) − r)`            |
//! | `anti-join`           | plan    | the same simulation via nested anti-semi-joins |
//! | `counting`            | plan    | `π_A(σ_{n=|s|}(γ_{A;count}(r ⋉ s)))`        |
//! | `counting-grouped`    | plan    | `γ`-count join formulation of the great divide |
//!
//! All formulations are semantically the same relation (possibly up to
//! column order), so the differential oracle can demand agreement across
//! them and across every execution strategy. Generation is fully
//! deterministic per seed.

use div_algebra::{AggregateCall, CompareOp, Predicate, Relation, Value};
use div_expr::{Catalog, LogicalPlan, PlanBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Value type of a generated column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    /// 64-bit integers from a small pool.
    Int,
    /// Short strings from a small pool (exercises dictionary columns).
    Str,
}

/// One generated column.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    /// Column name.
    pub name: String,
    /// Value type.
    pub ty: ColType,
    /// Whether generated rows may hold NULL in this column.
    pub nullable: bool,
}

/// One generated base table.
#[derive(Debug, Clone)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Columns, in schema order.
    pub columns: Vec<ColumnSpec>,
    /// Row data (duplicates collapse under set semantics).
    pub rows: Vec<Vec<Value>>,
}

impl TableSpec {
    /// Build the relation.
    pub fn relation(&self) -> Relation {
        Relation::from_rows(
            self.columns.iter().map(|c| c.name.as_str()),
            self.rows.clone(),
        )
        .expect("generated rows match the generated schema")
    }

    fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

/// A comparison filter `column op literal` on one table.
///
/// Filters only ever target non-nullable columns (comparing NULL against a
/// literal is a type error under this workspace's strict semantics), and the
/// operator set narrows to `=` / `<>` for string columns.
#[derive(Debug, Clone)]
pub struct FilterSpec {
    /// Filtered column.
    pub column: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Literal to compare against.
    pub value: Value,
    /// When set, SQL renderings emit `$name` instead of the literal and the
    /// oracle binds `value` through the parameter machinery.
    pub param: Option<String>,
}

impl FilterSpec {
    /// The filter as a reference-algebra predicate (literal substituted).
    pub fn predicate(&self) -> Predicate {
        Predicate::cmp_value(self.column.as_str(), self.op, self.value.clone())
    }

    fn sql(&self, qualifier: Option<&str>, with_param: bool) -> String {
        let column = match qualifier {
            Some(q) => format!("{q}.{}", self.column),
            None => self.column.clone(),
        };
        let rhs = match (&self.param, with_param) {
            (Some(name), true) => format!("${name}"),
            _ => sql_literal(&self.value),
        };
        format!("{column} {op} {rhs}", op = compare_op_sql(self.op))
    }

    /// `true` when `value op self.value` holds (used to pre-compute divisor
    /// cardinalities for the counting formulation).
    pub fn matches(&self, value: &Value) -> bool {
        self.op
            .eval(value, &self.value)
            .expect("filters only target non-nullable columns")
    }
}

/// Where the dividend filter appears in the `DIVIDE BY` SQL rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DividendFilterPlacement {
    /// Inside a derived dividend table: `(SELECT * FROM t WHERE …) AS d`.
    Derived,
    /// As the outer `WHERE` above the division (the filter column is always
    /// a quotient attribute, so this is Law 3 / Law 14 territory).
    Outer,
}

/// One generated differential case.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// The seed this case was generated from.
    pub seed: u64,
    /// Dividend table; schema is exactly `A ++ B`.
    pub dividend: TableSpec,
    /// Divisor table; schema is exactly `B ++ C`.
    pub divisor: TableSpec,
    /// Quotient attributes `A` (1–2 columns).
    pub quotient_cols: Vec<String>,
    /// Shared attributes `B` (1–2 columns).
    pub join_cols: Vec<String>,
    /// Group attributes `C`; empty means a small divide.
    pub group_cols: Vec<String>,
    /// Optional filter on a (non-nullable) quotient column of the dividend.
    pub dividend_filter: Option<FilterSpec>,
    /// Where the dividend filter renders in SQL.
    pub dividend_filter_placement: DividendFilterPlacement,
    /// Optional filter on a (non-nullable) divisor column.
    pub divisor_filter: Option<FilterSpec>,
    /// `SELECT *` instead of an explicit quotient column list.
    pub select_wildcard: bool,
    /// Emit `SELECT DISTINCT` (a no-op under set semantics).
    pub distinct: bool,
    /// Flip the orientation of the `ON` equalities (`v.b = d.b`).
    pub flip_on: bool,
    /// Use bare table names instead of `AS` aliases where legal.
    pub bare_names: bool,
}

/// One executable formulation of a case.
#[derive(Debug, Clone)]
pub struct Formulation {
    /// Stable production name (documented in `LAWS.md`).
    pub name: &'static str,
    /// The query, as SQL text or as a logical plan.
    pub form: QueryForm,
}

/// The surface a formulation executes through.
#[derive(Debug, Clone)]
pub enum QueryForm {
    /// SQL text plus the parameter bindings it needs (empty for most).
    Sql {
        /// The SQL text.
        sql: String,
        /// Name/value bindings for `$name` parameters in the text.
        params: Vec<(String, Value)>,
    },
    /// A logical plan executed through `Engine::execute_logical` and the
    /// materializing backends.
    Logical(LogicalPlan),
}

impl fmt::Display for CaseSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "seed: {:#x}", self.seed)?;
        for table in [&self.dividend, &self.divisor] {
            let cols: Vec<String> = table
                .columns
                .iter()
                .map(|c| {
                    format!(
                        "{}:{}{}",
                        c.name,
                        match c.ty {
                            ColType::Int => "int",
                            ColType::Str => "str",
                        },
                        if c.nullable { "?" } else { "" }
                    )
                })
                .collect();
            writeln!(
                f,
                "table {}({}) [{} rows]",
                table.name,
                cols.join(", "),
                table.rows.len()
            )?;
            for row in &table.rows {
                let cells: Vec<String> = row.iter().map(render_value).collect();
                writeln!(f, "  {}", cells.join("|"))?;
            }
        }
        writeln!(f, "sql: {}", self.divide_by_sql(false))
    }
}

const STR_POOL: [&str; 4] = ["x", "y", "z", "w"];
const INT_POOL: i64 = 5;

impl CaseSpec {
    /// Generate the case for `seed`. Deterministic: equal seeds yield equal
    /// specs byte for byte.
    pub fn generate(seed: u64) -> CaseSpec {
        let mut rng = StdRng::seed_from_u64(seed);

        // Force the exact Q3 shape (|A| = |B| = |C| = 1, no filters) often
        // enough that the double-NOT-EXISTS production gets real coverage.
        let force_q3 = rng.gen_bool(0.22);
        let a_n = if force_q3 {
            1
        } else {
            rng.gen_range(1..=2usize)
        };
        let b_n = if force_q3 {
            1
        } else {
            rng.gen_range(1..=2usize)
        };
        // Short-circuit keeps the RNG stream identical to the two-branch
        // form: a forced Q3 shape never draws the group-column coin.
        let c_n = usize::from(force_q3 || rng.gen_bool(0.4));

        let null_density = if rng.gen_bool(0.35) { 0.15 } else { 0.0 };
        let make_col = |prefix: &str, i: usize, nullable_ok: bool, rng: &mut StdRng| {
            let ty = if rng.gen_bool(0.5) {
                ColType::Int
            } else {
                ColType::Str
            };
            ColumnSpec {
                name: format!("{prefix}{i}"),
                ty,
                nullable: nullable_ok && null_density > 0.0 && rng.gen_bool(0.6),
            }
        };
        let a_cols: Vec<ColumnSpec> = (0..a_n)
            .map(|i| make_col("a", i, false, &mut rng))
            .collect();
        // NULLs live in the shared (join/divide key) columns, where the
        // engine's semantics (NULL matches NULL) are well defined.
        let b_cols: Vec<ColumnSpec> = (0..b_n).map(|i| make_col("b", i, true, &mut rng)).collect();
        let c_cols: Vec<ColumnSpec> = (0..c_n)
            .map(|i| make_col("c", i, false, &mut rng))
            .collect();

        let draw_value = |col: &ColumnSpec, rng: &mut StdRng| -> Value {
            if col.nullable && rng.gen_bool(null_density) {
                return Value::Null;
            }
            match col.ty {
                ColType::Int => Value::from(rng.gen_range(0..INT_POOL)),
                ColType::Str => Value::from(STR_POOL[rng.gen_range(0..STR_POOL.len())]),
            }
        };

        let dividend_cols: Vec<ColumnSpec> = a_cols.iter().chain(&b_cols).cloned().collect();
        let divisor_cols: Vec<ColumnSpec> = b_cols.iter().chain(&c_cols).cloned().collect();

        let dividend_rows_n = rng.gen_range(0..=28usize);
        let divisor_rows_n = rng.gen_range(0..=6usize);
        let dividend_rows: Vec<Vec<Value>> = (0..dividend_rows_n)
            .map(|_| {
                dividend_cols
                    .iter()
                    .map(|c| draw_value(c, &mut rng))
                    .collect()
            })
            .collect();
        let divisor_rows: Vec<Vec<Value>> = (0..divisor_rows_n)
            .map(|_| {
                divisor_cols
                    .iter()
                    .map(|c| draw_value(c, &mut rng))
                    .collect()
            })
            .collect();

        let make_filter = |candidates: Vec<&ColumnSpec>,
                           allow_param: bool,
                           rng: &mut StdRng|
         -> Option<FilterSpec> {
            let eligible: Vec<&ColumnSpec> =
                candidates.into_iter().filter(|c| !c.nullable).collect();
            if eligible.is_empty() {
                return None;
            }
            let col = eligible[rng.gen_range(0..eligible.len())];
            let (op, value) = match col.ty {
                ColType::Int => {
                    let ops = [
                        CompareOp::Eq,
                        CompareOp::NotEq,
                        CompareOp::Lt,
                        CompareOp::LtEq,
                        CompareOp::Gt,
                        CompareOp::GtEq,
                    ];
                    (
                        ops[rng.gen_range(0..ops.len())],
                        Value::from(rng.gen_range(0..INT_POOL)),
                    )
                }
                ColType::Str => {
                    let ops = [CompareOp::Eq, CompareOp::NotEq];
                    (
                        ops[rng.gen_range(0..ops.len())],
                        Value::from(STR_POOL[rng.gen_range(0..STR_POOL.len())]),
                    )
                }
            };
            let param = if allow_param && rng.gen_bool(0.4) {
                Some("p0".to_string())
            } else {
                None
            };
            Some(FilterSpec {
                column: col.name.clone(),
                op,
                value,
                param,
            })
        };

        let dividend_filter = if !force_q3 && rng.gen_bool(0.35) {
            make_filter(a_cols.iter().collect(), false, &mut rng)
        } else {
            None
        };
        let divisor_filter = if !force_q3 && rng.gen_bool(0.35) {
            make_filter(b_cols.iter().chain(&c_cols).collect(), true, &mut rng)
        } else {
            None
        };

        CaseSpec {
            seed,
            dividend: TableSpec {
                name: "t_div".to_string(),
                columns: dividend_cols,
                rows: dividend_rows,
            },
            divisor: TableSpec {
                name: "t_dvr".to_string(),
                columns: divisor_cols,
                rows: divisor_rows,
            },
            quotient_cols: a_cols.iter().map(|c| c.name.clone()).collect(),
            join_cols: b_cols.iter().map(|c| c.name.clone()).collect(),
            group_cols: c_cols.iter().map(|c| c.name.clone()).collect(),
            dividend_filter,
            dividend_filter_placement: if rng.gen_bool(0.5) {
                DividendFilterPlacement::Outer
            } else {
                DividendFilterPlacement::Derived
            },
            divisor_filter,
            select_wildcard: rng.gen_bool(0.35),
            distinct: rng.gen_bool(0.3),
            flip_on: rng.gen_bool(0.3),
            bare_names: rng.gen_bool(0.25),
        }
    }

    /// `true` when the case is a great divide (group attributes present).
    pub fn is_great(&self) -> bool {
        !self.group_cols.is_empty()
    }

    /// The catalog holding the two generated tables.
    pub fn catalog(&self) -> Catalog {
        let mut catalog = Catalog::new();
        catalog.register(self.dividend.name.as_str(), self.dividend.relation());
        catalog.register(self.divisor.name.as_str(), self.divisor.relation());
        catalog
    }

    /// Quotient attributes of the result: `A` for a small divide, `A ++ C`
    /// for a great divide.
    pub fn result_cols(&self) -> Vec<String> {
        self.quotient_cols
            .iter()
            .chain(&self.group_cols)
            .cloned()
            .collect()
    }

    fn dividend_binding(&self) -> &str {
        if self.bare_names
            && self.dividend_filter_effective_placement() != DividendFilterPlacement::Derived
        {
            &self.dividend.name
        } else {
            "d"
        }
    }

    fn divisor_binding(&self) -> &str {
        if self.bare_names && self.divisor_filter.is_none() {
            &self.divisor.name
        } else {
            "v"
        }
    }

    fn dividend_filter_effective_placement(&self) -> DividendFilterPlacement {
        if self.dividend_filter.is_none() {
            DividendFilterPlacement::Outer
        } else {
            self.dividend_filter_placement
        }
    }

    /// The `DIVIDE BY` SQL rendering. With `with_param` the divisor filter
    /// renders as `$p0`; otherwise the literal is substituted in place.
    pub fn divide_by_sql(&self, with_param: bool) -> String {
        let d = self.dividend_binding();
        let v = self.divisor_binding();

        let select_list = if self.select_wildcard {
            "*".to_string()
        } else {
            self.result_cols().join(", ")
        };
        let distinct = if self.distinct { "DISTINCT " } else { "" };

        let dividend_factor = match (&self.dividend_filter, self.dividend_filter_placement) {
            (Some(filter), DividendFilterPlacement::Derived) => format!(
                "(SELECT * FROM {} WHERE {}) AS {d}",
                self.dividend.name,
                filter.sql(None, false)
            ),
            _ if d == self.dividend.name => self.dividend.name.clone(),
            _ => format!("{} AS {d}", self.dividend.name),
        };
        let divisor_factor = match &self.divisor_filter {
            Some(filter) => format!(
                "(SELECT * FROM {} WHERE {}) AS {v}",
                self.divisor.name,
                filter.sql(None, with_param)
            ),
            None if v == self.divisor.name => self.divisor.name.clone(),
            None => format!("{} AS {v}", self.divisor.name),
        };

        let on: Vec<String> = self
            .join_cols
            .iter()
            .map(|b| {
                if self.flip_on {
                    format!("{v}.{b} = {d}.{b}")
                } else {
                    format!("{d}.{b} = {v}.{b}")
                }
            })
            .collect();

        let mut sql = format!(
            "SELECT {distinct}{select_list} FROM {dividend_factor} DIVIDE BY {divisor_factor} ON {}",
            on.join(" AND ")
        );
        if let (Some(filter), DividendFilterPlacement::Outer) =
            (&self.dividend_filter, self.dividend_filter_placement)
        {
            sql.push_str(&format!(" WHERE {}", filter.sql(None, false)));
        }
        sql
    }

    /// `true` when the case matches the exact correlated double-`NOT EXISTS`
    /// shape the lowering recognizes (Q3 of the paper).
    pub fn not_exists_eligible(&self) -> bool {
        self.quotient_cols.len() == 1
            && self.join_cols.len() == 1
            && self.group_cols.len() == 1
            && self.dividend_filter.is_none()
            && self.divisor_filter.is_none()
    }

    /// The double-`NOT EXISTS` SQL rendering (only when
    /// [`CaseSpec::not_exists_eligible`]).
    pub fn not_exists_sql(&self) -> Option<String> {
        if !self.not_exists_eligible() {
            return None;
        }
        let (a, b, c) = (
            &self.quotient_cols[0],
            &self.join_cols[0],
            &self.group_cols[0],
        );
        let (t1, t2) = (&self.dividend.name, &self.divisor.name);
        Some(format!(
            "SELECT DISTINCT x1.{a}, y1.{c} FROM {t1} AS x1, {t2} AS y1 \
             WHERE NOT EXISTS (SELECT * FROM {t2} AS y2 WHERE y2.{c} = y1.{c} \
             AND NOT EXISTS (SELECT * FROM {t1} AS x2 WHERE x2.{b} = y2.{b} \
             AND x2.{a} = x1.{a}))"
        ))
    }

    /// The filtered dividend as a plan builder.
    fn dividend_plan(&self) -> PlanBuilder {
        let mut plan = PlanBuilder::scan(self.dividend.name.as_str());
        if let Some(filter) = &self.dividend_filter {
            plan = plan.select(filter.predicate());
        }
        plan
    }

    /// The filtered divisor as a plan builder.
    fn divisor_plan(&self) -> PlanBuilder {
        let mut plan = PlanBuilder::scan(self.divisor.name.as_str());
        if let Some(filter) = &self.divisor_filter {
            plan = plan.select(filter.predicate());
        }
        plan
    }

    /// The native logical formulation: `σ` inputs into the genuine division
    /// operator.
    pub fn native_plan(&self) -> LogicalPlan {
        let dividend = self.dividend_plan();
        let divisor = self.divisor_plan();
        if self.is_great() {
            dividend.great_divide(divisor).build()
        } else {
            dividend.divide(divisor).build()
        }
    }

    /// Number of tuples in the (filtered) divisor — the `|s|` of the
    /// counting formulation, computed directly from the spec.
    pub fn divisor_count(&self) -> usize {
        self.divisor
            .relation()
            .tuples()
            .filter(|t| match &self.divisor_filter {
                Some(filter) => {
                    let idx = self
                        .divisor
                        .column_names()
                        .iter()
                        .position(|c| *c == filter.column)
                        .expect("filter column exists");
                    filter.matches(&t.values()[idx])
                }
                None => true,
            })
            .count()
    }

    /// The set-difference simulation of the small divide:
    /// `π_A(r) − π_A((π_A(r) × s) − π_{A∪B}(r))`.
    pub fn difference_plan(&self) -> Option<LogicalPlan> {
        if self.is_great() {
            return None;
        }
        let a = self.quotient_cols.clone();
        let ab: Vec<String> = a.iter().chain(&self.join_cols).cloned().collect();
        let r = self.dividend_plan();
        let s = self.divisor_plan();
        let entities = r.clone().project(a.clone());
        let all_pairs = entities.clone().product(s); // schema A ++ B
        let present = r.project(ab); // same order
        let missing = all_pairs.difference(present).project(a);
        Some(entities.difference(missing).build())
    }

    /// The same simulation expressed through nested anti-semi-joins.
    pub fn anti_join_plan(&self) -> Option<LogicalPlan> {
        if self.is_great() {
            return None;
        }
        let a = self.quotient_cols.clone();
        let r = self.dividend_plan();
        let s = self.divisor_plan();
        let entities = r.clone().project(a.clone());
        // Pairs (entity, required item) with no supporting dividend tuple…
        let missing = entities.clone().product(s).anti_semi_join(r).project(a);
        // …disqualify their entity.
        Some(entities.anti_semi_join(missing).build())
    }

    /// The `GROUP BY` / `HAVING COUNT`-style formulation of the small
    /// divide: `π_A(σ_{n=|s|}(γ_{A;count}(r ⋉ s)))`, with the empty-divisor
    /// case special-cased to `π_A(r)` per the small-divide convention.
    pub fn counting_plan(&self) -> Option<LogicalPlan> {
        if self.is_great() {
            return None;
        }
        let a = self.quotient_cols.clone();
        let r = self.dividend_plan();
        let k = self.divisor_count();
        if k == 0 {
            return Some(r.project(a).build());
        }
        let s = self.divisor_plan();
        let count_col = &self.join_cols[0];
        Some(
            r.semi_join(s)
                .group_aggregate(a.clone(), [AggregateCall::count(count_col.as_str(), "__n")])
                .select(Predicate::eq_value("__n", Value::from(k as i64)))
                .project(a)
                .build(),
        )
    }

    /// The counting formulation of the great divide: per-(A, C) match
    /// counts joined against per-C divisor counts, kept where equal.
    pub fn counting_grouped_plan(&self) -> Option<LogicalPlan> {
        if !self.is_great() {
            return None;
        }
        let result = self.result_cols();
        let count_col = &self.join_cols[0];
        let r = self.dividend_plan();
        let s = self.divisor_plan();
        let matched = r
            .natural_join(s.clone()) // on B; schema A ∪ B ∪ C
            .group_aggregate(
                result.clone(),
                [AggregateCall::count(count_col.as_str(), "__n")],
            );
        let required = s.group_aggregate(
            self.group_cols.clone(),
            [AggregateCall::count(count_col.as_str(), "__m")],
        );
        Some(
            matched
                .natural_join(required) // on C
                .select(Predicate::cmp_attrs("__n", CompareOp::Eq, "__m"))
                .project(result)
                .build(),
        )
    }

    /// Every formulation of this case, SQL and logical.
    pub fn formulations(&self) -> Vec<Formulation> {
        let mut out = vec![Formulation {
            name: "divide-by",
            form: QueryForm::Sql {
                sql: self.divide_by_sql(false),
                params: Vec::new(),
            },
        }];
        if let Some(filter) = &self.divisor_filter {
            if let Some(param) = &filter.param {
                out.push(Formulation {
                    name: "divide-by-params",
                    form: QueryForm::Sql {
                        sql: self.divide_by_sql(true),
                        params: vec![(param.clone(), filter.value.clone())],
                    },
                });
            }
        }
        if let Some(sql) = self.not_exists_sql() {
            out.push(Formulation {
                name: "not-exists",
                form: QueryForm::Sql {
                    sql,
                    params: Vec::new(),
                },
            });
        }
        out.push(Formulation {
            name: "native",
            form: QueryForm::Logical(self.native_plan()),
        });
        for (name, plan) in [
            ("difference", self.difference_plan()),
            ("anti-join", self.anti_join_plan()),
            ("counting", self.counting_plan()),
            ("counting-grouped", self.counting_grouped_plan()),
        ] {
            if let Some(plan) = plan {
                out.push(Formulation {
                    name,
                    form: QueryForm::Logical(plan),
                });
            }
        }
        out
    }
}

/// Render a value as a SQL literal.
pub fn sql_literal(value: &Value) -> String {
    match value {
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("'{s}'"),
        other => panic!("no SQL literal rendering for {other:?}"),
    }
}

/// Render a value for golden files and failure reports (`NULL` for nulls,
/// bare text otherwise — the same stable form [`Value`]'s `Display` uses).
pub fn render_value(value: &Value) -> String {
    value.to_string()
}

fn compare_op_sql(op: CompareOp) -> &'static str {
    match op {
        CompareOp::Eq => "=",
        CompareOp::NotEq => "<>",
        CompareOp::Lt => "<",
        CompareOp::LtEq => "<=",
        CompareOp::Gt => ">",
        CompareOp::GtEq => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let a = CaseSpec::generate(seed);
            let b = CaseSpec::generate(seed);
            assert_eq!(format!("{a}"), format!("{b}"));
            assert_eq!(a.divide_by_sql(true), b.divide_by_sql(true));
        }
    }

    #[test]
    fn divide_by_sql_parses_and_translates() {
        for seed in 0..200u64 {
            let spec = CaseSpec::generate(seed);
            let catalog = spec.catalog();
            let sql = spec.divide_by_sql(false);
            let query = div_sql::parse_query(&sql)
                .unwrap_or_else(|e| panic!("seed {seed}: parse failed for `{sql}`: {e}"));
            div_sql::translate_query(&query, &catalog)
                .unwrap_or_else(|e| panic!("seed {seed}: translate failed for `{sql}`: {e}"));
        }
    }

    #[test]
    fn not_exists_sql_lowers_to_a_great_divide() {
        let mut seen = 0;
        for seed in 0..200u64 {
            let spec = CaseSpec::generate(seed);
            let Some(sql) = spec.not_exists_sql() else {
                continue;
            };
            seen += 1;
            let catalog = spec.catalog();
            let query = div_sql::parse_query(&sql).expect("parses");
            let plan = div_sql::translate_query(&query, &catalog)
                .unwrap_or_else(|e| panic!("seed {seed}: translate failed for `{sql}`: {e}"));
            assert!(
                plan.contains_division(),
                "seed {seed}: double NOT EXISTS did not lower to a division:\n{}",
                plan.explain()
            );
        }
        assert!(seen > 20, "Q3 shape under-covered: {seen}/200");
    }

    #[test]
    fn all_formulations_agree_with_the_reference() {
        for seed in 0..150u64 {
            let spec = CaseSpec::generate(seed);
            let catalog = spec.catalog();
            let reference = div_expr::evaluate(&spec.native_plan(), &catalog)
                .unwrap_or_else(|e| panic!("seed {seed}: native evaluation failed: {e}"));
            let canonical = canonicalize(&reference);
            for f in spec.formulations() {
                let plan = match &f.form {
                    QueryForm::Sql { sql, params } => {
                        // The reference evaluator has no parameter surface:
                        // substitute bindings as literals before translating.
                        let mut sql = sql.clone();
                        for (name, value) in params {
                            sql = sql.replace(&format!("${name}"), &sql_literal(value));
                        }
                        let query = div_sql::parse_query(&sql).expect("parses");
                        div_sql::translate_query(&query, &catalog).unwrap_or_else(|e| {
                            panic!(
                                "seed {seed} [{}]: translate failed for `{sql}`: {e}",
                                f.name
                            )
                        })
                    }
                    QueryForm::Logical(plan) => plan.clone(),
                };
                let result = div_expr::evaluate(&plan, &catalog)
                    .unwrap_or_else(|e| panic!("seed {seed} [{}]: evaluation failed: {e}", f.name));
                assert_eq!(
                    canonicalize(&result),
                    canonical,
                    "seed {seed}: formulation `{}` disagrees with the reference\ncase:\n{spec}",
                    f.name
                );
            }
        }
    }

    fn canonicalize(relation: &Relation) -> Relation {
        let mut names = relation.schema().names();
        names.sort_unstable();
        relation.project(&names).expect("projection to own columns")
    }
}
