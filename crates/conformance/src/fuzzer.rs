//! The seeded differential fuzz loop.
//!
//! Each iteration derives a per-case seed from the base seed, generates a
//! [`CaseSpec`], and runs it through the [`oracle`](crate::oracle). On the
//! first mismatch the failing case is [shrunk](crate::shrink), rendered to a
//! replay artifact (when `CONFORMANCE_ARTIFACT` points at a path) and
//! returned — with the seed printed so CI failures replay locally byte for
//! byte:
//!
//! ```text
//! CONFORMANCE_SEED=0x1234 CONFORMANCE_CASES=1 cargo test -q --test conformance fuzz
//! ```
//!
//! Environment knobs (all optional):
//!
//! | variable               | meaning                              | default |
//! |------------------------|--------------------------------------|---------|
//! | `CONFORMANCE_SEED`     | base seed (decimal or `0x…`)         | 0xd1v1  |
//! | `CONFORMANCE_CASES`    | number of generated cases            | caller's |
//! | `CONFORMANCE_ARTIFACT` | path for the failing-case repro file | none    |

use crate::grammar::CaseSpec;
use crate::oracle::{check_case, Mismatch};
use crate::shrink::shrink;
use std::path::PathBuf;

/// Default base seed ("divide" in hexspeak).
pub const DEFAULT_SEED: u64 = 0xd1_71de;

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; per-case seeds derive from it deterministically.
    pub seed: u64,
    /// Number of cases to generate and check.
    pub cases: u64,
    /// Where to write the failing-case replay artifact.
    pub artifact: Option<PathBuf>,
}

impl FuzzConfig {
    /// A config with the given case count and the default seed.
    pub fn new(cases: u64) -> Self {
        FuzzConfig {
            seed: DEFAULT_SEED,
            cases,
            artifact: None,
        }
    }

    /// Apply the `CONFORMANCE_SEED` / `CONFORMANCE_CASES` /
    /// `CONFORMANCE_ARTIFACT` environment overrides.
    pub fn from_env(default_cases: u64) -> Self {
        let mut config = FuzzConfig::new(default_cases);
        if let Some(seed) = std::env::var("CONFORMANCE_SEED")
            .ok()
            .and_then(|s| parse_seed(&s))
        {
            config.seed = seed;
        }
        if let Some(cases) = std::env::var("CONFORMANCE_CASES")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            config.cases = cases;
        }
        if let Ok(path) = std::env::var("CONFORMANCE_ARTIFACT") {
            if !path.trim().is_empty() {
                config.artifact = Some(PathBuf::from(path));
            }
        }
        config
    }
}

/// Parse a seed in decimal or `0x` hexadecimal.
pub fn parse_seed(text: &str) -> Option<u64> {
    let text = text.trim();
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse::<u64>().ok()
    }
}

/// Summary of a clean fuzz run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzReport {
    /// Cases generated and checked.
    pub cases: u64,
    /// Formulations checked across all cases.
    pub formulations: usize,
    /// Strategy executions compared across all cases.
    pub executions: usize,
    /// Cases that were great divides.
    pub great_divides: u64,
    /// Cases with an empty (possibly filtered-empty) divisor.
    pub empty_divisors: u64,
    /// Cases carrying a `$param`.
    pub parameterized: u64,
}

/// The per-case seed for case `index` of a run based on `base`. Case 0 uses
/// the base seed itself, so `CONFORMANCE_SEED=<failing seed>` with one case
/// replays a failure directly.
pub fn case_seed(base: u64, index: u64) -> u64 {
    if index == 0 {
        return base;
    }
    // SplitMix64 finalizer over the (base, index) pair.
    let mut z = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run the fuzz loop. On mismatch the failing case is shrunk first; the
/// returned [`Mismatch`] describes the *shrunk* case (same seed).
pub fn run(config: &FuzzConfig) -> Result<FuzzReport, Box<Mismatch>> {
    let mut report = FuzzReport::default();
    for index in 0..config.cases {
        let seed = case_seed(config.seed, index);
        let spec = CaseSpec::generate(seed);
        match check_case(&spec) {
            Ok(case_report) => {
                report.cases += 1;
                report.formulations += case_report.formulations;
                report.executions += case_report.executions;
                if spec.is_great() {
                    report.great_divides += 1;
                }
                if spec.divisor_count() == 0 {
                    report.empty_divisors += 1;
                }
                if spec
                    .divisor_filter
                    .as_ref()
                    .is_some_and(|f| f.param.is_some())
                {
                    report.parameterized += 1;
                }
            }
            Err(first) => {
                let shrunk = shrink(&spec, |candidate| check_case(candidate).is_err());
                let mismatch = match check_case(&shrunk) {
                    Err(m) => m,
                    Ok(_) => first, // shrink budget raced past the failure
                };
                eprintln!("{mismatch}");
                eprintln!(
                    "replay: CONFORMANCE_SEED={seed:#x} CONFORMANCE_CASES=1 \
                     cargo test -q --test conformance fuzz"
                );
                if let Some(path) = &config.artifact {
                    let body = format!(
                        "{mismatch}\nbase seed: {:#x}\ncase index: {index}\ncase seed: {seed:#x}\n",
                        config.seed
                    );
                    if let Err(e) = std::fs::write(path, body) {
                        eprintln!("could not write artifact {}: {e}", path.display());
                    } else {
                        eprintln!("failing-case artifact: {}", path.display());
                    }
                }
                return Err(mismatch);
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_zero_replays_the_base_seed() {
        assert_eq!(case_seed(0xabcd, 0), 0xabcd);
        assert_ne!(case_seed(0xabcd, 1), case_seed(0xabcd, 2));
        assert_ne!(case_seed(0xabcd, 1), case_seed(0xabce, 1));
    }

    #[test]
    fn parse_seed_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0x2a"), Some(42));
        assert_eq!(parse_seed(" 0X2A "), Some(42));
        assert_eq!(parse_seed("nope"), None);
    }

    #[test]
    fn a_short_run_is_clean_and_covers_the_space() {
        let report = run(&FuzzConfig::new(60)).unwrap_or_else(|m| panic!("{m}"));
        assert_eq!(report.cases, 60);
        assert!(
            report.great_divides > 5,
            "great divides: {}",
            report.great_divides
        );
        assert!(report.executions > 600);
    }
}
