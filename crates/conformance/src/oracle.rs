//! The differential oracle.
//!
//! For one [`CaseSpec`] the oracle computes the reference quotient with the
//! interpreting evaluator ([`div_expr::evaluate`]), then executes **every
//! formulation** of the case across the full execution matrix
//!
//! ```text
//! {optimizer-on, optimizer-off} × {streaming, row, columnar} × parallelism {1, 4}
//! ```
//!
//! (streaming through [`div_sql::Engine`], row/columnar through the
//! materializing compatibility layer with a manually-run optimizer), and
//! demands:
//!
//! * byte-identical relations from every strategy,
//! * cross-formulation agreement up to column order,
//! * `ExecStats` / span-tree consistency: pre-order ids, tree-shaped child
//!   links, `rows_out` monotonicity through Filter/Project/Rename/Intersect,
//!   probe aggregation, and resident-peak conventions (zero on the
//!   materializing backends, nonzero for producing streaming runs),
//! * parameter rebinding stability on prepared statements.

use crate::grammar::{CaseSpec, QueryForm};
use div_algebra::{Relation, Value};
use div_expr::{Catalog, LogicalPlan};
use div_physical::{execute_with_config, plan_query, ExecStats, ExecutionBackend, PlannerConfig};
use div_rewrite::{Optimizer, RewriteContext};
use div_sql::{Engine, Params};
use std::fmt;

/// A differential mismatch or invariant violation, with everything needed
/// to replay it.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Seed of the failing case.
    pub seed: u64,
    /// Formulation that failed.
    pub formulation: String,
    /// Execution strategy that failed (or `reference` / `invariant`).
    pub strategy: String,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// The full case, rendered for replay.
    pub case: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance mismatch (seed {:#x}, formulation `{}`, strategy `{}`)",
            self.seed, self.formulation, self.strategy
        )?;
        writeln!(f, "{}", self.detail)?;
        writeln!(f, "replay: CONFORMANCE_SEED={:#x} (case 0)", self.seed)?;
        write!(f, "case:\n{}", self.case)
    }
}

/// Tally of what one case exercised.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseReport {
    /// Number of formulations checked.
    pub formulations: usize,
    /// Number of strategy executions compared.
    pub executions: usize,
}

struct Strategy {
    name: &'static str,
    optimize: bool,
    exec: Exec,
}

enum Exec {
    /// Through the SQL engine's streaming cursor.
    Streaming {
        parallelism: usize,
        batch_size: usize,
    },
    /// Through the materializing compatibility layer.
    Compat {
        backend: ExecutionBackend,
        parallelism: usize,
    },
}

fn strategies() -> Vec<Strategy> {
    vec![
        Strategy {
            name: "stream/opt/p1",
            optimize: true,
            exec: Exec::Streaming {
                parallelism: 1,
                batch_size: 1024,
            },
        },
        Strategy {
            name: "stream/opt/p4/b3",
            optimize: true,
            exec: Exec::Streaming {
                parallelism: 4,
                batch_size: 3,
            },
        },
        Strategy {
            name: "stream/raw/p1/b3",
            optimize: false,
            exec: Exec::Streaming {
                parallelism: 1,
                batch_size: 3,
            },
        },
        Strategy {
            name: "stream/raw/p4",
            optimize: false,
            exec: Exec::Streaming {
                parallelism: 4,
                batch_size: 1024,
            },
        },
        Strategy {
            name: "row/opt",
            optimize: true,
            exec: Exec::Compat {
                backend: ExecutionBackend::RowAtATime,
                parallelism: 1,
            },
        },
        Strategy {
            name: "row/raw",
            optimize: false,
            exec: Exec::Compat {
                backend: ExecutionBackend::RowAtATime,
                parallelism: 1,
            },
        },
        Strategy {
            name: "columnar/opt/p1",
            optimize: true,
            exec: Exec::Compat {
                backend: ExecutionBackend::Columnar,
                parallelism: 1,
            },
        },
        Strategy {
            name: "columnar/raw/p1",
            optimize: false,
            exec: Exec::Compat {
                backend: ExecutionBackend::Columnar,
                parallelism: 1,
            },
        },
        Strategy {
            name: "columnar/opt/p4",
            optimize: true,
            exec: Exec::Compat {
                backend: ExecutionBackend::Columnar,
                parallelism: 4,
            },
        },
        Strategy {
            name: "columnar/raw/p4",
            optimize: false,
            exec: Exec::Compat {
                backend: ExecutionBackend::Columnar,
                parallelism: 4,
            },
        },
    ]
}

/// Run one case through the full matrix. `Ok` carries execution tallies;
/// `Err` carries the first mismatch found.
pub fn check_case(spec: &CaseSpec) -> Result<CaseReport, Box<Mismatch>> {
    let catalog = spec.catalog();
    let mismatch = |formulation: &str, strategy: &str, detail: String| {
        Box::new(Mismatch {
            seed: spec.seed,
            formulation: formulation.to_string(),
            strategy: strategy.to_string(),
            detail,
            case: format!("{spec}"),
        })
    };

    let reference = div_expr::evaluate(&spec.native_plan(), &catalog).map_err(|e| {
        mismatch(
            "native",
            "reference",
            format!("reference evaluation failed: {e}"),
        )
    })?;
    let canonical_reference = canonicalize(&reference);

    let mut report = CaseReport::default();
    for formulation in spec.formulations() {
        report.formulations += 1;

        // The formulation's own logical plan (parameters substituted), used
        // both as its exact expected result and by the compat backends.
        let logical = match &formulation.form {
            QueryForm::Sql { params, .. } => {
                // Translate the literal-substituted rendering: the engine
                // paths still run the `$param` text where present.
                let literal_sql = if params.is_empty() {
                    match &formulation.form {
                        QueryForm::Sql { sql, .. } => sql.clone(),
                        QueryForm::Logical(_) => unreachable!(),
                    }
                } else {
                    spec.divide_by_sql(false)
                };
                let query = div_sql::parse_query(&literal_sql).map_err(|e| {
                    mismatch(formulation.name, "parse", format!("`{literal_sql}`: {e}"))
                })?;
                div_sql::translate_query(&query, &catalog).map_err(|e| {
                    mismatch(
                        formulation.name,
                        "translate",
                        format!("`{literal_sql}`: {e}"),
                    )
                })?
            }
            QueryForm::Logical(plan) => plan.clone(),
        };
        let expected = div_expr::evaluate(&logical, &catalog).map_err(|e| {
            mismatch(
                formulation.name,
                "reference",
                format!("evaluation failed: {e}"),
            )
        })?;
        if canonicalize(&expected) != canonical_reference {
            return Err(mismatch(
                formulation.name,
                "reference",
                format!(
                    "formulation disagrees with the native reference\nexpected (canonical): {}\nactual (canonical): {}",
                    render(&canonicalize(&reference)),
                    render(&canonicalize(&expected)),
                ),
            ));
        }

        let optimized = optimize(&logical, &catalog);
        for strategy in strategies() {
            let outcome = match &strategy.exec {
                Exec::Streaming {
                    parallelism,
                    batch_size,
                } => {
                    let config = PlannerConfig::default()
                        .parallelism(*parallelism)
                        .batch_size(*batch_size);
                    let mut builder = Engine::builder(catalog.clone()).planner_config(config);
                    if !strategy.optimize {
                        builder = builder.without_optimizer();
                    }
                    let engine = builder.build();
                    match &formulation.form {
                        QueryForm::Sql { sql, params } if params.is_empty() => {
                            engine.query_collect(sql).map(|o| (o.relation, o.stats))
                        }
                        QueryForm::Sql { sql, params } => {
                            let bound = bind(params);
                            engine
                                .query_collect_with_params(sql, &bound)
                                .map(|o| (o.relation, o.stats))
                        }
                        QueryForm::Logical(plan) => {
                            engine.execute_logical(plan).map(|o| (o.relation, o.stats))
                        }
                    }
                    .map_err(|e| e.to_string())
                }
                Exec::Compat {
                    backend,
                    parallelism,
                } => {
                    let config = PlannerConfig::with_backend(*backend).parallelism(*parallelism);
                    let plan = if strategy.optimize {
                        &optimized
                    } else {
                        &logical
                    };
                    plan_query(plan, &config)
                        .and_then(|physical| execute_with_config(&physical, &catalog, &config))
                        .map_err(|e| e.to_string())
                }
            };
            let (relation, stats) = outcome.map_err(|e| {
                mismatch(
                    formulation.name,
                    strategy.name,
                    format!("execution failed: {e}"),
                )
            })?;
            report.executions += 1;
            if relation != expected {
                return Err(mismatch(
                    formulation.name,
                    strategy.name,
                    format!(
                        "result disagrees with the reference evaluator\nexpected: {}\nactual: {}",
                        render(&expected),
                        render(&relation),
                    ),
                ));
            }
            let streaming = matches!(strategy.exec, Exec::Streaming { .. });
            let parallelism = match &strategy.exec {
                Exec::Streaming { parallelism, .. } | Exec::Compat { parallelism, .. } => {
                    *parallelism
                }
            };
            if let Err(detail) = check_stats(&stats, &relation, streaming, parallelism) {
                return Err(mismatch(formulation.name, strategy.name, detail));
            }
        }

        // Prepared-statement rebinding: bind, execute, rebind a different
        // value, rebind the original — each run must match a literal query.
        if let QueryForm::Sql { sql, params } = &formulation.form {
            if !params.is_empty() {
                report.executions += check_rebinding(spec, &catalog, sql, params)
                    .map_err(|detail| mismatch(formulation.name, "prepared/rebind", detail))?;
            }
        }
    }
    Ok(report)
}

/// Prepared-statement rebinding check; returns the number of executions.
fn check_rebinding(
    spec: &CaseSpec,
    catalog: &Catalog,
    sql: &str,
    params: &[(String, Value)],
) -> Result<usize, String> {
    let engine = Engine::new(catalog.clone());
    let prepared = engine
        .prepare(sql)
        .map_err(|e| format!("prepare failed: {e}"))?;
    let mut executions = 0;
    let (name, original) = &params[0];
    let alternates = alternate_values(original);
    for value in [original.clone(), alternates.clone(), original.clone()] {
        let literal_sql = sql.replace(&format!("${name}"), &crate::grammar::sql_literal(&value));
        let expected = engine
            .query_collect(&literal_sql)
            .map_err(|e| format!("literal query `{literal_sql}` failed: {e}"))?
            .relation;
        let bound = Params::new().bind(name.clone(), value.clone());
        let got = prepared
            .execute_collect(&engine, &bound)
            .map_err(|e| format!("prepared execution failed for {value:?}: {e}"))?
            .relation;
        if got != expected {
            return Err(format!(
                "prepared rebinding of {name}={value:?} disagrees with the literal query\nexpected: {}\nactual: {}\ncase:\n{spec}",
                render(&expected),
                render(&got),
            ));
        }
        executions += 2;
    }
    Ok(executions)
}

fn alternate_values(original: &Value) -> Value {
    match original {
        Value::Int(i) => Value::from((i + 1) % 5),
        Value::Str(s) => Value::from(if &**s == "x" { "y" } else { "x" }),
        other => other.clone(),
    }
}

fn bind(params: &[(String, Value)]) -> Params {
    let mut bound = Params::new();
    for (name, value) in params {
        bound = bound.bind(name.clone(), value.clone());
    }
    bound
}

fn optimize(plan: &LogicalPlan, catalog: &Catalog) -> LogicalPlan {
    let ctx = RewriteContext::with_catalog(catalog);
    Optimizer::new()
        .optimize(plan, &ctx)
        .map(|o| o.plan)
        .unwrap_or_else(|_| plan.clone())
}

/// `ExecStats` / span-tree invariants shared by every strategy.
pub fn check_stats(
    stats: &ExecStats,
    relation: &Relation,
    streaming: bool,
    parallelism: usize,
) -> Result<(), String> {
    if stats.output_rows != relation.len() {
        return Err(format!(
            "output_rows = {} but the result has {} tuples",
            stats.output_rows,
            relation.len()
        ));
    }
    if !streaming && stats.peak_resident_batches != 0 {
        return Err(format!(
            "materializing backend reported peak_resident_batches = {}",
            stats.peak_resident_batches
        ));
    }
    if streaming && stats.output_rows > 0 && stats.peak_resident_batches == 0 {
        return Err("streaming run produced rows with peak_resident_batches = 0".to_string());
    }

    let ops = &stats.operators;
    if ops.is_empty() {
        return Ok(());
    }
    let max_probe = ops.iter().map(|o| o.probes).max().unwrap_or(0);
    if stats.probes < max_probe {
        return Err(format!(
            "aggregate probes ({}) below a single operator's probes ({max_probe})",
            stats.probes
        ));
    }
    let mut seen_as_child = vec![false; ops.len()];
    for (i, op) in ops.iter().enumerate() {
        if op.id.0 != i {
            return Err(format!("operator {i} carries id {}", op.id.0));
        }
        for child in &op.children {
            if child.0 <= i || child.0 >= ops.len() {
                return Err(format!(
                    "operator {i} ({}) links child {} outside pre-order range",
                    op.label, child.0
                ));
            }
            if seen_as_child[child.0] {
                return Err(format!("operator {} has two parents", child.0));
            }
            seen_as_child[child.0] = true;
        }
    }
    if parallelism <= 1 && ops[0].rows_out != stats.output_rows {
        return Err(format!(
            "root operator {} reports rows_out = {} but output_rows = {}",
            ops[0].label, ops[0].rows_out, stats.output_rows
        ));
    }
    for op in ops {
        let monotone = ["Filter", "Project", "Rename", "Intersect"]
            .iter()
            .any(|p| op.label.starts_with(p));
        if monotone && op.rows_out > op.rows_in {
            return Err(format!(
                "operator {} grew its input: rows_in = {}, rows_out = {}",
                op.label, op.rows_in, op.rows_out
            ));
        }
    }
    Ok(())
}

fn canonicalize(relation: &Relation) -> Relation {
    let mut names = relation.schema().names();
    names.sort_unstable();
    relation
        .project(&names)
        .expect("projection onto a relation's own columns")
}

fn render(relation: &Relation) -> String {
    let rows: Vec<String> = relation
        .tuples()
        .map(|t| {
            t.values()
                .iter()
                .map(crate::grammar::render_value)
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    format!(
        "[{}] {{{}}}",
        relation.schema().names().join(", "),
        rows.join("; ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::CaseSpec;

    #[test]
    fn a_spread_of_seeds_passes_the_full_matrix() {
        for seed in 0..40u64 {
            let spec = CaseSpec::generate(seed);
            if let Err(m) = check_case(&spec) {
                panic!("{m}");
            }
        }
    }

    #[test]
    fn reports_count_formulations_and_executions() {
        let spec = CaseSpec::generate(3);
        let report = check_case(&spec).expect("seed 3 conforms");
        assert!(report.formulations >= 2);
        assert!(report.executions >= 10 * report.formulations);
    }
}
