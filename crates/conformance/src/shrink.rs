//! Greedy case minimization.
//!
//! Once the oracle flags a case, the shrinker looks for the smallest spec
//! that still fails: it drops row windows from both tables (delta-debugging
//! style, halving window sizes), then strips filters, parameters and
//! cosmetic grammar flags. Every candidate is re-checked with the caller's
//! failure predicate, so the result is guaranteed to still reproduce.

use crate::grammar::CaseSpec;

/// Upper bound on failure-predicate evaluations during one shrink.
const BUDGET: usize = 250;

/// Shrink `spec` while `fails` keeps returning `true`. Deterministic; the
/// returned spec is the last failing candidate found within budget.
pub fn shrink(spec: &CaseSpec, mut fails: impl FnMut(&CaseSpec) -> bool) -> CaseSpec {
    let mut current = spec.clone();
    let mut budget = BUDGET;
    let mut check = |candidate: &CaseSpec, budget: &mut usize| -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        fails(candidate)
    };

    loop {
        let mut improved = false;

        // Row windows, largest first, on each table.
        for table in 0..2usize {
            let len = if table == 0 {
                current.dividend.rows.len()
            } else {
                current.divisor.rows.len()
            };
            let mut window = (len / 2).max(1);
            while window >= 1 && len > 0 {
                let mut start = 0;
                while start < len {
                    let end = (start + window).min(len);
                    let mut candidate = current.clone();
                    {
                        let rows = if table == 0 {
                            &mut candidate.dividend.rows
                        } else {
                            &mut candidate.divisor.rows
                        };
                        if end > rows.len() {
                            break;
                        }
                        rows.drain(start..end);
                    }
                    if check(&candidate, &mut budget) {
                        current = candidate;
                        improved = true;
                        break;
                    }
                    start += window;
                }
                if improved {
                    break;
                }
                if window == 1 {
                    break;
                }
                window /= 2;
            }
            if improved {
                break;
            }
        }
        if improved {
            continue;
        }

        // Structural simplifications, one at a time.
        let mut candidates: Vec<CaseSpec> = Vec::new();
        if current.dividend_filter.is_some() {
            let mut c = current.clone();
            c.dividend_filter = None;
            candidates.push(c);
        }
        if let Some(filter) = &current.divisor_filter {
            if filter.param.is_some() {
                let mut c = current.clone();
                c.divisor_filter.as_mut().expect("present").param = None;
                candidates.push(c);
            }
            let mut c = current.clone();
            c.divisor_filter = None;
            candidates.push(c);
        }
        if current.distinct {
            let mut c = current.clone();
            c.distinct = false;
            candidates.push(c);
        }
        if current.select_wildcard {
            let mut c = current.clone();
            c.select_wildcard = false;
            candidates.push(c);
        }
        if current.flip_on {
            let mut c = current.clone();
            c.flip_on = false;
            candidates.push(c);
        }
        for candidate in candidates {
            if check(&candidate, &mut budget) {
                current = candidate;
                improved = true;
                break;
            }
        }

        if !improved || budget == 0 {
            return current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::CaseSpec;

    #[test]
    fn shrinks_rows_to_the_minimal_failing_core() {
        // Synthetic failure: "fails whenever the dividend still holds its
        // 4th row" — the shrinker must strip everything else.
        let spec = CaseSpec::generate(11);
        if spec.dividend.rows.len() < 5 {
            // Pick a seed with enough rows for the scenario to make sense.
            return shrinks_rows_with_seed(12);
        }
        shrinks_rows_with(spec);
    }

    fn shrinks_rows_with_seed(seed: u64) {
        shrinks_rows_with(CaseSpec::generate(seed));
    }

    fn shrinks_rows_with(spec: CaseSpec) {
        let needle = spec.dividend.rows[3].clone();
        let shrunk = shrink(&spec, |c| c.dividend.rows.contains(&needle));
        assert_eq!(shrunk.dividend.rows, vec![needle]);
        assert!(shrunk.divisor.rows.is_empty());
        assert!(shrunk.dividend_filter.is_none());
        assert!(shrunk.divisor_filter.is_none());
    }

    #[test]
    fn keeps_the_original_when_nothing_smaller_fails() {
        let spec = CaseSpec::generate(21);
        // Fails only for the exact original spec (by its full rendering).
        let original = format!("{spec}");
        let shrunk = shrink(&spec, |c| format!("{c}") == original);
        assert_eq!(format!("{shrunk}"), original);
    }
}
