//! Frequent itemset discovery (Section 3): Apriori whose support-counting
//! phase is a single great divide per iteration.
//!
//! Run with `cargo run --example frequent_itemsets`.

use div_datagen::baskets::{self, BasketConfig};
use div_mining::{mine_frequent_itemsets, AprioriConfig, SupportCounting};
use division::prelude::*;

fn main() {
    let config = BasketConfig {
        transactions: 500,
        items: 80,
        avg_length: 7,
        skew: 1.1,
        planted_itemsets: 3,
        planted_size: 3,
        planted_probability: 0.35,
        seed: 2006,
    };
    let data = baskets::generate(&config);
    println!(
        "generated {} transaction rows over {} items; planted itemsets: {:?}",
        data.transactions.len(),
        config.items,
        data.planted
    );

    let min_support = config.transactions / 8;
    for counting in [
        SupportCounting::GreatDivide(GreatDivideAlgorithm::HashSets),
        SupportCounting::PerCandidateScan,
    ] {
        let result = mine_frequent_itemsets(
            &data.transactions,
            &AprioriConfig {
                min_support,
                max_size: 3,
                counting,
            },
        )
        .expect("mining succeeds");
        println!("------------------------------------------------------------------");
        println!(
            "strategy {:<28} iterations {:>2}  candidates counted {:>4}  frequent itemsets {:>4}",
            counting.name(),
            result.iterations,
            result.candidates_counted,
            result.itemsets.len()
        );
        println!("frequent 3-itemsets (support >= {min_support}):");
        for itemset in result.of_size(3) {
            println!("  {:?}  support {}", itemset.items, itemset.support);
        }
        for planted in &data.planted {
            println!(
                "  planted {:?} found: {}",
                planted,
                result.contains(planted)
            );
        }
    }
}
