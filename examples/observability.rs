//! The observability layer end to end: per-operator timed spans, the
//! estimate-vs-actual EXPLAIN ANALYZE report, and the engine's session
//! metrics registry.
//!
//! Run with `cargo run --example observability`.

use division::prelude::*;

fn main() {
    // A generated suppliers-parts database behind one engine, with
    // per-operator wall-clock tracing enabled for ordinary queries too
    // (EXPLAIN ANALYZE always times, whatever this flag says).
    let data = div_datagen::suppliers_parts::generate(&div_datagen::SuppliersPartsConfig {
        suppliers: 300,
        parts: 60,
        colors: 5,
        coverage: 0.5,
        full_suppliers: 0.04,
        seed: 42,
    });
    let mut catalog = Catalog::new();
    catalog.register("supplies", data.supplies);
    catalog.register("parts", data.parts);
    let engine = Engine::builder(catalog).with_tracing(true).build();

    // 1. EXPLAIN ANALYZE: the physical tree annotated per operator with
    //    actual rows, the cost model's estimated rows, the q-error between
    //    them, attributed wall time, probe counts and resident peaks.
    let q2 = "SELECT s# FROM supplies AS s DIVIDE BY \
              (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
    let analyzed = engine.explain_analyze(q2).expect("Q2 analyzes");
    println!("{analyzed}");

    // The same data is available structurally: one `OperatorStats` span
    // per physical operator, in EXPLAIN pre-order.
    let spans = analyzed.operator_stats().expect("analyze fills spans");
    let errors = analyzed.estimation_errors().expect("estimates line up");
    let worst = errors
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("plan is non-empty");
    println!(
        "worst cardinality estimate: {} (q-error {:.2}, estimated {:.0}, actual {})\n",
        spans[worst.0].label, worst.1, analyzed.estimated_rows[worst.0], spans[worst.0].rows_out,
    );

    // 2. Ordinary queries on this engine carry timed spans too, because
    //    the builder enabled tracing; by default only attribution (rows,
    //    probes, resident peaks) is collected and the clocks stay cold.
    let output = engine
        .query("SELECT s# FROM supplies WHERE p# = 3")
        .expect("filter compiles")
        .collect()
        .expect("filter runs");
    for op in &output.stats.operators {
        println!(
            "operator {:>2}  {:<28} rows_out={:<6} time={}ns",
            op.id.index(),
            op.label,
            op.rows_out,
            op.total_time_ns(),
        );
    }
    println!();

    // 3. A prepared statement, executed for several bindings, to feed the
    //    session metrics: the second prepare of the same SQL is a cache hit.
    let stmt_sql = "SELECT s# FROM supplies AS s DIVIDE BY \
                    (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#";
    let stmt = engine.prepare(stmt_sql).expect("prepares");
    engine
        .prepare(stmt_sql)
        .expect("prepares again (cache hit)");
    for color in ["blue", "red", "green"] {
        let out = stmt
            .execute_collect(&engine, &Params::new().bind("color", color))
            .expect("prepared query executes");
        println!(
            "{color}: {} suppliers supply every part",
            out.relation.len()
        );
    }
    println!();

    // 4. The session metrics registry: queries, rows, the pipeline time
    //    split, a latency histogram and the rewrite laws that fired —
    //    as text and as JSON for scraping.
    let metrics = engine.metrics();
    println!("{metrics}");
    println!("as JSON:\n{}", metrics.to_json());
}
