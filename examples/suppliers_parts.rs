//! The suppliers-and-parts scenario of Section 4: queries Q1, Q2 and Q3 in the
//! proposed SQL dialect, lowered to division plans and executed.
//!
//! Run with `cargo run --example suppliers_parts`.

use div_datagen::suppliers_parts::{self, SuppliersPartsConfig};
use div_sql::{parse_query, translate_query};
use division::prelude::*;

const Q1: &str = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p#";
const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                  (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
const Q3: &str = "SELECT DISTINCT s#, color FROM supplies AS s1, parts AS p1 \
                  WHERE NOT EXISTS ( SELECT * FROM parts AS p2 WHERE p2.color = p1.color AND \
                  NOT EXISTS ( SELECT * FROM supplies AS s2 WHERE s2.p# = p2.p# AND s2.s# = s1.s# ))";

fn main() {
    // A small generated database (10 suppliers, 8 parts, 3 colors).
    let data = suppliers_parts::generate(&SuppliersPartsConfig {
        suppliers: 10,
        parts: 8,
        colors: 3,
        coverage: 0.6,
        full_suppliers: 0.2,
        seed: 7,
    });
    let mut catalog = Catalog::new();
    catalog.register("supplies", data.supplies);
    catalog.register("parts", data.parts);
    println!("parts:\n{}", catalog.table("parts").unwrap());

    for (name, sql) in [("Q1", Q1), ("Q2", Q2), ("Q3", Q3)] {
        println!("==================================================================");
        println!("{name}: {sql}\n");
        let query = parse_query(sql).expect("query parses");
        let plan = translate_query(&query, &catalog).expect("query lowers");
        println!("logical plan:\n{plan}");
        let result = evaluate(&plan, &catalog).expect("query evaluates");
        println!("result ({} tuples):\n{result}", result.len());
    }

    // Q1 and Q3 are the same query; show that the detection produced the same
    // answer through a division operator instead of nested NOT EXISTS.
    let q1 = translate_query(&parse_query(Q1).unwrap(), &catalog).unwrap();
    let q3 = translate_query(&parse_query(Q3).unwrap(), &catalog).unwrap();
    let report = plans_equivalent_on(&q1, &q3, &catalog).unwrap();
    println!("Q1 and Q3 equivalent: {}", report.equivalent);
}
