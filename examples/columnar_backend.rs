//! Side-by-side comparison of the execution strategies — row, columnar, and
//! Law 2/13 partition-parallel columnar — on the paper's Example-3 query
//! `(r*1 ⋈_{b1<b2} r**1) ÷ r2` (Figure 9) and on the generated
//! suppliers-parts query Q2.
//!
//! Run with `cargo run --release --example columnar_backend`.

use division::prelude::*;
use std::time::Instant;

/// A scaled-up Figure 9: `r*1(a, b1)`, `r**1(b2)`, `r2(b1, b2)`.
fn example3_catalog(scale: i64) -> Catalog {
    let mut r_star_rows = Vec::new();
    for a in 0..scale {
        for b1 in 0..8i64 {
            if a % 3 == 0 || b1 % 2 == 0 {
                r_star_rows.push(vec![a, b1]);
            }
        }
    }
    let mut catalog = Catalog::new();
    catalog.register(
        "r_star",
        Relation::from_rows(["a", "b1"], r_star_rows).expect("valid r*1"),
    );
    catalog.register(
        "r_star_star",
        Relation::from_rows(["b2"], (0..9i64).map(|b2| vec![b2])).expect("valid r**1"),
    );
    catalog.register("r2", relation! { ["b1", "b2"] => [1, 4], [3, 4], [0, 2] });
    catalog
}

fn run_side_by_side(name: &str, plan: &div_physical::PhysicalPlan, catalog: &Catalog) {
    println!("\n=== {name} ===");
    println!("{plan}");
    println!(
        "{:<12} {:>9} {:>12} {:>10} {:>17} {:>10}",
        "strategy", "rows", "scanned", "probes", "max_intermediate", "time"
    );
    let strategies = [
        ("row", PlannerConfig::default()),
        (
            "columnar",
            PlannerConfig::with_backend(ExecutionBackend::Columnar),
        ),
        ("columnar-p4", PlannerConfig::with_parallelism(4)),
    ];
    let mut results = Vec::new();
    for (name, config) in strategies {
        let start = Instant::now();
        let (result, stats) = execute_with_config(plan, catalog, &config).expect("plan executes");
        let elapsed = start.elapsed();
        println!(
            "{:<12} {:>9} {:>12} {:>10} {:>17} {:>10.2?}",
            name,
            stats.output_rows,
            stats.rows_scanned,
            stats.probes,
            stats.max_intermediate,
            elapsed
        );
        results.push(result);
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "strategies must agree"
    );
    println!("strategies agree on all {} result rows", results[0].len());
}

fn main() {
    // Example 3 (Figure 9): the dividend contains a theta-join; both it and
    // the division on top run vectorized (and partitioned when parallel).
    let catalog = example3_catalog(2_000);
    let example3 = PlanBuilder::scan("r_star")
        .theta_join(
            PlanBuilder::scan("r_star_star"),
            Predicate::cmp_attrs("b1", CompareOp::Lt, "b2"),
        )
        .divide(PlanBuilder::scan("r2"))
        .build();
    let plan = plan_query(&example3, &PlannerConfig::default()).expect("plan lowers");
    run_side_by_side("Example 3: (r*1 join r**1) / r2", &plan, &catalog);

    // Q2 on a generated suppliers-parts database: every operator of this plan
    // (scan, filter, project, divide) is vectorized.
    let data = div_datagen::suppliers_parts::generate(&div_datagen::SuppliersPartsConfig {
        suppliers: 2_000,
        parts: 50,
        colors: 4,
        coverage: 0.5,
        full_suppliers: 0.05,
        seed: 17,
    });
    let mut sp_catalog = Catalog::new();
    sp_catalog.register("supplies", data.supplies);
    sp_catalog.register("parts", data.parts);
    let q2 = PlanBuilder::scan("supplies")
        .divide(
            PlanBuilder::scan("parts")
                .select(Predicate::eq_value("color", "blue"))
                .project(["p#"]),
        )
        .build();
    let plan = plan_query(&q2, &PlannerConfig::default()).expect("plan lowers");
    run_side_by_side("Q2: suppliers supplying all blue parts", &plan, &sp_catalog);

    // The same comparison driven through the SQL front end: an `Engine`
    // configured for the columnar backend.
    let engine = Engine::builder(sp_catalog)
        .planner_config(PlannerConfig::with_backend(ExecutionBackend::Columnar))
        .build();
    let output = engine
        .query_collect(
            "SELECT s# FROM supplies AS s DIVIDE BY \
             (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#",
        )
        .expect("SQL Q2 runs");
    println!(
        "\nSQL Q2 on the columnar backend: {} suppliers, {} probes",
        output.relation.len(),
        output.stats.probes
    );
}
