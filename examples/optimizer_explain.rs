//! Show the rewrite engine and the cost-based optimizer at work: the rule
//! trace, the estimated costs, and the step-by-step derivation of Example 3.
//!
//! Run with `cargo run --example optimizer_explain`.

use div_rewrite::laws::examples::example3_derivation;
use div_rewrite::optimizer::CostModel;
use division::prelude::*;

fn main() {
    // A generated suppliers-parts database.
    let data = div_datagen::suppliers_parts::generate(&div_datagen::SuppliersPartsConfig {
        suppliers: 200,
        parts: 40,
        colors: 4,
        coverage: 0.5,
        full_suppliers: 0.05,
        seed: 17,
    });
    let mut catalog = Catalog::new();
    catalog.register("supplies", data.supplies);
    catalog.register("parts", data.parts);

    // σ_{color='blue'}(supplies ÷* parts), the "suppliers of all parts per
    // color" query restricted to one color after the fact.
    let plan = PlanBuilder::scan("supplies")
        .great_divide(PlanBuilder::scan("parts"))
        .select(Predicate::eq_value("color", "blue"))
        .select(Predicate::cmp_value("s#", CompareOp::Lt, 50))
        .build();
    println!("original plan:\n{plan}");

    let ctx = RewriteContext::with_catalog(&catalog);
    let engine = RewriteEngine::with_default_rules();
    let outcome = engine.rewrite(&plan, &ctx).unwrap();
    println!("rule trace:\n{}\n", outcome.trace());
    println!("rewritten plan:\n{}", outcome.plan);

    let optimizer = Optimizer::new();
    let optimized = optimizer.optimize(&plan, &ctx).unwrap();
    let model = CostModel::default();
    println!(
        "estimated cost: original {:.0}, optimized {:.0} (speed-up {:.1}x, {} alternatives considered)",
        model.cost(&plan, &ctx).value(),
        optimized.cost.value(),
        optimized.estimated_speedup(),
        optimized.alternatives_considered,
    );
    println!(
        "optimizer trace (laws chosen per greedy pass):\n{}",
        optimized.trace()
    );
    let report = plans_equivalent_on(&plan, &optimized.plan, &catalog).unwrap();
    println!(
        "optimized plan equivalent to original: {}\n",
        report.equivalent
    );

    // Example 3: the derivation that removes the theta-join from the dividend.
    let mut figure9 = Catalog::new();
    figure9.register(
        "r_star",
        relation! {
            ["a", "b1"] =>
            [1, 1], [1, 2], [1, 3],
            [2, 2], [2, 3],
            [3, 1], [3, 3], [3, 4],
        },
    );
    figure9.register("r_star_star", relation! { ["b2"] => [1], [2], [4] });
    figure9.register("r2", relation! { ["b1", "b2"] => [1, 4], [3, 4] });
    let ctx9 = RewriteContext::with_catalog(&figure9);
    println!("Example 3 derivation (Figure 9):");
    let steps = example3_derivation(
        &PlanBuilder::scan("r_star").build(),
        &PlanBuilder::scan("r_star_star").build(),
        &PlanBuilder::scan("r2").build(),
        &ctx9,
    )
    .unwrap();
    for (i, step) in steps.iter().enumerate() {
        let result = evaluate(&step.plan, &figure9).unwrap();
        println!(
            "  step {i}: {:<70} -> {} tuple(s)",
            step.justification,
            result.len()
        );
    }
    println!("final plan:\n{}", steps.last().unwrap().plan);
}
