//! The `Engine` session API end to end: ad-hoc queries with the rewrite
//! optimizer in the loop, prepared statements with `$name` parameters, and
//! structured EXPLAIN / EXPLAIN ANALYZE reports.
//!
//! Run with `cargo run --example engine`.

use division::prelude::*;

fn main() {
    // A generated suppliers-parts database behind one engine.
    let data = div_datagen::suppliers_parts::generate(&div_datagen::SuppliersPartsConfig {
        suppliers: 300,
        parts: 60,
        colors: 5,
        coverage: 0.5,
        full_suppliers: 0.04,
        seed: 42,
    });
    let mut catalog = Catalog::new();
    catalog.register("supplies", data.supplies);
    catalog.register("parts", data.parts);
    let engine = Engine::new(catalog);

    // 1. Ad-hoc query: parse → translate → optimize (laws + cost model) →
    //    plan → execute, in one call.
    let q2 = "SELECT s# FROM supplies AS s DIVIDE BY \
              (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
    let output = engine.query(q2).expect("Q2 runs");
    println!(
        "Q2 (ad hoc): {} suppliers supply every blue part ({} rows scanned)\n",
        output.relation.len(),
        output.stats.rows_scanned
    );

    // 2. EXPLAIN: what would the engine do? The report shows the logical
    //    plan before and after the rewrite, the laws that fired, the cost
    //    estimates and the chosen physical operators.
    let filtered = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
                    WHERE color = 'red'";
    let explain = engine.explain(filtered).expect("explain compiles");
    println!("{explain}");

    // 3. EXPLAIN ANALYZE adds measured execution statistics.
    let analyzed = engine.explain_analyze(filtered).expect("analyze runs");
    println!("{analyzed}");

    // 4. Prepared statements: compile once, bind and execute many times.
    //    The color literal of Q2 becomes a `$color` parameter.
    let stmt = engine
        .prepare(
            "SELECT s# FROM supplies AS s DIVIDE BY \
             (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#",
        )
        .expect("Q2 prepares");
    println!(
        "prepared Q2: parameters {:?}, {} law(s) fired at prepare time",
        stmt.parameters(),
        stmt.laws_applied().len()
    );
    for color in ["blue", "red", "green", "yellow", "black"] {
        let out = stmt
            .execute(&engine, &Params::new().bind("color", color))
            .expect("prepared Q2 executes");
        println!("  {color}: {} suppliers", out.relation.len());
    }
    println!(
        "compilations: {} (one prepare; executions bind into the cached plan)",
        engine.compile_count()
    );
}
