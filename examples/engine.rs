//! The `Engine` session API end to end, on the streaming `Cursor` front
//! door: ad-hoc queries with the rewrite optimizer in the loop, incremental
//! batch consumption, prepared statements with `$name` parameters, and
//! structured EXPLAIN / EXPLAIN ANALYZE reports (now including the
//! streaming executor's peak-resident-batch footprint).
//!
//! Run with `cargo run --example engine`.

use division::prelude::*;

fn main() {
    // A generated suppliers-parts database behind one engine.
    let data = div_datagen::suppliers_parts::generate(&div_datagen::SuppliersPartsConfig {
        suppliers: 300,
        parts: 60,
        colors: 5,
        coverage: 0.5,
        full_suppliers: 0.04,
        seed: 42,
    });
    let mut catalog = Catalog::new();
    catalog.register("supplies", data.supplies);
    catalog.register("parts", data.parts);
    let engine = Engine::new(catalog);

    // 1. Ad-hoc query: parse → translate → optimize (laws + cost model) →
    //    plan, then *stream* the execution. `collect()` drains the cursor
    //    into the classic (relation, stats) pair.
    let q2 = "SELECT s# FROM supplies AS s DIVIDE BY \
              (SELECT p# FROM parts WHERE color = 'blue') AS p ON s.p# = p.p#";
    let output = engine
        .query(q2)
        .expect("Q2 compiles")
        .collect()
        .expect("Q2 runs");
    println!(
        "Q2 (collected): {} suppliers supply every blue part ({} rows scanned, \
         peak {} resident rows)\n",
        output.relation.len(),
        output.stats.rows_scanned,
        output.stats.peak_resident_rows,
    );

    // 2. The same query consumed incrementally: the cursor is an iterator
    //    of columnar batches, produced on demand.
    let mut cursor = engine.query(q2).expect("Q2 compiles");
    println!(
        "Q2 (streamed), result schema {:?}:",
        cursor.schema().names()
    );
    let mut batches = 0;
    for batch in cursor.by_ref() {
        let batch = batch.expect("batch streams");
        batches += 1;
        println!("  batch {batches}: {} rows", batch.num_rows());
    }
    let stats = cursor.finish_stats();
    println!(
        "  {} batches, {} output rows, peak {} resident rows\n",
        batches, stats.output_rows, stats.peak_resident_rows
    );

    // 3. EXPLAIN: what would the engine do? The report shows the logical
    //    plan before and after the rewrite, the laws that fired, the cost
    //    estimates and the chosen physical operators.
    let filtered = "SELECT s#, color FROM supplies AS s DIVIDE BY parts AS p ON s.p# = p.p# \
                    WHERE color = 'red'";
    let explain = engine.explain(filtered).expect("explain compiles");
    println!("{explain}");

    // 4. EXPLAIN ANALYZE adds measured execution statistics from the
    //    streaming path (note the peak-resident lines).
    let analyzed = engine.explain_analyze(filtered).expect("analyze runs");
    println!("{analyzed}");

    // 5. Prepared statements: compile once, bind and stream many times.
    //    The color literal of Q2 becomes a `$color` parameter.
    let stmt = engine
        .prepare(
            "SELECT s# FROM supplies AS s DIVIDE BY \
             (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#",
        )
        .expect("Q2 prepares");
    println!(
        "prepared Q2: parameters {:?}, {} law(s) fired at prepare time",
        stmt.parameters(),
        stmt.laws_applied().len()
    );
    for color in ["blue", "red", "green", "yellow", "black"] {
        let out = stmt
            .execute_collect(&engine, &Params::new().bind("color", color))
            .expect("prepared Q2 executes");
        println!("  {color}: {} suppliers", out.relation.len());
    }
    println!(
        "compilations: {} (one prepare; executions bind into the cached plan)",
        engine.compile_count()
    );
}
