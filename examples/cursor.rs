//! Incremental result consumption with the streaming `Cursor`.
//!
//! Demonstrates the three things the streaming execution API buys over the
//! materializing `QueryOutput` shape:
//!
//! 1. **batch-at-a-time consumption** — results arrive as columnar batches
//!    while upstream operators are still running;
//! 2. **early termination** — `take(n)` (or dropping the cursor) stops the
//!    source scans short, visible in `rows_scanned`;
//! 3. **bounded memory** — a deep pipeline's peak resident rows stay at a
//!    small multiple of `batch_size`, not the table size.
//!
//! Run with `cargo run --example cursor`.

use division::prelude::*;

fn main() {
    // A wide generated workload: 60k supplies rows.
    let data = div_datagen::suppliers_parts::generate(&div_datagen::SuppliersPartsConfig {
        suppliers: 2_000,
        parts: 60,
        colors: 5,
        coverage: 0.5,
        full_suppliers: 0.05,
        seed: 7,
    });
    let table_rows = data.supplies.len();
    let mut catalog = Catalog::new();
    catalog.register("supplies", data.supplies);
    catalog.register("parts", data.parts);
    let engine = Engine::builder(catalog)
        .planner_config(PlannerConfig::default().batch_size(1024))
        .build();

    // 1. Batch-at-a-time consumption: the cursor is an Iterator over
    //    Result<ColumnarBatch>.
    let sql = "SELECT s#, p# FROM supplies WHERE p# < 30";
    let mut cursor = engine.query(sql).expect("query compiles");
    println!("streaming `{sql}`");
    println!("result schema: {:?}", cursor.schema().names());
    let mut batches = 0usize;
    let mut rows = 0usize;
    for batch in cursor.by_ref() {
        let batch = batch.expect("batch streams");
        batches += 1;
        rows += batch.num_rows();
    }
    let stats = cursor.finish_stats();
    println!(
        "  drained: {batches} batches, {rows} rows \
         (scanned {} of {table_rows} table rows, peak {} resident rows)\n",
        stats.rows_scanned, stats.peak_resident_rows
    );

    // 2. Early termination: take only the first batch — the scan stops
    //    after one chunk instead of reading all 60k rows.
    let mut cursor = engine.query(sql).expect("query compiles");
    let first = cursor
        .by_ref()
        .take(1)
        .next()
        .expect("one batch")
        .expect("batch streams");
    let stats = cursor.finish_stats();
    println!(
        "take(1): got {} rows after scanning only {} of {table_rows} table rows \
         ({}x less I/O)\n",
        first.num_rows(),
        stats.rows_scanned,
        table_rows / stats.rows_scanned.max(1),
    );

    // 3. Bounded memory on a deep pipeline, vs the same plan materialized.
    let deep = "SELECT p# FROM supplies WHERE s# < 1500 AND p# < 50";
    let output = engine.query_collect(deep).expect("query runs");
    println!("deep pipeline `{deep}`");
    println!(
        "  streaming:     peak resident rows = {:>6} (batch_size = {})",
        output.stats.peak_resident_rows,
        engine.planner_config().batch_size,
    );
    let explain = engine.explain(deep).expect("explain compiles");
    let (_, mat) = execute_with_config(
        &explain.physical,
        &engine.catalog(),
        engine.planner_config(),
    )
    .expect("materializing run");
    println!(
        "  materializing: max intermediate  = {:>6} (whole filtered table)",
        mat.max_intermediate
    );
}
