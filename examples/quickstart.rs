//! Quickstart: build the paper's Figure 1 relations, run the small and great
//! divide, apply a law with the rewrite engine, and execute the plan with a
//! special-purpose physical operator.
//!
//! Run with `cargo run --example quickstart`.

use division::prelude::*;

fn main() {
    // Figure 1: r1 ÷ r2 = r3.
    let r1 = relation! {
        ["a", "b"] =>
        [1, 1], [1, 4],
        [2, 1], [2, 2], [2, 3], [2, 4],
        [3, 1], [3, 3], [3, 4],
    };
    let r2 = relation! { ["b"] => [1], [3] };
    println!("r1 (dividend):\n{r1}");
    println!("r2 (divisor):\n{r2}");
    println!("r1 ÷ r2 (small divide):\n{}", r1.divide(&r2).unwrap());

    // Figure 2: the great divide groups the divisor by c.
    let r2_groups = relation! { ["b", "c"] => [1, 1], [2, 1], [4, 1], [1, 2], [3, 2] };
    println!("r2 with groups (divisor):\n{r2_groups}");
    println!(
        "r1 ÷* r2 (great divide):\n{}",
        r1.great_divide(&r2_groups).unwrap()
    );

    // The same query as a logical plan, rewritten by the laws and executed by
    // a physical division algorithm.
    let mut catalog = Catalog::new();
    catalog.register("r1", r1);
    catalog.register("r2", r2);
    let plan = PlanBuilder::scan("r1")
        .divide(PlanBuilder::scan("r2"))
        .select(Predicate::eq_value("a", 2))
        .build();
    println!("original logical plan:\n{plan}");

    let engine = RewriteEngine::with_default_rules();
    let ctx = RewriteContext::with_catalog(&catalog);
    let outcome = engine.rewrite(&plan, &ctx).unwrap();
    println!("applied rules:\n{}\n", outcome.trace());
    println!(
        "rewritten logical plan (Law 3 pushed the filter down):\n{}",
        outcome.plan
    );

    let physical = plan_query(
        &outcome.plan,
        &PlannerConfig::with_division_algorithm(DivisionAlgorithm::HashDivision),
    )
    .unwrap();
    println!("physical plan:\n{physical}");
    let (result, stats) = execute_with_stats(&physical, &catalog).unwrap();
    println!("result:\n{result}");
    println!(
        "executed {} operators, scanned {} rows, produced {} intermediate tuples",
        stats.operators_executed, stats.rows_scanned, stats.intermediate_tuples
    );
}
