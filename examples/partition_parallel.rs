//! Partition-parallel division: the execution strategies the paper attaches
//! to Law 2 (dividend partitioning under condition c2) and Law 13 (divisor
//! hash partitioning on the group attributes).
//!
//! Run with `cargo run --release --example partition_parallel`.

use div_bench::{division_workload, great_divide_workload};
use div_physical::division::{divide_with, DivisionAlgorithm};
use div_physical::great_divide::{great_divide_with, GreatDivideAlgorithm};
use div_physical::parallel::{parallel_divide, parallel_great_divide};
use div_physical::ExecStats;
use std::time::Instant;

fn main() {
    println!("Law 2 (small divide, dividend hash-partitioned on A)");
    let (dividend, divisor) = division_workload(20_000, 24, 3);
    let start = Instant::now();
    let mut stats = ExecStats::default();
    let sequential = divide_with(
        &dividend,
        &divisor,
        DivisionAlgorithm::HashDivision,
        &mut stats,
    )
    .unwrap();
    let sequential_time = start.elapsed();
    println!(
        "  sequential: {} quotient tuples in {:?}",
        sequential.len(),
        sequential_time
    );
    for workers in [2usize, 4, 8] {
        let start = Instant::now();
        let (result, _) = parallel_divide(
            &dividend,
            &divisor,
            DivisionAlgorithm::HashDivision,
            workers,
        )
        .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(result, sequential);
        println!(
            "  {workers} workers: {:?} (speed-up {:.2}x)",
            elapsed,
            sequential_time.as_secs_f64() / elapsed.as_secs_f64()
        );
    }

    println!("\nLaw 13 (great divide, divisor hash-partitioned on C)");
    let (dividend, divisor) = great_divide_workload(2_000, 24, 96, 8);
    let start = Instant::now();
    let mut stats = ExecStats::default();
    let sequential = great_divide_with(
        &dividend,
        &divisor,
        GreatDivideAlgorithm::HashSets,
        &mut stats,
    )
    .unwrap();
    let sequential_time = start.elapsed();
    println!(
        "  sequential: {} quotient tuples in {:?}",
        sequential.len(),
        sequential_time
    );
    for workers in [2usize, 4, 8] {
        let start = Instant::now();
        let (result, _) =
            parallel_great_divide(&dividend, &divisor, GreatDivideAlgorithm::HashSets, workers)
                .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(result, sequential);
        println!(
            "  {workers} workers: {:?} (speed-up {:.2}x)",
            elapsed,
            sequential_time.as_secs_f64() / elapsed.as_secs_f64()
        );
    }
}
