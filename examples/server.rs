//! Serve one shared engine to concurrent TCP clients.
//!
//! ```sh
//! cargo run --example server
//! ```
//!
//! Starts a `div_server` on an ephemeral port, then exercises the wire
//! protocol from three concurrent client connections: ad-hoc queries, a
//! prepared statement that survives a catalog mutation (the session
//! re-prepares it transparently), and the metrics registries.

use div_algebra::{relation, Value};
use div_expr::Catalog;
use div_server::{Client, Server, ServerConfig};
use div_sql::Engine;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's suppliers-and-parts catalog behind a shared engine.
    let mut catalog = Catalog::new();
    catalog.register(
        "supplies",
        relation! { ["s#", "p#"] => [1, 1], [1, 2], [2, 1], [2, 2], [2, 3], [3, 2] },
    );
    catalog.register(
        "parts",
        relation! { ["p#", "color"] => [1, "blue"], [2, "blue"], [3, "red"] },
    );
    let engine = Arc::new(Engine::new(catalog));
    let server = Server::bind("127.0.0.1:0", engine, ServerConfig::default())?;
    let addr = server.local_addr();
    println!("serving on {addr}\n");

    const Q2: &str = "SELECT s# FROM supplies AS s DIVIDE BY \
                      (SELECT p# FROM parts WHERE color = $color) AS p ON s.p# = p.p#";

    // Concurrent ad-hoc clients: each runs the division for one color.
    let adhoc: Vec<_> = ["blue", "red"]
        .into_iter()
        .map(|color| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let sql = format!(
                    "SELECT s# FROM supplies AS s DIVIDE BY \
                     (SELECT p# FROM parts WHERE color = '{color}') AS p ON s.p# = p.p#"
                );
                let result = client.query(&sql).expect("query");
                let _ = client.close();
                (color, result.rows)
            })
        })
        .collect();
    for worker in adhoc {
        let (color, rows) = worker.join().expect("client thread");
        println!("suppliers of every {color} part: {rows:?}");
    }

    // A prepared session: compile once, execute per parameter.
    let mut session = Client::connect(addr)?;
    session.prepare("q2", Q2)?;
    for color in ["blue", "red"] {
        let result = session.execute("q2", &[("color", Value::from(color))])?;
        println!("prepared q2(color={color}): {} rows", result.rows.len());
    }

    // Mutate the catalog from a second connection: part 3 turns blue.
    let mut admin = Client::connect(addr)?;
    admin.register(
        "parts",
        &["p#", "color"],
        &[
            vec![1i64.into(), "blue".into()],
            vec![2i64.into(), "blue".into()],
            vec![3i64.into(), "blue".into()],
        ],
    )?;
    println!("\ncatalog mutated: part 3 is now blue");

    // The prepared statement went stale under the session's feet; the
    // server re-prepares it transparently and serves the *new* answer.
    let result = session.execute("q2", &[("color", Value::from("blue"))])?;
    println!(
        "prepared q2(color=blue) after mutation: {} rows",
        result.rows.len()
    );

    println!("\nmetrics: {}", admin.metrics()?);
    session.close()?;
    admin.close()?;
    server.shutdown();
    Ok(())
}
